//! Vendored, dependency-free stand-in for the crates.io `criterion` crate.
//!
//! The build environment of this repository has no access to a crates
//! registry, so this crate implements the API subset the workspace's
//! micro-benchmarks use: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], the [`criterion_group!`] /
//! [`criterion_main!`] macros and [`black_box`].  It performs real wall-clock
//! measurements (warm-up, then `sample_size` samples spread over
//! `measurement_time`) and prints a criterion-style
//! `time: [min mean max]` line per benchmark.  Swapping the real crate back
//! in is a one-line edit of the workspace manifest.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// How batches are sized in [`Bencher::iter_batched`].  The stub runs one
/// routine call per batch regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many batches per sample.
    SmallInput,
    /// Medium inputs.
    MediumInput,
    /// Large inputs: one batch per sample.
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
}

/// Benchmark driver handed to the closure of [`Criterion::bench_function`].
pub struct Bencher<'a> {
    config: &'a Criterion,
    samples_ns: Vec<f64>,
}

impl Bencher<'_> {
    /// Measure `routine` repeatedly; timing includes only the routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the configured warm-up time has elapsed and
        // estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        // Spread `sample_size` samples over the measurement time; each sample
        // runs enough iterations to be timeable.
        let per_sample_ns =
            self.config.measurement_time.as_nanos() as f64 / self.config.sample_size as f64;
        let iters_per_sample = ((per_sample_ns / est_ns) as u64).max(1);
        self.samples_ns.clear();
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters_per_sample as f64);
        }
    }

    /// Measure `routine` on fresh inputs from `setup`; timing excludes setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.config.warm_up_time {
            let input = setup();
            black_box(routine(input));
        }

        self.samples_ns.clear();
        let mut spent = Duration::ZERO;
        while self.samples_ns.len() < self.config.sample_size
            && spent < self.config.measurement_time
        {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            spent += elapsed;
            self.samples_ns.push(elapsed.as_nanos() as f64);
        }
    }
}

/// Benchmark manager mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of timing samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for the warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark and print its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { config: self, samples_ns: Vec::new() };
        f(&mut bencher);
        let mut samples = bencher.samples_ns;
        if samples.is_empty() {
            println!("{id:<40} time:   [no samples]");
            return self;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!("{id:<40} time:   [{} {} {}]", fmt_ns(min), fmt_ns(mean), fmt_ns(max));
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Group benchmark functions, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `fn main` running the given groups, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

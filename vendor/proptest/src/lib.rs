//! Vendored, dependency-free stand-in for the crates.io `proptest` crate.
//!
//! The build environment of this repository has no access to a crates
//! registry, so this crate implements the (small) API subset the workspace's
//! property tests use: the [`proptest!`] macro, [`prop_assert!`] /
//! [`prop_assert_eq!`], `any::<T>()`, range strategies over numeric types and
//! `collection::vec`.  Replacing it with the real crate is a one-line edit of
//! the workspace manifest.
//!
//! Unlike upstream proptest, case generation is fully deterministic (seeded
//! from the test name), there is no shrinking, and a failing case panics with
//! the sampled inputs attached to the message.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and the primitive strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;
        /// Draw one value from the strategy.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<u64> {
        type Value = u64;
        fn sample(&self, rng: &mut TestRng) -> u64 {
            self.start + rng.next_u64() % (self.end - self.start).max(1)
        }
    }

    impl Strategy for Range<u32> {
        type Value = u32;
        fn sample(&self, rng: &mut TestRng) -> u32 {
            self.start + (rng.next_u64() % (self.end - self.start).max(1) as u64) as u32
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.start + (rng.next_u64() as usize) % (self.end - self.start).max(1)
        }
    }

    impl Strategy for Range<i64> {
        type Value = i64;
        fn sample(&self, rng: &mut TestRng) -> i64 {
            let span = (self.end - self.start).max(1) as u64;
            self.start + (rng.next_u64() % span) as i64
        }
    }

    /// Types with a canonical "any value" strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Draw an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, roughly symmetric around zero; avoids NaN/inf which the
            // real crate also biases against.
            (rng.next_f64() - 0.5) * 2.0e6
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`: `any::<u64>()`, `any::<bool>()`, …
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, 1..200)` — vectors of 1 to 199 elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.size, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Configuration, RNG and error type used by generated test functions.

    use std::fmt;

    /// Per-`proptest!`-block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property observation (carried by `prop_assert!`).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Record a failure with the given message.
        pub fn fail(message: String) -> Self {
            TestCaseError(message)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic split-mix-64 RNG; the whole stub derives its streams
    /// from the test-function name so failures are reproducible by rerunning.
    pub struct TestRng(u64);

    impl TestRng {
        /// RNG for case number `case` of the test whose seed is `base`.
        pub fn for_case(base: u64, case: u32) -> Self {
            TestRng(base ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// FNV-1a hash of the test name, used as the per-test base seed.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*` upstream.

    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert a boolean property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Declare property tests: each `fn name(arg in strategy, …) { body }` item
/// becomes a `#[test]` running `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; expands one test fn per recursion.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let base = $crate::test_runner::seed_from_name(stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(base, case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(stringify!($arg));
                        s.push_str(" = ");
                        s.push_str(&format!("{:?}", $arg));
                        s.push_str("; ");
                    )+
                    s
                };
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {case}/{total} failed: {err}\n  inputs: {inputs}",
                        case = case,
                        total = config.cases,
                        err = err,
                        inputs = inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#!/usr/bin/env python3
"""Schema + perf-guard checker for BENCH_campaign.json.

CI runs this right after the quick-mode e16 harness.  It fails the build if

* the file is missing a section or a required key (schema drift — somebody
  renamed a field and the dashboards downstream would silently go blank), or
* the event core regressed below its pinned overhead budget:
  ``event_queue.worst_speedup >= 2.0`` and the periodic-train fast path at
  least matching the calendar one-shot baseline.

Quick-mode numbers are medians of three samples after a warmup (see the
bench's module doc), so the 2.0 bar is meaningful rather than noise-gated.

Usage: check_bench_schema.py [path-to-BENCH_campaign.json]
"""

import json
import sys

# section -> keys that must be present (values must be non-null).
SCHEMA = {
    "event_queue": [
        "ops_per_workload",
        "samples",
        "worst_speedup",
        "workloads",
    ],
    "periodic_trains": [
        "trains",
        "ops_per_workload",
        "samples",
        "heap_ops_per_sec",
        "calendar_ops_per_sec",
        "fastpath_ops_per_sec",
        "fastpath_vs_calendar",
        "fastpath_vs_heap",
    ],
    "volume_campaign": [
        "runs",
        "ops_per_workload",
        "samples",
        "chunk_size",
        "workers",
        "serial_runs_per_sec",
        "parallel_runs_per_sec",
        "parallel_nosink_runs_per_sec",
        "large_chunk_runs_per_sec",
        "bit_identical",
        "suspect_runs",
    ],
    "checkpointing": [
        "runs",
        "ops_per_workload",
        "samples",
        "runs_per_sec",
        "relative_to_plain",
        "bit_identical",
    ],
    "mixed_campaign": [
        "runs",
        "ops_per_workload",
        "samples",
        "families",
        "runs_per_sec",
        "suspect_runs",
    ],
    "telemetry": [
        "runs",
        "ops_per_workload",
        "samples",
        "detached_runs_per_sec",
        "detached_relative_to_plain",
        "traced_runs_per_sec",
        "trace_bytes",
        "bit_identical",
    ],
}

WORKLOAD_KEYS = ["resident", "heap_ops_per_sec", "calendar_ops_per_sec", "speedup"]


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_campaign.json"
    with open(path) as fh:
        doc = json.load(fh)

    errors = []

    for key in ("bench", "quick"):
        if key not in doc:
            errors.append(f"missing top-level key {key!r}")

    for section, keys in SCHEMA.items():
        obj = doc.get(section)
        if not isinstance(obj, dict):
            errors.append(f"missing section {section!r}")
            continue
        for key in keys:
            if obj.get(key) is None:
                errors.append(f"{section}.{key} missing or null")

    workloads = doc.get("event_queue", {}).get("workloads") or []
    if not workloads:
        errors.append("event_queue.workloads is empty")
    for i, wl in enumerate(workloads):
        for key in WORKLOAD_KEYS:
            if not isinstance(wl, dict) or wl.get(key) is None:
                errors.append(f"event_queue.workloads[{i}].{key} missing or null")

    # Perf guard: the event-core overhead budget (see ARCHITECTURE.md,
    # "Event core").  Bars match the full-mode asserts inside the bench.
    if not errors:
        eq = doc["event_queue"]
        pt = doc["periodic_trains"]
        if eq["worst_speedup"] < 2.0:
            errors.append(
                f"event_queue.worst_speedup {eq['worst_speedup']:.2f} < 2.0: "
                "the calendar queue lost its hold-model edge over the heap"
            )
        if pt["fastpath_ops_per_sec"] < pt["calendar_ops_per_sec"]:
            errors.append(
                f"periodic_trains fast path ({pt['fastpath_ops_per_sec']:.3e} ops/s) "
                f"slower than calendar one-shots ({pt['calendar_ops_per_sec']:.3e} ops/s): "
                "schedule_periodic no longer pays for itself"
            )
        for section in ("volume_campaign", "checkpointing", "telemetry"):
            if doc[section]["bit_identical"] is not True:
                errors.append(f"{section}.bit_identical is not true")
        for section in ("volume_campaign", "mixed_campaign"):
            if doc[section]["suspect_runs"] != 0:
                errors.append(f"{section}.suspect_runs != 0")

    if errors:
        for err in errors:
            print(f"BENCH_campaign.json: {err}", file=sys.stderr)
        return 1

    print(
        f"BENCH_campaign.json ok: worst_speedup "
        f"{doc['event_queue']['worst_speedup']:.2f}x, train fast path "
        f"{doc['periodic_trains']['fastpath_vs_calendar']:.2f}x calendar"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

//! End-to-end drills for the fault-injection and recovery machinery: every
//! [`Fault`] category is injected against a checkpointed campaign and the
//! recovered report, JSON rendering and JSONL stream must come out
//! byte-identical to a fault-free reference.  Corrupt manifests (torn,
//! bit-flipped, version-bumped) must be refused cleanly — with a recovery
//! hint, without touching anything on disk, and without panicking.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use karyon::scenario::checkpoint::read_manifest_text;
use karyon::scenario::{
    fault::is_injected, integrity_frame, truncate_jsonl, Campaign, CampaignEntry, CampaignOutcome,
    CampaignTelemetry, Checkpointer, Fault, FaultPlan, JsonlRunWriter, ParamGrid, RunRecord,
    Scenario, ScenarioRegistry, ScenarioSpec,
};
use karyon::sim::splitmix64;
use karyon::telemetry::MetricsRegistry;

/// The same cheap deterministic scenario the resume properties use.
struct Noise;

impl Scenario for Noise {
    fn name(&self) -> &str {
        "noise"
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "ranged" => Some((0.0, 1.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let mut state = spec.seed;
        let a = splitmix64(&mut state);
        let b = splitmix64(&mut state);
        let mut record = RunRecord::new();
        record.set("ranged", (a >> 11) as f64 / (1u64 << 53) as f64);
        record.set("wild", ((b % 10_000) as f64 - 5_000.0) * spec.f64_or("scale", 1.0));
        record
    }
}

fn noise_registry() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::new();
    registry.register(Arc::new(Noise));
    registry
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("karyon-faults-{}-{tag}", std::process::id()));
    fs::create_dir_all(&dir).expect("temp dir is writable");
    dir
}

/// An 8-chunk campaign (2 grid points × 16 replications / chunk size 4).
fn noise_campaign(threads: usize) -> Campaign {
    Campaign::new("fault-drill", 2024).with_chunk_size(4).with_threads(threads).entry(
        CampaignEntry::new("noise")
            .grid(ParamGrid::new().axis("scale", [1.0, 2.5]))
            .replications(16),
    )
}

/// The fault-free reference: report + full JSONL bytes.
fn reference() -> (karyon::scenario::CampaignReport, Vec<u8>) {
    let mut jsonl = JsonlRunWriter::new(Vec::new());
    let report =
        noise_campaign(1).run_with_sink(&noise_registry(), &mut jsonl).expect("noise runs");
    (report, jsonl.finish().expect("in-memory writes cannot fail"))
}

/// A transient sink-flush failure is healed in place by the checkpointer's
/// bounded retry: the session completes on its own, the report is untouched,
/// and telemetry records both the injected faults and the recovery.
#[test]
fn sink_io_errors_are_healed_by_bounded_retry() {
    let dir = scratch_dir("sink-io");
    let ckpt_path = dir.join("heal.ckpt.json");
    fs::remove_file(&ckpt_path).ok();
    let (expected_report, expected_jsonl) = reference();

    // Two consecutive flush failures at the second checkpoint: within the
    // default policy's four attempts, so the session must survive.
    let injector =
        FaultPlan::new().with(Fault::SinkIoError { at_chunks_done: 2, failures: 2 }).injector();
    let mut metrics = MetricsRegistry::new();
    let mut jsonl = JsonlRunWriter::new(Vec::new());
    let mut ckpt = Checkpointer::new(&ckpt_path);
    let (outcome, _) = noise_campaign(2)
        .run_checkpointed_chaos(
            &noise_registry(),
            &mut ckpt,
            Some(&mut jsonl),
            CampaignTelemetry::none().with_metrics(&mut metrics),
            &injector,
        )
        .expect("bounded retry heals the transient flush failure");
    let report = match outcome {
        CampaignOutcome::Complete(report) => report,
        other => panic!("expected a completed session, got {other:?}"),
    };

    assert_eq!(report, expected_report);
    assert_eq!(report.to_json(), expected_report.to_json());
    assert_eq!(jsonl.finish().expect("in-memory stream"), expected_jsonl);
    assert_eq!(metrics.counter("fault.injected"), 2);
    assert_eq!(metrics.counter("fault.injected.sink_io_error"), 2);
    assert!(
        metrics.counter("retry.attempts") >= 2,
        "each injected failure costs at least one retry: {}",
        metrics.counter("retry.attempts")
    );
    assert!(metrics.counter("recovery.outcome.recovered") >= 1);
    assert_eq!(metrics.counter("recovery.outcome.exhausted"), 0);
    fs::remove_file(&ckpt_path).ok();
}

/// A torn manifest write kills the session and leaves a corrupt manifest on
/// disk.  Recovery refuses the manifest cleanly (with a recovery hint),
/// restarts from scratch — safe because the fault budget is spent — and
/// converges to the fault-free result.
#[test]
fn torn_manifests_refuse_cleanly_and_recover_from_scratch() {
    let dir = scratch_dir("torn");
    let ckpt_path = dir.join("torn.ckpt.json");
    fs::remove_file(&ckpt_path).ok();
    let (expected_report, expected_jsonl) = reference();

    let injector =
        FaultPlan::new().with(Fault::TornManifest { at_chunks_done: 2, keep_bytes: 40 }).injector();

    // Session 1: dies at the torn write, manifest truncated to 40 bytes.
    let mut jsonl = JsonlRunWriter::new(Vec::new());
    let mut ckpt = Checkpointer::new(&ckpt_path);
    let error = noise_campaign(1)
        .run_checkpointed_chaos(
            &noise_registry(),
            &mut ckpt,
            Some(&mut jsonl),
            CampaignTelemetry::none(),
            &injector,
        )
        .expect_err("the torn write kills the session");
    assert!(is_injected(&error), "{error}");
    assert_eq!(fs::metadata(&ckpt_path).expect("manifest exists").len(), 40);

    // Recovery step 1: the torn manifest is detected and refused with an
    // actionable hint — no panic, no partial resume.
    let refusal = Checkpointer::new(&ckpt_path).load().expect_err("40 bytes cannot verify");
    assert!(refusal.contains("recovery:"), "refusals carry a recovery hint: {refusal}");

    // Recovery step 2: follow the hint — discard the checkpoint and stream,
    // restart from scratch.  The spent budget keeps the rerun clean.
    fs::remove_file(&ckpt_path).expect("discarding the torn manifest");
    let mut jsonl = JsonlRunWriter::new(Vec::new());
    let mut ckpt = Checkpointer::new(&ckpt_path);
    let mut metrics = MetricsRegistry::new();
    let (outcome, _) = noise_campaign(3)
        .run_checkpointed_chaos(
            &noise_registry(),
            &mut ckpt,
            Some(&mut jsonl),
            CampaignTelemetry::none().with_metrics(&mut metrics),
            &injector,
        )
        .expect("the rerun is fault-free");
    let report = match outcome {
        CampaignOutcome::Complete(report) => report,
        other => panic!("expected a completed session, got {other:?}"),
    };
    assert_eq!(report, expected_report);
    assert_eq!(jsonl.finish().expect("in-memory stream"), expected_jsonl);
    // The rerun's registry picks up the fault counts left by the killed
    // session (the injector drains into whichever session folds next).
    assert_eq!(metrics.counter("fault.injected.torn_manifest"), 1);
    assert_eq!(injector.injected(), 0, "drained into the metrics registry");
    fs::remove_file(&ckpt_path).ok();
}

/// An abort landing mid-chunk discards the partial chunk; resuming from the
/// manifest — on a different worker count — reproduces the reference
/// byte-for-byte.
#[test]
fn mid_chunk_aborts_resume_byte_identically() {
    let dir = scratch_dir("abort");
    let ckpt_path = dir.join("abort.ckpt.json");
    let jsonl_path = dir.join("abort.runs.jsonl");
    fs::remove_file(&ckpt_path).ok();
    fs::remove_file(&jsonl_path).ok();
    let (expected_report, expected_jsonl) = reference();

    let injector =
        FaultPlan::new().with(Fault::AbortMidChunk { at_chunk: 5, after_runs: 2 }).injector();
    let mut metrics = MetricsRegistry::new();

    // Session 1: aborts after two runs of chunk 5; the partial chunk is
    // discarded, the manifest covers only fully merged chunks.
    let mut jsonl = JsonlRunWriter::new(fs::File::create(&jsonl_path).expect("stream opens"));
    let mut ckpt = Checkpointer::new(&ckpt_path);
    let error = noise_campaign(1)
        .run_checkpointed_chaos(
            &noise_registry(),
            &mut ckpt,
            Some(&mut jsonl),
            CampaignTelemetry::none().with_metrics(&mut metrics),
            &injector,
        )
        .expect_err("the abort kills the session");
    assert!(is_injected(&error), "{error}");
    drop(jsonl); // the "crash": the sink is never finished

    // Session 2: standard crash recovery — truncate the stream to the
    // watermark, resume on a different worker count.
    let manifest = Checkpointer::new(&ckpt_path).load().expect("manifest is intact");
    truncate_jsonl(&jsonl_path, manifest.runs_done).expect("stream covers the watermark");
    let mut jsonl = JsonlRunWriter::new(
        fs::OpenOptions::new().append(true).open(&jsonl_path).expect("stream reopens"),
    );
    let mut ckpt = Checkpointer::new(&ckpt_path);
    let (outcome, _) = noise_campaign(4)
        .resume_chaos(
            &noise_registry(),
            &mut ckpt,
            Some(&mut jsonl),
            CampaignTelemetry::none().with_metrics(&mut metrics),
            &injector,
        )
        .expect("the resumed session is fault-free");
    let report = match outcome {
        CampaignOutcome::Complete(report) => report,
        other => panic!("expected a completed session, got {other:?}"),
    };
    jsonl.finish().expect("stream closes");

    assert_eq!(report, expected_report);
    assert_eq!(report.to_json(), expected_report.to_json());
    assert_eq!(fs::read(&jsonl_path).expect("stream readable"), expected_jsonl);
    assert_eq!(metrics.counter("fault.injected.abort_mid_chunk"), 1);
    fs::remove_file(&ckpt_path).ok();
    fs::remove_file(&jsonl_path).ok();
}

/// Produces a valid on-disk manifest at watermark 2 for the corruption tests.
fn intact_manifest(ckpt_path: &PathBuf) -> Vec<u8> {
    fs::remove_file(ckpt_path).ok();
    let mut ckpt = Checkpointer::new(ckpt_path).max_chunks_per_session(2);
    let (outcome, _) =
        noise_campaign(1).run_checkpointed(&noise_registry(), &mut ckpt, None).expect("session 1");
    assert!(matches!(outcome, CampaignOutcome::Interrupted { .. }));
    fs::read(ckpt_path).expect("manifest on disk")
}

/// Every corruption mode — truncation, a flipped payload bit, a bumped format
/// version with a *valid* recomputed frame — is refused cleanly: a specific
/// diagnosis plus the recovery hint, the corrupt file untouched on disk,
/// and no panic anywhere.
#[test]
fn corrupt_manifests_are_refused_cleanly_and_disk_is_untouched() {
    let dir = scratch_dir("corrupt");
    let ckpt_path = dir.join("corrupt.ckpt.json");
    let intact = intact_manifest(&ckpt_path);
    let payload = read_manifest_text(&ckpt_path).expect("payload line");

    // (a) Torn mid-payload: the integrity frame is gone entirely.
    let truncated = intact[..intact.len() / 2].to_vec();
    // (b) One corrupted byte in the payload: the frame hash catches it.
    let mut flipped = intact.clone();
    let target = flipped.iter().position(|b| *b == b'4').expect("a digit to corrupt");
    flipped[target] = b'7';
    // (c) A future format version with a freshly computed (valid) frame:
    // integrity passes, version gating still refuses.
    let bumped_payload = payload.replace("\"version\":1", "\"version\":99");
    assert_ne!(bumped_payload, payload, "the version field must exist to bump");
    let bumped = format!("{bumped_payload}\n{}\n", integrity_frame(&bumped_payload)).into_bytes();

    let cases: [(&str, &[u8], &str); 3] = [
        ("truncated", &truncated, "recovery:"),
        ("bit-flipped", &flipped, "hash mismatch"),
        ("version-bumped", &bumped, "unsupported manifest version 99"),
    ];
    for (label, corrupt, diagnosis) in cases {
        fs::write(&ckpt_path, corrupt).expect("planting the corruption");
        let error = Checkpointer::new(&ckpt_path).load().expect_err(label);
        assert!(error.contains(diagnosis), "{label}: {error}");
        assert!(error.contains("recovery:"), "{label} refusals carry the hint: {error}");
        // Refusing must be read-only: the corrupt bytes are still exactly
        // what we planted.
        assert_eq!(fs::read(&ckpt_path).expect("still readable"), corrupt, "{label}");
        // The resume entry point refuses identically instead of panicking,
        // and is read-only too.
        let resume_error = noise_campaign(1)
            .resume(&noise_registry(), &mut Checkpointer::new(&ckpt_path), None)
            .expect_err(label);
        assert!(resume_error.contains("recovery:"), "{label}: {resume_error}");
        assert!(!is_injected(&resume_error), "{label}: a real refusal, not an injected one");
        assert_eq!(fs::read(&ckpt_path).expect("still readable"), corrupt, "{label}");
    }
    fs::remove_file(&ckpt_path).ok();
}

/// The full gauntlet: one plan carrying every fault category, driven through
/// crash/recover sessions exactly as the `karyon-campaign chaos` harness
/// does — the final report and stream must match the fault-free reference.
#[test]
fn all_fault_categories_together_converge_to_the_reference() {
    let dir = scratch_dir("gauntlet");
    let ckpt_path = dir.join("gauntlet.ckpt.json");
    let jsonl_path = dir.join("gauntlet.runs.jsonl");
    fs::remove_file(&ckpt_path).ok();
    fs::remove_file(&jsonl_path).ok();
    let (expected_report, expected_jsonl) = reference();

    let injector = FaultPlan::new()
        .with(Fault::SinkIoError { at_chunks_done: 1, failures: 2 })
        .with(Fault::WorkerDeath { at_chunk: 3 })
        .with(Fault::AbortMidChunk { at_chunk: 5, after_runs: 1 })
        .with(Fault::TornManifest { at_chunks_done: 6, keep_bytes: 64 })
        .injector();
    let mut metrics = MetricsRegistry::new();

    let mut sessions = 0;
    let report = loop {
        sessions += 1;
        assert!(sessions <= 8, "recovery must converge");
        let mut resuming = ckpt_path.exists();
        if resuming {
            match Checkpointer::new(&ckpt_path).load() {
                Ok(manifest) => {
                    truncate_jsonl(&jsonl_path, manifest.runs_done).expect("stream truncates");
                }
                Err(refusal) => {
                    // The torn manifest: refused cleanly, discard and restart.
                    assert!(refusal.contains("recovery:"), "{refusal}");
                    fs::remove_file(&ckpt_path).expect("discarding the corrupt manifest");
                    fs::remove_file(&jsonl_path).ok();
                    resuming = false;
                }
            }
        }
        let mut jsonl = JsonlRunWriter::new(
            fs::OpenOptions::new()
                .create(true)
                .append(resuming)
                .write(true)
                .truncate(!resuming)
                .open(&jsonl_path)
                .expect("stream opens"),
        );
        let mut ckpt = Checkpointer::new(&ckpt_path);
        let campaign = noise_campaign(1 + sessions % 3);
        let telemetry = CampaignTelemetry::none().with_metrics(&mut metrics);
        let result = if resuming {
            campaign.resume_chaos(
                &noise_registry(),
                &mut ckpt,
                Some(&mut jsonl),
                telemetry,
                &injector,
            )
        } else {
            campaign.run_checkpointed_chaos(
                &noise_registry(),
                &mut ckpt,
                Some(&mut jsonl),
                telemetry,
                &injector,
            )
        };
        match result {
            Ok((CampaignOutcome::Complete(report), _)) => {
                jsonl.finish().expect("stream closes");
                break report;
            }
            Ok((other, _)) => panic!("no session budget is set: {other:?}"),
            Err(error) => assert!(is_injected(&error), "only planned faults may kill: {error}"),
        }
    };

    assert_eq!(report, expected_report);
    assert_eq!(report.to_json(), expected_report.to_json());
    assert_eq!(fs::read(&jsonl_path).expect("stream readable"), expected_jsonl);
    // Every category fired: 2 sink errors + 1 death + 1 abort + 1 tear.
    assert_eq!(metrics.counter("fault.injected.sink_io_error"), 2);
    assert_eq!(metrics.counter("fault.injected.worker_death"), 1);
    assert_eq!(metrics.counter("fault.injected.abort_mid_chunk"), 1);
    assert_eq!(metrics.counter("fault.injected.torn_manifest"), 1);
    assert_eq!(metrics.counter("fault.injected"), 5);
    assert!(metrics.counter("recovery.outcome.recovered") >= 1);
    fs::remove_file(&ckpt_path).ok();
    fs::remove_file(&jsonl_path).ok();
}

//! Integration tests for the `karyon-telemetry` flight recorder wired
//! through the campaign runner: deterministic trace streams (bit-identical
//! for any worker count and across checkpoint/resume boundaries), report
//! byte-identity with and without telemetry attached, engine clamp
//! attribution, and the wall-clock metrics registry (campaign runner + event
//! bus exports).

use std::sync::Arc;

use proptest::prelude::*;

use karyon::middleware::{
    EventBus, NetworkCapability, NetworkId, Payload, QosClass, QosRequirement,
};
use karyon::scenario::{
    builtin_registry, Campaign, CampaignEntry, CampaignTelemetry, Checkpointer, ParamGrid,
    RunRecord, Scenario, ScenarioRegistry, ScenarioSpec,
};
use karyon::sim::{Engine, SimDuration, SimTime};
use karyon::telemetry::{observe_engine, trace, AttrValue, JsonlTraceWriter, MetricsRegistry};

/// A deterministic engine-driven scenario that emits its own trace events —
/// and deliberately schedules one event into the past so the engine's clamp
/// path (with debug-label attribution) is exercised.
struct Ticker;

#[derive(Debug, Clone)]
enum Tick {
    Step(u64),
    Rewind,
}

impl Scenario for Ticker {
    fn name(&self) -> &str {
        "ticker"
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let steps = spec.f64_or("steps", 5.0) as u64;
        let mut engine: Engine<u64, Tick> = Engine::new(0);
        observe_engine(&mut engine);
        engine.schedule_at(SimTime::ZERO, Tick::Step(steps));
        engine.schedule_at(SimTime::from_millis(3), Tick::Rewind);
        engine.run(|count, ctx, event| match event {
            Tick::Step(left) => {
                *count += 1;
                trace::event("tick", ctx.now(), &[("left", AttrValue::U64(left))]);
                if left > 1 {
                    ctx.schedule_in(SimDuration::from_millis(2), Tick::Step(left - 1));
                }
            }
            Tick::Rewind => {
                // Into the past: the engine clamps this to `now` and the
                // tracer attributes the clamp to the event's debug label.
                ctx.schedule_at(SimTime::ZERO, Tick::Step(1));
            }
        });
        let mut record = RunRecord::new();
        record.set("ticks", *engine.state() as f64);
        record.absorb_engine_clamps(&engine);
        record
    }
}

fn ticker_registry() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::new();
    registry.register(Arc::new(Ticker));
    registry
}

fn ticker_campaign(threads: usize) -> Campaign {
    Campaign::new("telemetry-it", 77).with_threads(threads).with_chunk_size(3).entry(
        CampaignEntry::new("ticker")
            .grid(ParamGrid::new().axis("steps", [3.0, 6.0]))
            .replications(7),
    )
}

/// Runs the campaign with a byte-buffer trace writer and returns
/// `(report json, trace bytes)`.
fn traced_run(threads: usize) -> (String, Vec<u8>) {
    let mut writer = JsonlTraceWriter::new(Vec::new());
    let (report, _) = ticker_campaign(threads)
        .run_instrumented_with(
            &ticker_registry(),
            None,
            CampaignTelemetry::none().with_trace(&mut writer),
        )
        .expect("campaign runs");
    (report.to_json(), writer.into_inner().expect("no I/O error"))
}

#[test]
fn trace_stream_is_bit_identical_for_any_worker_count() {
    let (report_one, trace_one) = traced_run(1);
    assert!(!trace_one.is_empty(), "an engine-driven campaign must trace");
    for threads in [2, 4, 8] {
        let (report_many, trace_many) = traced_run(threads);
        assert_eq!(report_one, report_many, "threads = {threads}");
        assert_eq!(trace_one, trace_many, "trace bytes, threads = {threads}");
    }
}

#[test]
fn report_is_byte_identical_with_and_without_telemetry() {
    let untraced = ticker_campaign(4).run(&ticker_registry()).expect("campaign runs").to_json();
    let mut writer = JsonlTraceWriter::new(Vec::new());
    let mut metrics = MetricsRegistry::new();
    let (report, _) = ticker_campaign(4)
        .run_instrumented_with(
            &ticker_registry(),
            None,
            CampaignTelemetry::none().with_trace(&mut writer).with_metrics(&mut metrics),
        )
        .expect("campaign runs");
    assert_eq!(report.to_json(), untraced, "telemetry must never change the report");
    assert_eq!(metrics.counter("campaign.runs"), 14);
    assert_eq!(metrics.counter("campaign.chunks"), 5);
    assert!(metrics.timer_summary("campaign.chunk_ms").is_some());
    assert_eq!(metrics.gauge("campaign.workers"), Some(4.0));
}

#[test]
fn trace_stream_stitches_bit_identically_across_checkpoint_resume() {
    let (_, uninterrupted) = traced_run(2);
    let dir = std::env::temp_dir().join(format!("karyon-telemetry-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let registry = ticker_registry();
    let chunks = ticker_campaign(1).canonical_chunks();
    for boundary in 1..chunks {
        let path = dir.join(format!("b{boundary}.json"));
        let mut stitched = Vec::new();
        // First session: `boundary` chunks, then a clean interruption.
        let mut first = JsonlTraceWriter::new(Vec::new());
        let mut ckpt = Checkpointer::new(&path).max_chunks_per_session(boundary);
        let (outcome, _) = ticker_campaign(2)
            .run_checkpointed_with(
                &registry,
                &mut ckpt,
                None,
                CampaignTelemetry::none().with_trace(&mut first),
            )
            .expect("first session");
        assert!(!outcome.is_complete(), "boundary {boundary} interrupts");
        stitched.extend_from_slice(&first.into_inner().expect("no I/O error"));
        // Second session: resume with a different worker count, append.
        let mut second = JsonlTraceWriter::new(Vec::new());
        let mut ckpt = Checkpointer::new(&path);
        let (outcome, _) = ticker_campaign(4)
            .resume_with(
                &registry,
                &mut ckpt,
                None,
                CampaignTelemetry::none().with_trace(&mut second),
            )
            .expect("resumed session");
        assert!(outcome.is_complete());
        stitched.extend_from_slice(&second.into_inner().expect("no I/O error"));
        assert_eq!(stitched, uninterrupted, "boundary {boundary}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clamps_are_attributed_to_their_event_label() {
    let ((), records) = trace::collect(|| {
        let spec = ScenarioSpec::new("ticker").with_seed(1);
        Ticker.run(&spec);
    });
    let clamp = records
        .iter()
        .find(|r| r.name() == "engine.clamp")
        .expect("the rewind event schedules into the past");
    let label = clamp
        .attrs()
        .iter()
        .find(|(k, _)| k == "label")
        .map(|(_, v)| v.clone())
        .expect("clamps carry the event's debug label");
    assert_eq!(label, AttrValue::Text("Step(1)".to_string()));
    let span = records.iter().find(|r| r.name() == "engine.run").expect("summary span");
    assert!(
        span.attrs().iter().any(|(k, v)| k == "clamped" && *v == AttrValue::U64(1)),
        "the engine.run span counts the clamp: {:?}",
        span.attrs()
    );
}

#[test]
fn event_bus_exports_per_class_metrics() {
    let mut bus = EventBus::new(1);
    bus.attach_network(NetworkId(0), NetworkCapability::local_bus());
    let rt = bus.topic("a.rt").subscribe(QosClass::Realtime);
    let bg = bus.topic("a.bg").subscribe(QosClass::Background);
    let rt_pub = bus.topic("a.rt").announce(QosRequirement::best_effort());
    let bg_pub = bus.topic("a.bg").announce(QosRequirement::best_effort());
    for i in 0..10u64 {
        bus.publish(&rt_pub, Payload::tagged(i), SimTime::from_millis(i));
        bus.publish(&bg_pub, Payload::tagged(i), SimTime::from_millis(i));
    }
    bus.drain_with(rt, SimTime::from_millis(50), usize::MAX, |_| {});
    bus.drain_with(bg, SimTime::from_millis(50), usize::MAX, |_| {});

    let mut metrics = MetricsRegistry::new();
    bus.export_metrics("bus", &mut metrics);
    assert_eq!(metrics.counter("bus.published"), 20);
    assert_eq!(metrics.gauge("bus.subscriptions"), Some(2.0));
    let rt_stats = bus.subscription_stats(rt).unwrap();
    assert_eq!(metrics.counter("bus.realtime.matched"), rt_stats.matched);
    assert_eq!(metrics.counter("bus.realtime.delivered"), rt_stats.delivered);
    let latency =
        metrics.timer_summary("bus.realtime.latency_ms").expect("delivered events record latency");
    assert_eq!(latency.count, rt_stats.delivered);
    // No batched subscription existed: its counters export as zero and no
    // empty histogram is materialised.
    assert_eq!(metrics.counter("bus.batched.matched"), 0);
    assert!(metrics.timer_summary("bus.batched.latency_ms").is_none());
    // Exports are additive: a second export doubles the counters (two buses
    // aggregate into one registry) and merges the latency histograms.
    bus.export_metrics("bus", &mut metrics);
    assert_eq!(metrics.counter("bus.published"), 40);
    let merged = metrics.timer_summary("bus.realtime.latency_ms").unwrap();
    assert_eq!(merged.count, 2 * rt_stats.delivered);
}

#[test]
fn registry_merge_folds_counters_gauges_and_timers() {
    let mut a = MetricsRegistry::new();
    a.add("runs", 3);
    a.set_gauge("workers", 2.0);
    a.record_timer("chunk_ms", 10.0);
    let mut b = MetricsRegistry::new();
    b.add("runs", 4);
    b.set_gauge("workers", 8.0);
    b.record_timer("chunk_ms", 30.0);
    a.merge(&b);
    assert_eq!(a.counter("runs"), 7);
    assert_eq!(a.gauge("workers"), Some(8.0), "gauges are last-writer-wins");
    let timer = a.timer_summary("chunk_ms").unwrap();
    assert_eq!(timer.count, 2);
    assert!((timer.mean - 20.0).abs() < 1.0, "merged mean ~20, got {}", timer.mean);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the (seed, replication, worker-count) shape, the traced
    /// stream is a pure function of the campaign definition.
    #[test]
    fn trace_stream_determinism_holds_for_arbitrary_campaigns(
        seed in 0u64..1_000,
        replications in 1u64..6,
        threads in 2usize..6,
    ) {
        let build = |threads: usize| {
            Campaign::new("prop", seed)
                .with_threads(threads)
                .with_chunk_size(2)
                .entry(CampaignEntry::new("ticker").replications(replications))
        };
        let run = |threads: usize| {
            let mut writer = JsonlTraceWriter::new(Vec::new());
            let (report, _) = build(threads)
                .run_instrumented_with(
                    &ticker_registry(),
                    None,
                    CampaignTelemetry::none().with_trace(&mut writer),
                )
                .expect("campaign runs");
            (report.to_json(), writer.into_inner().expect("no I/O error"))
        };
        let (report_one, trace_one) = run(1);
        let (report_many, trace_many) = run(threads);
        prop_assert_eq!(report_one, report_many);
        prop_assert_eq!(trace_one, trace_many);
    }
}

/// The builtin middleware families trace through `observe_engine` and the
/// `engine.run` span without any per-family code.
#[test]
fn builtin_middleware_family_traces_engine_activity() {
    let mut writer = JsonlTraceWriter::new(Vec::new());
    let campaign = Campaign::new("mw", 5)
        .entry(CampaignEntry::new("middleware-qos").replications(2).duration_secs(5));
    let (_, _) = campaign
        .run_instrumented_with(
            &builtin_registry(),
            None,
            CampaignTelemetry::none().with_trace(&mut writer),
        )
        .expect("builtin family runs");
    let bytes = writer.into_inner().expect("no I/O error");
    let text = String::from_utf8(bytes).unwrap();
    assert!(text.lines().any(|l| l.contains("\"engine.run\"")), "summary span missing");
    assert!(text.lines().any(|l| l.contains("\"engine.depth\"")), "depth samples missing");
}

//! Integration tests spanning crates: abstract sensors feeding the safety
//! kernel, the kernel driving the LoS of the platoon use case, and the
//! middleware/network capability feeding the kernel's rules.

use karyon::core::los::Asil;
use karyon::core::{
    Condition, DesignTimeSafetyInfo, HazardAnalysis, LevelOfService, LosSpec, SafetyKernel,
    SafetyRule, TimingFailureDetector,
};
use karyon::middleware::{
    Admission, EventBus, NetworkCapability, NetworkId, QosClass, QosRequirement,
};
use karyon::sensors::faults::FaultSchedule;
use karyon::sensors::{
    AbstractSensor, RangeCheckDetector, RangeSensor, SensorFault, StuckAtDetector,
};
use karyon::sim::{SimDuration, SimTime};
use karyon::vehicles::{run_platoon, ControlMode, PlatoonConfig, V2VModel};

fn two_level_design(item: &str, component: &str) -> DesignTimeSafetyInfo {
    DesignTimeSafetyInfo::new(
        "integration",
        vec![
            LosSpec {
                level: LevelOfService(0),
                description: "fallback".into(),
                rules: vec![],
                asil: Asil::QM,
                performance_index: 1.0,
            },
            LosSpec {
                level: LevelOfService(1),
                description: "cooperative".into(),
                rules: vec![
                    SafetyRule::new(
                        "validity",
                        Condition::MinValidity { item: item.into(), threshold: 0.6 },
                    ),
                    SafetyRule::new(
                        "component",
                        Condition::ComponentHealthy { component: component.into() },
                    ),
                ],
                asil: Asil::B,
                performance_index: 2.0,
            },
        ],
        HazardAnalysis::new(),
        SimDuration::from_millis(20),
    )
}

#[test]
fn sensor_validity_drives_the_level_of_service() {
    // An abstract sensor with a stuck-at fault scheduled mid-run feeds the
    // kernel; the kernel must degrade when the validity collapses.
    let mut sensor = AbstractSensor::new(
        "range",
        Box::new(RangeSensor { noise_std: 0.2, max_range: 150.0, dropout_probability: 0.0 }),
        99,
    );
    sensor.add_detector(Box::new(RangeCheckDetector::new(0.0, 150.0)));
    sensor.add_detector(Box::new(StuckAtDetector::new(1e-6, 5)));
    sensor.injector_mut().inject(
        SensorFault::StuckAt { stuck_value: None },
        FaultSchedule::from(SimTime::from_secs(5)),
    );

    let mut kernel =
        SafetyKernel::new(two_level_design("range", "v2v"), SimDuration::from_millis(100));
    let mut degraded_after_fault = false;
    let mut cooperative_before_fault = false;

    for i in 0..200u64 {
        let now = SimTime::from_millis(i * 100);
        let truth = 50.0 + (i as f64 * 0.1).sin();
        let reading = sensor.acquire(truth, now);
        kernel.info_mut().update_data("range", reading.measurement.value, reading.validity, now);
        kernel.info_mut().update_health("v2v", true, now);
        let decision = kernel.run_cycle(now);
        if now < SimTime::from_secs(5) && decision.selected == LevelOfService(1) {
            cooperative_before_fault = true;
        }
        if now > SimTime::from_secs(8) && decision.selected == LevelOfService(0) {
            degraded_after_fault = true;
        }
    }
    assert!(cooperative_before_fault, "healthy sensor must enable the cooperative level");
    assert!(degraded_after_fault, "stuck sensor must force the non-cooperative level");
    assert!(!kernel.switches().is_empty());
}

#[test]
fn timing_failure_detector_feeds_component_health() {
    let mut kernel =
        SafetyKernel::new(two_level_design("range", "planner"), SimDuration::from_millis(100));
    let mut detector = TimingFailureDetector::new("planner", SimDuration::from_millis(250));

    // Regular heartbeats: healthy, cooperative level reachable.
    for i in 0..10u64 {
        let now = SimTime::from_millis(i * 100);
        detector.heartbeat(now);
        detector.check(now, kernel.info_mut());
        kernel.info_mut().update_data("range", 10.0, karyon::sensors::Validity::FULL, now);
        kernel.run_cycle(now);
    }
    assert_eq!(kernel.current_los(), LevelOfService(1));

    // Heartbeats stop: the timing failure detector reports the component
    // failed and the kernel degrades within its reaction bound.
    let silence_start = SimTime::from_millis(1_000);
    let mut degraded_at = None;
    for i in 10..30u64 {
        let now = SimTime::from_millis(i * 100);
        detector.check(now, kernel.info_mut());
        kernel.info_mut().update_data("range", 10.0, karyon::sensors::Validity::FULL, now);
        let decision = kernel.run_cycle(now);
        if decision.selected == LevelOfService(0) && degraded_at.is_none() {
            degraded_at = Some(now);
        }
    }
    let degraded_at = degraded_at.expect("kernel must degrade after heartbeats stop");
    let reaction = degraded_at.since(silence_start);
    assert!(
        reaction <= detector_timeout_plus_cycle(),
        "degradation took {reaction}, expected within the detector timeout plus one cycle"
    );
}

fn detector_timeout_plus_cycle() -> SimDuration {
    SimDuration::from_millis(250) + SimDuration::from_millis(100) + SimDuration::from_millis(100)
}

#[test]
fn middleware_admission_can_gate_the_cooperative_level() {
    // The QoS admission of the V2V event channel is used as the run-time
    // health of the "v2v" component: rejected channel => no cooperative LoS.
    let mut bus = EventBus::new(1);
    bus.attach_network(NetworkId(0), NetworkCapability::wireless_nominal());
    bus.topic("platoon.lead-state").subscribe(QosClass::Batched);
    let publisher = bus
        .topic("platoon.lead-state")
        .announce(QosRequirement::realtime(SimDuration::from_millis(50), 20.0));
    assert_eq!(publisher.admission(), Admission::Admitted);
    let subject = publisher.subject();

    let mut kernel =
        SafetyKernel::new(two_level_design("range", "v2v"), SimDuration::from_millis(100));
    let now = SimTime::from_millis(100);
    kernel.info_mut().update_data("range", 5.0, karyon::sensors::Validity::FULL, now);
    kernel.info_mut().update_health(
        "v2v",
        bus.admission(subject) == Some(Admission::Admitted),
        now,
    );
    assert_eq!(kernel.run_cycle(now).selected, LevelOfService(1));

    // The monitored capability degrades; the channel loses its admission and
    // the kernel must fall back.
    bus.update_capability(NetworkId(0), NetworkCapability::wireless_degraded());
    let later = SimTime::from_millis(200);
    kernel.info_mut().update_data("range", 5.0, karyon::sensors::Validity::FULL, later);
    kernel.info_mut().update_health(
        "v2v",
        bus.admission(subject) == Some(Admission::Admitted),
        later,
    );
    assert_eq!(kernel.run_cycle(later).selected, LevelOfService(0));
}

#[test]
fn platoon_use_case_end_to_end_safety_ordering() {
    // Cross-crate smoke test of the full use case: under identical degraded
    // conditions the kernel-controlled platoon is at least as safe as the
    // always-cooperative one and at least as fast as the always-conservative
    // one.
    let v2v = V2VModel {
        loss: 0.1,
        outages: vec![(SimTime::from_secs(30), SimTime::from_secs(70))],
        ..Default::default()
    };
    let run = |mode| {
        run_platoon(&PlatoonConfig {
            vehicles: 5,
            duration: SimDuration::from_secs(100),
            mode,
            v2v: v2v.clone(),
            lead_braking: 5.0,
            seed: 77,
            ..Default::default()
        })
    };
    let kernel = run(ControlMode::SafetyKernel);
    let cooperative = run(ControlMode::FixedLos(LevelOfService(2)));
    let conservative = run(ControlMode::FixedLos(LevelOfService(0)));

    assert_eq!(kernel.collisions, 0);
    assert_eq!(conservative.collisions, 0);
    assert!(kernel.hazard_steps <= cooperative.hazard_steps);
    assert!(kernel.min_time_gap >= cooperative.min_time_gap - 1e-9);
    assert!(kernel.throughput_veh_per_hour >= conservative.throughput_veh_per_hour * 0.95);
}

//! Property-based tests (proptest) on the core data structures and
//! invariants of the reproduction.

use proptest::prelude::*;

use karyon::net::end_to_end::{eventually_fifo, E2EConfig, EndToEndSession};
use karyon::sensors::abstract_sensor::combine_outcomes;
use karyon::sensors::detectors::{DetectionOutcome, DetectorClass};
use karyon::sensors::{marzullo_fuse, weighted_fuse, Interval, Measurement, Validity};
use karyon::sim::{EventQueue, HeapEventQueue, Rng, SimDuration, SimTime, TrainId};

proptest! {
    /// The event queue always pops events in non-decreasing time order,
    /// regardless of the insertion order.
    #[test]
    fn event_queue_is_time_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut queue = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            queue.schedule(SimTime::from_micros(*t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = queue.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// The calendar queue pops in exactly the same order as the `BinaryHeap`
    /// baseline — including FIFO ties and far-future events crossing the
    /// overflow/rebase and adaptive-resize paths — under random interleaved
    /// schedule/pop workloads.
    #[test]
    fn calendar_queue_matches_heap_queue_exactly(
        seed in any::<u64>(),
        ops in 50usize..400,
        pop_bias in 1u64..4,
    ) {
        let mut rng = Rng::seed_from(seed);
        let mut calendar: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        let mut payload = 0u64;
        let mut last_popped = SimTime::ZERO;
        for _ in 0..ops {
            if rng.range_u64(0, 3) < pop_bias {
                let expected = heap.pop();
                prop_assert_eq!(calendar.pop(), expected);
                if let Some((t, _)) = expected {
                    last_popped = t;
                }
            } else {
                // Times relative to the pop frontier: ties, near, beyond the
                // wheel window, and deep overflow jumps.
                let delta = match rng.range_u64(0, 9) {
                    0..=3 => rng.range_u64(0, 2),
                    4..=6 => rng.range_u64(10, 5_000),
                    7 => rng.range_u64(600_000, 5_000_000),
                    _ => rng.range_u64(1_000_000_000, 30_000_000_000),
                };
                let t = last_popped + SimDuration::from_micros(delta);
                calendar.schedule(t, payload);
                heap.schedule(t, payload);
                payload += 1;
            }
            prop_assert_eq!(calendar.len(), heap.len());
            prop_assert_eq!(calendar.next_time(), heap.next_time());
        }
        loop {
            let expected = heap.pop();
            prop_assert_eq!(calendar.pop(), expected);
            if expected.is_none() {
                break;
            }
        }
        prop_assert!(calendar.is_empty());
    }

    /// Three-way identity, mixed workload: the calendar queue and the heap
    /// baseline must stay pop-identical when periodic trains (created,
    /// cancelled and retuned mid-run), one-shots and batch-staged
    /// same-timestamp bursts interleave.  Train ids are allocated identically
    /// by both queues, so one id drives both.
    #[test]
    fn trains_one_shots_and_bursts_stay_heap_identical(
        seed in any::<u64>(),
        ops in 50usize..300,
    ) {
        let mut rng = Rng::seed_from(seed);
        let mut calendar: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        let mut payload = 0u64;
        let mut frontier = SimTime::ZERO;
        let mut live: Vec<TrainId> = Vec::new();
        for _ in 0..ops {
            match rng.range_u64(0, 8) {
                0..=2 => {
                    let expected = heap.pop();
                    prop_assert_eq!(calendar.pop(), expected);
                    if let Some((t, _)) = expected {
                        frontier = t;
                    }
                }
                3..=4 => {
                    // One-shot: tie with the frontier, near, or deep overflow.
                    let delta = match rng.range_u64(0, 2) {
                        0 => 0,
                        1 => rng.range_u64(1, 4_000),
                        _ => rng.range_u64(1_000_000, 20_000_000_000),
                    };
                    let t = frontier + SimDuration::from_micros(delta);
                    calendar.schedule(t, payload);
                    heap.schedule(t, payload);
                    payload += 1;
                }
                5 => {
                    // Same-timestamp burst through the batch-staging path.
                    let t = frontier + SimDuration::from_micros(rng.range_u64(0, 10_000));
                    let mut a = Vec::new();
                    for _ in 0..rng.range_u64(2, 6) {
                        a.push((t, payload));
                        payload += 1;
                    }
                    let mut b = a.clone();
                    calendar.schedule_batch(&mut a);
                    heap.schedule_batch(&mut b);
                }
                6 => {
                    if live.len() < 6 {
                        let start = frontier + SimDuration::from_micros(rng.range_u64(0, 5_000));
                        let period = SimDuration::from_micros(rng.range_u64(1, 3_000));
                        let id = calendar.schedule_periodic(start, period, payload);
                        prop_assert_eq!(heap.schedule_periodic(start, period, payload), id);
                        live.push(id);
                        payload += 1;
                    }
                }
                7 => {
                    if !live.is_empty() {
                        let at = rng.range_u64(0, live.len() as u64 - 1) as usize;
                        let id = live.swap_remove(at);
                        prop_assert_eq!(calendar.cancel_train(id), heap.cancel_train(id));
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let at = rng.range_u64(0, live.len() as u64 - 1) as usize;
                        let period = SimDuration::from_micros(rng.range_u64(1, 10_000));
                        prop_assert_eq!(
                            calendar.retune_train(live[at], period),
                            heap.retune_train(live[at], period)
                        );
                    }
                }
            }
            prop_assert_eq!(calendar.len(), heap.len());
            prop_assert_eq!(calendar.next_time(), heap.next_time());
        }
        // Cancel the survivors (trains never drain on their own), then the
        // remaining one-shots must drain identically.
        for id in live {
            prop_assert_eq!(calendar.cancel_train(id), heap.cancel_train(id));
        }
        loop {
            let expected = heap.pop();
            prop_assert_eq!(calendar.pop(), expected);
            if expected.is_none() {
                break;
            }
        }
        prop_assert!(calendar.is_empty());
    }

    /// The train fast path against its own semantic definition: a periodic
    /// train must pop exactly like all of its ticks eagerly scheduled as
    /// one-shots at the `schedule_periodic` call — including FIFO ties
    /// against one-shots placed exactly on tick times before and after the
    /// train's creation.
    #[test]
    fn periodic_fast_path_matches_eager_materialization(
        seed in any::<u64>(),
        trains in 1usize..5,
    ) {
        let horizon = SimTime::from_millis(50);
        let mut rng = Rng::seed_from(seed);
        let mut fast: EventQueue<u64> = EventQueue::new();
        let mut eager: EventQueue<u64> = EventQueue::new();
        let mut payload = 1_000_000u64;
        for train in 0..trains as u64 {
            let start = SimTime::from_micros(rng.range_u64(0, 10_000));
            let period = SimDuration::from_micros(rng.range_u64(100, 5_000));
            // A one-shot scheduled *before* the train, exactly on a future
            // tick time: it must win that tie in both queues.
            let before = start + period.saturating_mul(rng.range_u64(0, 10));
            fast.schedule(before, payload);
            eager.schedule(before, payload);
            payload += 1;
            fast.schedule_periodic(start, period, train);
            let mut t = start;
            while t <= horizon {
                eager.schedule(t, train);
                t += period;
            }
            // And one *after*, again on a tick time: it must lose the tie.
            let after = start + period.saturating_mul(rng.range_u64(0, 10));
            fast.schedule(after, payload);
            eager.schedule(after, payload);
            payload += 1;
        }
        loop {
            let expected = eager.pop_until(horizon);
            prop_assert_eq!(fast.pop_until(horizon), expected);
            if expected.is_none() {
                break;
            }
        }
    }

    /// Validity is always clamped into [0, 1] and combination never exceeds
    /// either operand.
    #[test]
    fn validity_combination_is_bounded(a in -2.0f64..3.0, b in -2.0f64..3.0) {
        let va = Validity::new(a);
        let vb = Validity::new(b);
        prop_assert!((0.0..=1.0).contains(&va.fraction()));
        let combined = va.combine(vb);
        prop_assert!(combined.fraction() <= va.fraction() + 1e-12);
        prop_assert!(combined.fraction() <= vb.fraction() + 1e-12);
        prop_assert!(combined.fraction() >= 0.0);
    }

    /// Combining detector outcomes yields 0 iff some dominant detector failed
    /// (continuous detectors alone can only approach zero).
    #[test]
    fn dominant_failures_always_invalidate(
        graded in proptest::collection::vec(0.01f64..1.0, 0..6),
        include_failure in any::<bool>(),
    ) {
        let mut outcomes: Vec<DetectionOutcome> =
            graded.iter().map(|v| DetectionOutcome::graded(Validity::new(*v))).collect();
        if include_failure {
            outcomes.push(DetectionOutcome::dominant_failure());
        } else {
            outcomes.push(DetectionOutcome::pass(DetectorClass::Dominant));
        }
        let combined = combine_outcomes(&outcomes);
        if include_failure {
            prop_assert!(combined.is_invalid());
        } else {
            prop_assert!(!combined.is_invalid());
        }
    }

    /// Marzullo fusion with f faulty sensors always returns an interval that
    /// overlaps the true value whenever at least n-f intervals contain it.
    #[test]
    fn marzullo_result_is_consistent_with_correct_majority(
        truth in -100.0f64..100.0,
        widths in proptest::collection::vec(0.5f64..5.0, 3..9),
        outlier_offset in 50.0f64..500.0,
    ) {
        let n = widths.len();
        let f = 1usize;
        // n-1 correct intervals around the truth, one outlier.
        let mut intervals: Vec<Interval> = widths
            .iter()
            .take(n - 1)
            .map(|w| Interval::new(truth - w, truth + w))
            .collect();
        intervals.push(Interval::new(truth + outlier_offset, truth + outlier_offset + 1.0));
        let fused = marzullo_fuse(&intervals, f).expect("fusion must succeed with one fault");
        prop_assert!(fused.contains(truth), "fused {fused:?} does not contain {truth}");
    }

    /// Validity-weighted fusion stays within the range of the valid inputs.
    #[test]
    fn weighted_fusion_stays_in_input_range(
        values in proptest::collection::vec(-50.0f64..50.0, 1..8),
        validities in proptest::collection::vec(0.1f64..1.0, 1..8),
    ) {
        let n = values.len().min(validities.len());
        let readings: Vec<(Measurement, Validity)> = (0..n)
            .map(|i| (Measurement::new(values[i], SimTime::ZERO, 1.0), Validity::new(validities[i])))
            .collect();
        let (fused, validity) = weighted_fuse(&readings).expect("non-empty fusion");
        let lo = values[..n].iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values[..n].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(fused >= lo - 1e-9 && fused <= hi + 1e-9);
        prop_assert!((0.0..=1.0).contains(&validity.fraction()));
    }

    /// The deterministic RNG produces identical streams for identical seeds
    /// and stays within requested ranges.
    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>(), lo in 0u64..1_000, span in 1u64..1_000) {
        let mut a = Rng::seed_from(seed);
        let mut b = Rng::seed_from(seed);
        for _ in 0..32 {
            let x = a.range_u64(lo, lo + span);
            let y = b.range_u64(lo, lo + span);
            prop_assert_eq!(x, y);
            prop_assert!((lo..=lo + span).contains(&x));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The self-stabilizing end-to-end protocol delivers FIFO without
    /// omission or duplication for arbitrary (bounded) channel error rates
    /// from a clean start.
    #[test]
    fn end_to_end_fifo_holds_for_random_error_rates(
        seed in any::<u64>(),
        omission in 0.0f64..0.4,
        duplication in 0.0f64..0.4,
        capacity in 1usize..10,
    ) {
        let config = E2EConfig { capacity, omission, duplication, reorder: true };
        let mut session = EndToEndSession::new(&config, seed);
        let sent: Vec<u64> = (1..=30).collect();
        for &m in &sent {
            session.sender.enqueue(m);
        }
        session.run_until_drained(2_000_000);
        prop_assert!(eventually_fifo(&sent, session.receiver.delivered(), 0));
    }
}

//! Shard/merge determinism properties plus the DST shard-handoff drills.
//!
//! Part 1 — the flagship byte-identity property: a campaign split into an
//! arbitrary shard plan, each shard run in its own "session" with its own
//! worker count, the manifests round-tripped through disk and merged in an
//! arbitrary presentation order, must reproduce the single-machine report,
//! JSONL stream and trace stream **byte for byte**.
//!
//! Part 2 — deterministic-simulation drills of the [`ShardCoordinator`]
//! handoff protocol over [`SimTransport`]: lossy/partitioned fabric,
//! `FaultPlan`-driven worker deaths, lease-timeout reassignment.  The drills
//! assert the protocol's safety net end to end — every shard completes
//! exactly once in the merge log, an expired lease is reassigned exactly
//! once, duplicated or stale completions never double-merge — and that the
//! report merged from the drill's surviving artifacts is byte-identical to
//! the uninterrupted single-machine reference with `suspect_runs == 0`.  A
//! seed-replay property pins the whole delivery interleaving: the same seeds
//! replay the same history, message for message.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use karyon::scenario::aggregate::ChunkPartial;
use karyon::scenario::fault::is_injected;
use karyon::scenario::{
    merge_shards, read_run_segment, read_trace_segment, Campaign, CampaignEntry, CampaignTelemetry,
    Fault, FaultInjector, FaultPlan, JsonlRunWriter, ParamGrid, RunRecord, Scenario,
    ScenarioRegistry, ScenarioSpec, ShardManifest, ShardPlan,
};
use karyon::sim::{splitmix64, SimDuration, SimTime};
use karyon::telemetry::{trace, AttrValue, JsonlTraceWriter};
use karyon::transport::{
    Delivery, MergeRecord, NetTransport, NodeId, PartitionWindow, ShardCoordinator, ShardMsg,
    SimTransport,
};

/// The adversarial scenario from the checkpoint suite: a pre-agreed-range
/// metric, a wild-range metric (exact-until-spill quantiles), an absent-some
/// metric, an occasional NaN, and virtual-time trace records.
struct Noise;

impl Scenario for Noise {
    fn name(&self) -> &str {
        "noise"
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "ranged" => Some((0.0, 1.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let mut state = spec.seed;
        let a = splitmix64(&mut state);
        let b = splitmix64(&mut state);
        trace::event(
            "noise.sample",
            SimTime::from_micros(a % 1_000),
            &[("a", AttrValue::U64(a % 97))],
        );
        trace::span("noise.run", SimTime::ZERO, SimTime::from_micros(1 + b % 1_000), &[]);
        let mut record = RunRecord::new();
        record.set("ranged", (a >> 11) as f64 / (1u64 << 53) as f64);
        record.set("wild", ((b % 10_000) as f64 - 5_000.0) * spec.f64_or("scale", 1.0));
        if a % 5 == 0 {
            record.set("sometimes", (a % 97) as f64);
        }
        if b % 31 == 0 {
            record.set("broken", f64::NAN);
        }
        record
    }
}

/// A clean deterministic scenario for the coordinator drills: every metric
/// always present and finite, so the merged report must carry
/// `suspect_runs == 0`.
struct Drill;

impl Scenario for Drill {
    fn name(&self) -> &str {
        "drill"
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        (metric == "latency").then_some((0.0, 1.0))
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let mut state = spec.seed;
        let a = splitmix64(&mut state);
        let b = splitmix64(&mut state);
        let mut record = RunRecord::new();
        record.set("latency", (a >> 11) as f64 / (1u64 << 53) as f64);
        record.set("value", (b % 10_000) as f64);
        record
    }
}

fn registry() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::new();
    registry.register(Arc::new(Noise));
    registry.register(Arc::new(Drill));
    registry
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("karyon-shard-{}-{tag}", std::process::id()));
    fs::create_dir_all(&dir).expect("temp dir is writable");
    dir
}

fn noise_campaign(seed: u64, replications: u64, chunk_size: usize, threads: usize) -> Campaign {
    Campaign::new("shard-prop", seed).with_chunk_size(chunk_size).with_threads(threads).entry(
        CampaignEntry::new("noise")
            .grid(ParamGrid::new().axis("scale", [1.0, 2.5]))
            .replications(replications),
    )
}

fn drill_campaign(seed: u64, replications: u64, chunk_size: usize) -> Campaign {
    Campaign::new("drill", seed).with_chunk_size(chunk_size).with_threads(1).entry(
        CampaignEntry::new("drill")
            .grid(ParamGrid::new().axis("load", [0.5, 1.5]))
            .replications(replications),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole acceptance property: for an arbitrary shard plan, with an
    /// arbitrary worker count per shard and an arbitrary merge presentation
    /// order, the merged report, stitched JSONL stream and stitched trace
    /// stream are byte-identical to an uninterrupted single-session run's.
    #[test]
    fn sharded_campaigns_merge_byte_identically(
        seed in 0u64..100_000,
        replications in 4u64..32,
        chunk_size in 1usize..10,
        shard_count in 1usize..6,
        thread_salt in 0u64..1_000,
        rotate in 0usize..6,
    ) {
        let registry = registry();

        // The uninterrupted traced reference.
        let reference = noise_campaign(seed, replications, chunk_size, 1 + (thread_salt % 4) as usize);
        let mut ref_jsonl = JsonlRunWriter::new(Vec::new());
        let mut ref_trace = JsonlTraceWriter::new(Vec::new());
        let (expected_report, _) = reference
            .run_instrumented_with(
                &registry,
                Some(&mut ref_jsonl),
                CampaignTelemetry::none().with_trace(&mut ref_trace),
            )
            .expect("reference runs");
        let expected_jsonl = ref_jsonl.finish().expect("in-memory stream");
        let expected_trace = ref_trace.into_inner().expect("in-memory stream");

        // Each shard in its own "session": its own Campaign value, its own
        // worker count, its own artifact files.
        let dir = scratch_dir("prop");
        let tag = format!("{seed}-{replications}-{chunk_size}-{shard_count}-{thread_salt}");
        let plan = ShardPlan::for_campaign(&reference, shard_count);
        let mut manifests = Vec::new();
        let mut segment_paths = Vec::new();
        for slice in plan.slices() {
            let threads = 1 + ((thread_salt + slice.index as u64) % 4) as usize;
            let campaign = noise_campaign(seed, replications, chunk_size, threads);
            let jsonl_path = dir.join(format!("{tag}.s{}.jsonl", slice.index));
            let trace_path = dir.join(format!("{tag}.s{}.trace.jsonl", slice.index));
            let manifest_path = dir.join(format!("{tag}.s{}.manifest.json", slice.index));
            let mut jsonl =
                JsonlRunWriter::new(fs::File::create(&jsonl_path).expect("segment opens"));
            let mut trace_sink =
                JsonlTraceWriter::new(fs::File::create(&trace_path).expect("trace opens"));
            let (partials, _) = campaign
                .run_shard_with(
                    &registry,
                    slice.start_chunk,
                    slice.end_chunk,
                    Some(&mut jsonl),
                    CampaignTelemetry::none().with_trace(&mut trace_sink),
                    None,
                )
                .expect("shard session runs");
            jsonl.finish().expect("segment closes");
            trace_sink.into_inner().expect("trace closes");
            ShardManifest::new(&campaign, *slice, partials)
                .expect("window partials fit the slice")
                .write(&manifest_path)
                .expect("manifest writes");
            // Round-trip through disk: merge only ever sees loaded manifests.
            manifests.push(ShardManifest::load(&manifest_path).expect("manifest reloads"));
            segment_paths.push((jsonl_path, trace_path, manifest_path));
        }

        // Stitch the streams in window order through the real segment
        // readers, exactly as `karyon-campaign merge` does.
        let mut stitched_jsonl = Vec::new();
        let mut stitched_trace = Vec::new();
        for manifest in &manifests {
            let (start, end) = manifest.run_range();
            if start == end {
                continue;
            }
            let (jsonl_path, trace_path, _) = &segment_paths[manifest.shard_index];
            stitched_jsonl
                .extend_from_slice(&read_run_segment(jsonl_path, start, end).expect("segment"));
            stitched_trace
                .extend_from_slice(&read_trace_segment(trace_path, start, end).expect("trace"));
        }
        prop_assert!(stitched_jsonl == expected_jsonl, "stitched JSONL differs from reference");
        prop_assert!(stitched_trace == expected_trace, "stitched trace differs from reference");

        // Merge in an arbitrary presentation order.
        let pivot = rotate % manifests.len().max(1);
        manifests.rotate_left(pivot);
        let merged = merge_shards(&reference, manifests).expect("a complete set merges");
        prop_assert_eq!(&merged, &expected_report);
        prop_assert_eq!(merged.to_json(), expected_report.to_json());

        for (jsonl_path, trace_path, manifest_path) in segment_paths {
            fs::remove_file(jsonl_path).ok();
            fs::remove_file(trace_path).ok();
            fs::remove_file(manifest_path).ok();
        }
    }
}

// --- The DST shard-handoff drill harness -----------------------------------

const COORD: NodeId = NodeId(0);

fn tick() -> SimDuration {
    SimDuration::from_millis(10)
}
fn lease() -> SimDuration {
    SimDuration::from_millis(400)
}
fn claim_retry() -> SimDuration {
    SimDuration::from_millis(50)
}
fn per_chunk_work() -> SimDuration {
    SimDuration::from_millis(20)
}

enum WorkerState {
    Idle,
    Waiting { since: SimTime },
    Working { shard: usize, attempt: u32, start: usize, end: usize, until: SimTime },
    Dead,
    Stopped,
}

struct Worker {
    node: NodeId,
    state: WorkerState,
    /// `FaultPlan`-armed injector: this worker dies mid-shard the first time
    /// it executes a window one of the plan's worker-death faults lands in.
    injector: Option<FaultInjector>,
}

/// Everything one drill produced, sufficient both for the protocol
/// assertions and for the seed-replay comparison (`history` records every
/// delivery plus the terminal counters, message for message).
struct DrillOutcome {
    merge_log: Vec<MergeRecord>,
    reassignments: u64,
    ignored_completes: u64,
    dead_workers: Vec<u32>,
    /// Chunk partials per completed execution, keyed by (worker, shard).
    partials: HashMap<(u32, usize), Vec<ChunkPartial>>,
    history: Vec<String>,
}

/// Runs one complete shard-handoff drill: `worker_count` workers claim the
/// campaign's `shard_count`-way plan from a coordinator over a seeded
/// [`SimTransport`], with optional scheduled partitions and `FaultPlan`-driven
/// worker deaths, until every shard is in the merge log.
fn run_drill(
    campaign: &Campaign,
    registry: &ScenarioRegistry,
    shard_count: usize,
    worker_count: usize,
    net_seed: u64,
    death_plans: &HashMap<u32, FaultPlan>,
    partitions: &[PartitionWindow],
) -> DrillOutcome {
    let plan = ShardPlan::for_campaign(campaign, shard_count);
    let windows: Vec<(usize, usize)> =
        plan.slices().iter().map(|s| (s.start_chunk, s.end_chunk)).collect();

    let mut net = SimTransport::new(net_seed);
    for window in partitions {
        net.add_partition(window.clone());
    }
    let mut coordinator = ShardCoordinator::new(COORD, &windows, lease());
    let mut workers: Vec<Worker> = (1..=worker_count as u32)
        .map(|id| Worker {
            node: NodeId(id),
            state: WorkerState::Idle,
            injector: death_plans.get(&id).map(FaultPlan::injector),
        })
        .collect();
    let mut partials: HashMap<(u32, usize), Vec<ChunkPartial>> = HashMap::new();
    let mut history = Vec::new();

    let mut ticks = 0u32;
    while !coordinator.is_complete() {
        ticks += 1;
        assert!(ticks < 4_000, "the drill must converge (stalled after {ticks} ticks)");
        let deadline = net.now() + tick();
        for delivery in net.advance_to(deadline) {
            history.push(format!(
                "{}->{} @{}us {:?} dup={}",
                delivery.src.0,
                delivery.dst.0,
                delivery.delivered_at.as_micros(),
                String::from_utf8_lossy(&delivery.payload),
                delivery.duplicate,
            ));
            if delivery.dst == COORD {
                coordinator.on_delivery(&delivery, &mut net);
            } else if let Some(worker) = workers.iter_mut().find(|w| w.node == delivery.dst) {
                worker_on_delivery(worker, &delivery, &mut net);
            }
        }
        coordinator.on_tick(&mut net);
        for worker in &mut workers {
            worker_act(worker, campaign, registry, &mut partials, &mut net, &mut history);
        }
    }
    // Let the fabric settle so the replay comparison also covers stragglers
    // (late duplicates, completes racing the final grant).
    for delivery in net.drain() {
        history.push(format!(
            "{}->{} @{}us {:?} dup={} (post)",
            delivery.src.0,
            delivery.dst.0,
            delivery.delivered_at.as_micros(),
            String::from_utf8_lossy(&delivery.payload),
            delivery.duplicate,
        ));
        if delivery.dst == COORD {
            coordinator.on_delivery(&delivery, &mut net);
        }
    }
    let stats = net.stats();
    history.push(format!(
        "end: reassigned={} ignored={} stats={stats:?}",
        coordinator.reassignments(),
        coordinator.ignored_completes(),
    ));

    DrillOutcome {
        merge_log: coordinator.merge_log().to_vec(),
        reassignments: coordinator.reassignments(),
        ignored_completes: coordinator.ignored_completes(),
        dead_workers: workers
            .iter()
            .filter(|w| matches!(w.state, WorkerState::Dead))
            .map(|w| w.node.0)
            .collect(),
        partials,
        history,
    }
}

fn worker_on_delivery(worker: &mut Worker, delivery: &Delivery, net: &mut dyn NetTransport) {
    let Ok(msg) = ShardMsg::decode(&delivery.payload) else { return };
    match (&worker.state, msg) {
        (WorkerState::Dead | WorkerState::Stopped, _) => {}
        (_, ShardMsg::Done) => worker.state = WorkerState::Stopped,
        (
            WorkerState::Idle | WorkerState::Waiting { .. },
            ShardMsg::Grant { shard, start_chunk, end_chunk, attempt, .. },
        ) => {
            let work = per_chunk_work().saturating_mul((end_chunk - start_chunk) as u64);
            worker.state = WorkerState::Working {
                shard,
                attempt,
                start: start_chunk,
                end: end_chunk,
                until: net.now() + work,
            };
        }
        (WorkerState::Idle | WorkerState::Waiting { .. }, ShardMsg::Idle) => {
            // Nothing to do right now: back off one claim-retry interval.
            worker.state = WorkerState::Waiting { since: net.now() };
        }
        // A duplicate grant while already working, or any stray message:
        // ignore — the protocol must tolerate fabric noise.
        _ => {}
    }
}

fn worker_act(
    worker: &mut Worker,
    campaign: &Campaign,
    registry: &ScenarioRegistry,
    partials: &mut HashMap<(u32, usize), Vec<ChunkPartial>>,
    net: &mut dyn NetTransport,
    history: &mut Vec<String>,
) {
    match worker.state {
        WorkerState::Idle => {
            net.send(worker.node, COORD, ShardMsg::Claim { worker: worker.node }.encode());
            worker.state = WorkerState::Waiting { since: net.now() };
        }
        WorkerState::Waiting { since } => {
            // Claims and grants can be severed by partitions: retry.
            if net.now().since(since) >= claim_retry() {
                net.send(worker.node, COORD, ShardMsg::Claim { worker: worker.node }.encode());
                worker.state = WorkerState::Waiting { since: net.now() };
            }
        }
        WorkerState::Working { shard, attempt, start, end, until } => {
            if net.now() < until {
                return;
            }
            // The simulated work interval has elapsed: execute the window
            // for real.  A `FaultPlan` worker-death fault landing in the
            // window kills this worker mid-shard — it never completes, and
            // its lease must expire and be reassigned.
            match campaign.run_shard_with(
                registry,
                start,
                end,
                None,
                CampaignTelemetry::none(),
                worker.injector.as_ref(),
            ) {
                Ok((chunks, _)) => {
                    partials.insert((worker.node.0, shard), chunks);
                    net.send(
                        worker.node,
                        COORD,
                        ShardMsg::Complete { worker: worker.node, shard, attempt }.encode(),
                    );
                    worker.state = WorkerState::Idle;
                }
                Err(error) => {
                    assert!(is_injected(&error), "only injected faults kill workers: {error}");
                    history.push(format!(
                        "worker {} died on shard {shard} attempt {attempt}: {error}",
                        worker.node.0
                    ));
                    worker.state = WorkerState::Dead;
                }
            }
        }
        WorkerState::Dead | WorkerState::Stopped => {}
    }
}

/// A fault plan that kills its worker on the *first* window it executes,
/// whichever shard the coordinator happens to grant it: one worker-death
/// fault per canonical chunk (each one-shot, only the first ever fires).
fn die_on_first_window(chunks: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for chunk in 0..chunks {
        plan = plan.with(Fault::WorkerDeath { at_chunk: chunk });
    }
    plan
}

/// Rebuilds the shard manifests the drill's merge log points at — each from
/// the accepted completer's recorded partials — and merges them.
fn merge_drill(
    campaign: &Campaign,
    shard_count: usize,
    outcome: &DrillOutcome,
) -> karyon::scenario::CampaignReport {
    let plan = ShardPlan::for_campaign(campaign, shard_count);
    let manifests: Vec<ShardManifest> = outcome
        .merge_log
        .iter()
        .map(|record| {
            let chunks = outcome
                .partials
                .get(&(record.worker.0, record.shard))
                .expect("the accepted completer recorded its partials")
                .clone();
            ShardManifest::new(campaign, plan.slice(record.shard), chunks)
                .expect("drill partials fit their windows")
        })
        .collect();
    merge_shards(campaign, manifests).expect("the drill's shard set merges")
}

/// The focused lease-expiry drill: two workers, three shards, worker 1 dies
/// mid-shard on its first window (FaultPlan-driven).  Its lease must expire
/// and be reassigned **exactly once**, the late-arriving ghost completion
/// must never double-merge, and the merged report must be byte-identical to
/// the single-machine reference with zero suspect runs.
#[test]
fn a_dead_workers_lease_is_reassigned_exactly_once_over_the_simulated_fabric() {
    let registry = registry();
    let campaign = drill_campaign(4242, 30, 4);
    let chunks = campaign.canonical_chunks();
    let expected = campaign.run(&registry).expect("reference runs");

    let deaths = HashMap::from([(1u32, die_on_first_window(chunks))]);
    let outcome = run_drill(&campaign, &registry, 3, 2, 77, &deaths, &[]);

    assert_eq!(outcome.dead_workers, vec![1], "worker 1 dies on its first window");
    assert_eq!(outcome.reassignments, 1, "exactly one lease expiry: the dead worker's");
    let mut shards: Vec<usize> = outcome.merge_log.iter().map(|r| r.shard).collect();
    shards.sort_unstable();
    assert_eq!(shards, vec![0, 1, 2], "every shard completes exactly once");
    assert!(
        outcome.merge_log.iter().all(|r| r.worker == NodeId(2)),
        "only the surviving worker's completions are accepted: {:?}",
        outcome.merge_log
    );
    let reassigned: Vec<&MergeRecord> =
        outcome.merge_log.iter().filter(|r| r.attempt == 2).collect();
    assert_eq!(reassigned.len(), 1, "exactly one shard needed a second attempt");

    let merged = merge_drill(&campaign, 3, &outcome);
    assert_eq!(merged, expected);
    assert_eq!(merged.to_json(), expected.to_json());
    assert_eq!(merged.suspect_runs(), 0);
}

/// The full chaos drill: three workers, five shards, one FaultPlan-driven
/// worker death, plus a partition window severing another worker from the
/// coordinator — dropping claims, grants and completions on the floor.  The
/// protocol must still converge with every shard merged exactly once and the
/// merged report byte-identical to the reference.
#[test]
fn the_handoff_protocol_survives_partitions_and_a_worker_death() {
    let registry = registry();
    let campaign = drill_campaign(910, 40, 4);
    let chunks = campaign.canonical_chunks();
    let expected = campaign.run(&registry).expect("reference runs");

    let deaths = HashMap::from([(2u32, die_on_first_window(chunks))]);
    let partition = PartitionWindow {
        from: SimTime::from_millis(40),
        until: SimTime::from_millis(260),
        group_a: vec![COORD],
        group_b: vec![NodeId(3)],
    };
    let outcome = run_drill(&campaign, &registry, 5, 3, 123, &deaths, &[partition]);

    assert_eq!(outcome.dead_workers, vec![2]);
    assert!(outcome.reassignments >= 1, "the dead worker's lease must expire");
    let mut shards: Vec<usize> = outcome.merge_log.iter().map(|r| r.shard).collect();
    shards.sort_unstable();
    assert_eq!(shards, vec![0, 1, 2, 3, 4], "each shard exactly once, never double-merged");

    let merged = merge_drill(&campaign, 5, &outcome);
    assert_eq!(merged, expected);
    assert_eq!(merged.to_json(), expected.to_json());
    assert_eq!(merged.suspect_runs(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Seed-replay determinism of the whole drill: the same (net seed,
    /// topology, death plan, partition schedule) replays the identical
    /// delivery history message for message, the identical merge log, and a
    /// merged report byte-identical to the single-machine reference.
    #[test]
    fn drill_interleavings_replay_bit_identically_from_their_seeds(
        net_seed in 0u64..100_000,
        campaign_seed in 0u64..10_000,
        worker_count in 2usize..5,
        shard_count in 1usize..7,
        death_sel in 0usize..6,
        partition_from_ms in 0u64..200,
        partition_len_ms in 0u64..300,
    ) {
        let registry = registry();
        let campaign = drill_campaign(campaign_seed, 16, 3);
        let chunks = campaign.canonical_chunks();
        let expected = campaign.run(&registry).expect("reference runs");

        // At most one death, always leaving a survivor.
        let mut deaths = HashMap::new();
        if death_sel < worker_count {
            deaths.insert(1 + death_sel as u32, die_on_first_window(chunks));
        }
        // Partition an arbitrary worker (possibly the dying one) from the
        // coordinator for a bounded window.
        let partitions = vec![PartitionWindow {
            from: SimTime::from_millis(partition_from_ms),
            until: SimTime::from_millis(partition_from_ms + partition_len_ms),
            group_a: vec![COORD],
            group_b: vec![NodeId(1 + (net_seed % worker_count as u64) as u32)],
        }];

        let first = run_drill(
            &campaign, &registry, shard_count, worker_count, net_seed, &deaths, &partitions,
        );
        let second = run_drill(
            &campaign, &registry, shard_count, worker_count, net_seed, &deaths, &partitions,
        );
        prop_assert_eq!(&first.history, &second.history);
        prop_assert_eq!(&first.merge_log, &second.merge_log);
        prop_assert_eq!(first.reassignments, second.reassignments);
        prop_assert_eq!(first.ignored_completes, second.ignored_completes);

        // Safety invariants hold for every sampled interleaving.
        let mut shards: Vec<usize> = first.merge_log.iter().map(|r| r.shard).collect();
        shards.sort_unstable();
        prop_assert_eq!(&shards, &(0..shard_count).collect::<Vec<_>>());
        let merged = merge_drill(&campaign, shard_count, &first);
        prop_assert_eq!(&merged, &expected);
        prop_assert_eq!(merged.to_json(), expected.to_json());
        prop_assert_eq!(merged.suspect_runs(), 0);
    }
}

//! EventBus v2 backpressure edge cases (ISSUE 6, satellite 3): dead mailboxes
//! never deliver, overload accounting conserves every published copy, the
//! sampling strategy stays campaign-deterministic for any worker count, and
//! the deprecated v1 wrappers remain behaviorally equivalent.

use proptest::prelude::*;

use karyon::middleware::{
    EventBus, NetworkCapability, NetworkId, OverloadStrategy, Payload, QosClass, QosRequirement,
    SubscriptionStats,
};
use karyon::scenario::{builtin_registry, Campaign, CampaignEntry, ParamGrid};
use karyon::sim::SimTime;

fn local_bus(seed: u64) -> EventBus {
    let mut bus = EventBus::new(seed);
    bus.attach_network(NetworkId(0), NetworkCapability::local_bus());
    bus
}

/// Every copy routed to a subscription is accounted for exactly once at the
/// publish side: enqueued, lost, filtered, or shed by one of the overload
/// paths (aggregate coalescing included).
fn assert_publish_conservation(stats: &SubscriptionStats) {
    assert_eq!(
        stats.matched,
        stats.enqueued
            + stats.dropped_loss
            + stats.filtered_out
            + stats.dropped_pressure
            + stats.dropped_capacity
            + stats.sampled_out
            + stats.aggregated_merged,
        "publish-side conservation violated: {stats:?}"
    );
    // ... and every enqueued copy is still queued, delivered, displaced by a
    // newer one, or discarded with the mailbox.
    assert_eq!(
        stats.enqueued,
        stats.delivered + stats.backlog + stats.displaced + stats.discarded_on_unsubscribe,
        "mailbox-side conservation violated: {stats:?}"
    );
}

proptest! {
    /// Unsubscribing mid-overload never delivers another event: whatever was
    /// queued is discarded, the global backlog shrinks accordingly, and
    /// later publishes neither match nor enqueue to the dead mailbox —
    /// across random capacities, strategies and publish/unsubscribe splits.
    #[test]
    fn unsubscribe_mid_overload_never_delivers_to_a_dead_mailbox(
        seed in any::<u64>(),
        capacity in 1usize..16,
        strategy_idx in 0usize..4,
        before in 1u64..200,
        after in 1u64..200,
    ) {
        let strategy = [
            OverloadStrategy::DropNewest,
            OverloadStrategy::DropOldest,
            OverloadStrategy::Sample { keep_1_in: 3 },
            OverloadStrategy::Aggregate,
        ][strategy_idx];
        let mut bus = local_bus(seed);
        let survivor = bus.topic("t.load").subscribe(QosClass::Background);
        let victim = bus
            .topic("t.load")
            .mailbox(capacity)
            .overload(strategy)
            .subscribe(QosClass::Batched);
        let publisher = bus.topic("t.load").announce(QosRequirement::best_effort());
        for i in 0..before {
            bus.publish(&publisher, Payload::tagged(i), SimTime::from_millis(i));
        }
        // Mid-overload: the victim's mailbox is (typically) saturated now.
        let queued = bus.subscription_stats(victim).unwrap().backlog;
        let backlog_before = bus.backlog() as u64;
        prop_assert!(bus.unsubscribe(victim));
        prop_assert_eq!(bus.backlog() as u64, backlog_before - queued);
        prop_assert!(bus.poll(victim, SimTime::from_secs(60)).is_none());

        for i in 0..after {
            bus.publish(&publisher, Payload::tagged(before + i), SimTime::from_millis(before + i));
        }
        let stats = bus.subscription_stats(victim).unwrap();
        // A dead mailbox must never deliver, and post-unsubscribe publishes
        // must not route to it.
        prop_assert_eq!(stats.delivered, 0);
        prop_assert_eq!(stats.matched, before);
        prop_assert_eq!(stats.backlog, 0);
        prop_assert_eq!(stats.discarded_on_unsubscribe, queued);
        assert_publish_conservation(&stats);
        // The surviving subscription keeps receiving.
        let survivor_stats = bus.subscription_stats(survivor).unwrap();
        prop_assert_eq!(survivor_stats.matched, before + after);
        assert_publish_conservation(&survivor_stats);
    }

    /// Sustained overload through the drop strategies: accounting conserves
    /// every copy, the mailbox never exceeds its capacity, and drop-oldest
    /// always hands the subscriber the newest window in FIFO order.
    #[test]
    fn drop_strategies_conserve_events_under_sustained_overload(
        seed in any::<u64>(),
        capacity in 1usize..12,
        publishes in 50u64..500,
        drain_every in 5u64..50,
    ) {
        let mut bus = local_bus(seed);
        let newest = bus.topic("t.sat").mailbox(capacity).subscribe(QosClass::Realtime);
        let oldest = bus
            .topic("t.sat")
            .mailbox(capacity)
            .overload(OverloadStrategy::DropOldest)
            .subscribe(QosClass::Batched);
        let publisher = bus.topic("t.sat").announce(QosRequirement::best_effort());
        let mut last_tag: Option<u64> = None;
        for i in 0..publishes {
            bus.publish(&publisher, Payload::tagged(i), SimTime::from_millis(i));
            prop_assert!(bus.subscription_stats(oldest).unwrap().backlog <= capacity as u64);
            if i % drain_every == 0 {
                bus.drain_with(oldest, SimTime::from_secs(i + 1), usize::MAX, |ev| {
                    // FIFO over the surviving (newest) window: tags only grow.
                    if let Some(last) = last_tag {
                        assert!(ev.payload.tag > last, "stale event after drop-oldest");
                    }
                    last_tag = Some(ev.payload.tag);
                });
            }
        }
        for sub in [newest, oldest] {
            assert_publish_conservation(&bus.subscription_stats(sub).unwrap());
        }
    }

    /// The aggregate strategy under sustained overload: nothing is dropped
    /// at the mailbox — every non-lost copy ends up *represented* by some
    /// delivered summary, and the coalesced slot carries the freshest tag.
    #[test]
    fn aggregate_represents_every_surviving_copy(
        seed in any::<u64>(),
        capacity in 1usize..8,
        publishes in 20u64..300,
    ) {
        let mut bus = local_bus(seed);
        let sub = bus
            .topic("t.agg")
            .mailbox(capacity)
            .overload(OverloadStrategy::Aggregate)
            .subscribe(QosClass::Background);
        let publisher = bus.topic("t.agg").announce(QosRequirement::best_effort());
        for i in 0..publishes {
            bus.publish(&publisher, Payload::tagged(i), SimTime::from_millis(i));
        }
        let mut represented = 0u64;
        bus.drain_with(sub, SimTime::from_secs(600), usize::MAX, |ev| {
            represented += u64::from(ev.represents);
        });
        let stats = bus.subscription_stats(sub).unwrap();
        prop_assert_eq!(stats.dropped_capacity + stats.displaced + stats.sampled_out, 0);
        // Every copy is delivered, represented in a summary, or lost on the
        // network.
        prop_assert_eq!(represented + stats.dropped_loss, publishes);
        prop_assert_eq!(stats.represented, represented);
        assert_publish_conservation(&stats);
    }
}

/// The sampling overload strategy keeps the canonical-aggregation contract:
/// a campaign over `middleware-overload` with `strategy = "sample"` is
/// bit-identical for 1 vs 4 workers (and its runs stay suspect-free).
#[test]
fn sampling_campaigns_are_bit_identical_for_any_worker_count() {
    let registry = builtin_registry();
    let build = || {
        Campaign::new("sampling-determinism", 23).with_chunk_size(1).entry(
            CampaignEntry::new("middleware-overload")
                .grid(
                    ParamGrid::new()
                        .axis("load_x", [10.0])
                        .axis("qos_mix", ["mixed", "batched"])
                        .axis("strategy", ["sample"]),
                )
                .replications(3)
                .duration_secs(10),
        )
    };
    let serial = build().with_threads(1).run(&registry).expect("builtin family");
    let parallel = build().with_threads(4).run(&registry).expect("builtin family");
    assert_eq!(serial, parallel);
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(serial.suspect_runs(), 0);
    assert_eq!(serial.total_runs, 6);
}

/// The deprecated v1 wrappers stay behaviorally equivalent: subject-keyed
/// subscribe/announce/publish_from drive the same v2 bus, and the aggregated
/// `channel_stats` match the per-subscription `SubscriptionStats`.
#[test]
#[allow(deprecated)]
fn legacy_wrappers_delegate_to_the_v2_bus() {
    use karyon::middleware::{ContextFilter, Subject, SubscriberId};

    let mut bus = local_bus(11);
    let subject = Subject::from_name("legacy.topic");
    let sub = bus.subscribe(SubscriberId(1), NetworkId(0), subject, ContextFilter::accept_all());
    assert_eq!(
        bus.announce(subject, NetworkId(0), QosRequirement::best_effort()),
        karyon::middleware::Admission::Admitted
    );
    let mut delivered = 0u64;
    for i in 0..100u64 {
        delivered +=
            bus.publish_from(subject, None, vec![1], SimTime::from_millis(i * 10)).len() as u64;
    }
    let channel = bus.channel_stats(subject).expect("announced");
    let per_sub = bus.subscription_stats(sub).expect("subscribed");
    assert_eq!(channel.published, 100);
    assert_eq!(channel.delivered, delivered);
    assert_eq!(per_sub.delivered, delivered);
    assert_eq!(channel.missed_deadline, per_sub.missed_deadline);
    assert!((channel.mean_latency_ms - per_sub.mean_latency_ms).abs() < 1e-9);
    assert_publish_conservation(&per_sub);
}

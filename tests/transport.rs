//! Integration and property tests for the `karyon-transport` fabric seam:
//! loopback FIFO semantics, the `SimTransport` seed-replay determinism
//! contract, stats accounting, partition scheduling, and thread-count
//! invariance of the `net-transport` campaign family built on top of it.

use proptest::prelude::*;

use karyon::scenario::{builtin_registry, Campaign, CampaignEntry, ParamGrid};
use karyon::sim::{SimDuration, SimTime};
use karyon::transport::{
    LinkConfig, LoopbackTransport, NetTransport, NodeId, PartitionWindow, SimTransport,
};

/// The production fabric: instant, loss-free, FIFO per the global send order.
#[test]
fn loopback_is_a_zero_delay_lossless_fifo() {
    let mut net = LoopbackTransport::new();
    for i in 0u8..5 {
        net.send(NodeId(0), NodeId(1), vec![i]);
    }
    net.send(NodeId(1), NodeId(0), b"reply".to_vec());
    let deliveries = net.drain();
    assert_eq!(deliveries.len(), 6);
    for (i, delivery) in deliveries.iter().take(5).enumerate() {
        assert_eq!(delivery.payload, vec![i as u8]);
        assert_eq!((delivery.src, delivery.dst), (NodeId(0), NodeId(1)));
        assert_eq!(delivery.sent_at, delivery.delivered_at);
        assert!(!delivery.duplicate);
    }
    assert_eq!(deliveries[5].payload, b"reply");
    let stats = net.stats();
    assert_eq!(stats.sent, 6);
    assert_eq!(stats.delivered, 6);
    assert_eq!(stats.lost(), 0);
    assert_eq!(stats.reordered, 0);
    // Draining again yields nothing: the fabric is empty, not replaying.
    assert!(net.drain().is_empty());
}

/// A scheduled partition severs cross-group traffic during its window (both
/// directions), leaves intra-group traffic alone, and heals afterwards.
#[test]
fn partition_windows_sever_cross_group_traffic_then_heal() {
    let mut net = SimTransport::new(99).with_default_link(LinkConfig {
        delay: SimDuration::from_millis(1),
        jitter: SimDuration::ZERO,
        ..LinkConfig::default()
    });
    net.add_partition(PartitionWindow {
        from: SimTime::from_millis(10),
        until: SimTime::from_millis(20),
        group_a: vec![NodeId(0)],
        group_b: vec![NodeId(1)],
    });

    // Before the window: delivered.
    net.send(NodeId(0), NodeId(1), b"early".to_vec());
    assert_eq!(net.advance_to(SimTime::from_millis(10)).len(), 1);
    // Inside the window: the cross-cut send is severed at send time, the
    // intra-side send (to a third node) is unaffected.
    net.send(NodeId(0), NodeId(1), b"severed".to_vec());
    net.send(NodeId(1), NodeId(0), b"severed-back".to_vec());
    net.send(NodeId(0), NodeId(2), b"same-side".to_vec());
    let during = net.advance_to(SimTime::from_millis(20));
    assert_eq!(during.len(), 1);
    assert_eq!(during[0].payload, b"same-side");
    // After healing: delivered again.
    net.send(NodeId(1), NodeId(0), b"healed".to_vec());
    let after = net.drain();
    assert_eq!(after.len(), 1);
    assert_eq!(after[0].payload, b"healed");
    let stats = net.stats();
    assert_eq!(stats.partition_dropped, 2);
    assert_eq!(stats.sent, 5);
    assert_eq!(stats.delivered, 3);
}

/// The lossy knobs actually fire at their extremes: probability 1 drops
/// everything, duplicates everything.
#[test]
fn drop_and_duplicate_probabilities_act_at_the_extremes() {
    let mut lossy = SimTransport::new(3)
        .with_default_link(LinkConfig { drop_probability: 1.0, ..LinkConfig::default() });
    let mut chatty = SimTransport::new(3)
        .with_default_link(LinkConfig { duplicate_probability: 1.0, ..LinkConfig::default() });
    for i in 0u8..8 {
        lossy.send(NodeId(0), NodeId(1), vec![i]);
        chatty.send(NodeId(0), NodeId(1), vec![i]);
    }
    assert!(lossy.drain().is_empty());
    assert_eq!(lossy.stats().dropped, 8);
    let copies = chatty.drain();
    assert_eq!(copies.len(), 16);
    assert_eq!(copies.iter().filter(|d| d.duplicate).count(), 8);
    assert_eq!(chatty.stats().duplicated, 8);
}

fn fuzz_link(delay_us: u64, jitter_us: u64, drop: f64, dup: f64, reorder: f64) -> LinkConfig {
    LinkConfig {
        delay: SimDuration::from_micros(delay_us),
        jitter: SimDuration::from_micros(jitter_us),
        drop_probability: drop,
        duplicate_probability: dup,
        reorder_probability: reorder,
        reorder_window: SimDuration::from_micros(1 + jitter_us * 4),
    }
}

/// Unpacks one fuzz word into a send: source and destination in `0..nodes`,
/// plus a payload byte.  (The vendored proptest has no tuple strategies, so
/// schedules are fuzzed as plain words.)
fn unpack_send(word: u64, nodes: u32) -> (u32, u32, u8) {
    ((word as u32) % nodes, ((word >> 16) as u32) % nodes, (word >> 32) as u8)
}

/// Replays the same send schedule (interleaved with clock advances) against a
/// fresh fabric and returns the full observable history.
fn run_schedule(
    seed: u64,
    link: LinkConfig,
    nodes: u32,
    sends: &[u64],
) -> (Vec<karyon::transport::Delivery>, karyon::transport::TransportStats) {
    let mut net = SimTransport::new(seed).with_default_link(link);
    let mut history = Vec::new();
    for (i, word) in sends.iter().enumerate() {
        let (src, dst, payload) = unpack_send(*word, nodes);
        net.send(NodeId(src), NodeId(dst), vec![payload]);
        if i % 3 == 2 {
            let deadline = SimTime::from_micros((i as u64 + 1) * 500);
            history.extend(net.advance_to(deadline));
        }
    }
    history.extend(net.drain());
    (history, net.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The crate's headline determinism contract (ISSUE acceptance): for a
    /// fixed seed, link configuration and send sequence, two independently
    /// constructed fabrics yield the identical delivery sequence — order,
    /// times, payloads, duplicate flags — and identical stats.  Different
    /// seeds over a lossy link disagree somewhere, i.e. the seed really is
    /// the only entropy source.
    #[test]
    fn sim_transport_replays_bit_identically_from_its_seed(
        seed in any::<u64>(),
        delay_us in 0u64..20_000,
        jitter_us in 0u64..10_000,
        drop in 0.0f64..0.5,
        dup in 0.0f64..0.5,
        reorder in 0.0f64..0.9,
        sends in proptest::collection::vec(any::<u64>(), 1..80),
    ) {
        let link = fuzz_link(delay_us, jitter_us, drop, dup, reorder);
        let (first, first_stats) = run_schedule(seed, link, 4, &sends);
        let (second, second_stats) = run_schedule(seed, link, 4, &sends);
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(first_stats, second_stats);
        // Conservation: every submitted message is delivered exactly once,
        // lost exactly once, or delivered plus duplicated.
        prop_assert_eq!(
            first_stats.sent,
            first_stats.delivered - first_stats.duplicated + first_stats.lost()
        );
        prop_assert_eq!(first.iter().filter(|d| d.duplicate).count() as u64,
            first_stats.duplicated);
        // Delivery order is non-decreasing in delivered_at.
        for pair in first.windows(2) {
            prop_assert!(pair[0].delivered_at <= pair[1].delivered_at);
        }
    }

    /// A clean link (no loss knobs) delivers everything exactly once with the
    /// configured base delay, regardless of seed.
    #[test]
    fn clean_links_deliver_everything_exactly_once(
        seed in any::<u64>(),
        delay_us in 1u64..5_000,
        sends in proptest::collection::vec(any::<u64>(), 1..40),
    ) {
        let link = fuzz_link(delay_us, 0, 0.0, 0.0, 0.0);
        let (history, stats) = run_schedule(seed, link, 3, &sends);
        prop_assert_eq!(history.len(), sends.len());
        prop_assert_eq!(stats.delivered, sends.len() as u64);
        prop_assert_eq!(stats.lost(), 0);
        prop_assert_eq!(stats.reordered, 0);
        for delivery in &history {
            prop_assert_eq!(delivery.delivered_at.as_micros(),
                delivery.sent_at.as_micros() + delay_us);
        }
    }
}

/// The `net-transport` campaign family inherits the flagship campaign
/// guarantee: reports are bit-identical across worker counts, including the
/// partitioned and lossy corners of its parameter grid.
#[test]
fn net_transport_family_reports_are_thread_count_invariant() {
    let registry = builtin_registry();
    let build = || {
        Campaign::new("fabric-determinism", 4242).entry(
            CampaignEntry::new("net-transport")
                .grid(ParamGrid::new().axis("partition", [false, true]).axis("drop", [0.0, 0.2]))
                .replications(5)
                .duration_secs(10),
        )
    };
    let one = build().with_threads(1).run(&registry).expect("family is registered");
    let four = build().with_threads(4).run(&registry).expect("family is registered");
    assert_eq!(one, four);
    assert_eq!(one.to_json(), four.to_json());
    assert_eq!(one.total_runs, 20);
}

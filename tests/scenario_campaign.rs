//! Integration and property tests for the `karyon-scenario` orchestration
//! subsystem: campaign determinism across worker counts and chunk sizes,
//! chunked-vs-retained aggregation equivalence, streaming sinks, grid
//! expansion and histogram quantile behaviour.

use std::sync::Arc;

use proptest::prelude::*;

use karyon::scenario::{
    builtin_registry, derive_run_seed, Campaign, CampaignEntry, JsonlRunWriter, ParamGrid,
    RunRecord, Scenario, ScenarioRegistry, ScenarioSpec,
};
use karyon::sim::{splitmix64, BucketHistogram};

/// A cheap deterministic scenario with pseudo-random metrics: adversarial
/// input for the reduction (mixed magnitudes, an occasionally-absent metric
/// and an occasional NaN) at negligible per-run cost.
struct Noise;

impl Scenario for Noise {
    fn name(&self) -> &str {
        "noise"
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "ranged" => Some((0.0, 1.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let mut state = spec.seed;
        let a = splitmix64(&mut state);
        let b = splitmix64(&mut state);
        let mut record = RunRecord::new();
        record.set("ranged", (a >> 11) as f64 / (1u64 << 53) as f64);
        record.set("wild", ((b % 10_000) as f64 - 5_000.0) * spec.f64_or("scale", 1.0));
        if a % 5 == 0 {
            record.set("sometimes", (a % 97) as f64);
        }
        if b % 31 == 0 {
            record.set("broken", f64::NAN);
        }
        record
    }
}

fn noise_registry() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::new();
    registry.register(Arc::new(Noise));
    registry
}

/// Retains every run's record by executing the scenario *directly* — no
/// campaign runner involved — in canonical (point, replication) order, for a
/// single-entry campaign over the `scale` axis.
fn retained_records(
    registry: &ScenarioRegistry,
    campaign_seed: u64,
    scales: &[f64],
    replications: u64,
) -> Vec<RunRecord> {
    let noise = registry.get("noise").expect("registered");
    let mut records = Vec::new();
    for (point, scale) in scales.iter().enumerate() {
        for rep in 0..replications {
            let spec = ScenarioSpec::new("noise").with("scale", *scale).with_seed(derive_run_seed(
                campaign_seed,
                point as u64,
                rep,
            ));
            records.push(noise.run(&spec));
        }
    }
    records
}

/// The flagship guarantee: a campaign's aggregated report is bit-identical
/// for 1-thread and N-thread execution with the same campaign seed.
#[test]
fn campaign_reports_are_thread_count_invariant() {
    let registry = builtin_registry();
    let build = || {
        Campaign::new("determinism", 77)
            .entry(
                CampaignEntry::new("middleware-qos")
                    .grid(ParamGrid::new().axis("degrade", [false, true]))
                    .replications(6)
                    .duration_secs(20),
            )
            .entry(
                CampaignEntry::new("lane-change")
                    .grid(ParamGrid::new().axis("coordination", ["agreement", "none"]))
                    .replications(4)
                    .duration_secs(60),
            )
    };
    let one = build().with_threads(1).run(&registry).expect("builtin families");
    let four = build().with_threads(4).run(&registry).expect("builtin families");
    let eight = build().with_threads(8).run(&registry).expect("builtin families");
    assert_eq!(one, four);
    assert_eq!(one, eight);
    assert_eq!(one.to_json(), eight.to_json());
    assert_eq!(one.total_runs, 20);
    assert_eq!(one.points.len(), 4);
}

/// A multi-family campaign over the vehicle use cases aggregates per
/// (family, parameter point) and exposes the safety ordering the paper
/// argues: uncoordinated intersection crossing produces conflicts where the
/// virtual traffic light produces none.
#[test]
fn mixed_campaign_reproduces_vtl_safety_ordering() {
    let registry = builtin_registry();
    let report = Campaign::new("vtl-check", 5)
        .entry(
            CampaignEntry::new("intersection")
                .grid(
                    ParamGrid::new()
                        .axis("fallback", ["vtl", "uncoordinated"])
                        .axis("light_fail", [true]),
                )
                .replications(5)
                .duration_secs(300),
        )
        .run(&registry)
        .expect("builtin families");
    let vtl = &report.points[0];
    let unco = &report.points[1];
    assert_eq!(vtl.params["fallback"].as_str(), Some("vtl"));
    assert_eq!(vtl.metrics["conflicts"].mean, 0.0, "the VTL keeps the intersection conflict-free");
    assert!(
        unco.metrics["conflicts"].mean > 0.0,
        "uncoordinated fallback must show conflicts: {:?}",
        unco.metrics["conflicts"]
    );
}

proptest! {
    /// Derived run seeds depend only on the canonical coordinates, and
    /// distinct coordinates give distinct seeds.
    #[test]
    fn derived_seeds_are_stable_and_collision_free(campaign in 0u64..1_000_000, point in 0u64..64, rep in 0u64..64) {
        prop_assert_eq!(derive_run_seed(campaign, point, rep), derive_run_seed(campaign, point, rep));
        prop_assert!(derive_run_seed(campaign, point, rep) != derive_run_seed(campaign, point, rep + 1));
        prop_assert!(derive_run_seed(campaign, point, rep) != derive_run_seed(campaign, point + 1, rep));
    }

    /// Grid expansion always yields the full cross product: the point count
    /// is the product of the axis lengths and every point carries every axis.
    #[test]
    fn grid_expansion_is_exhaustive(a in 1usize..5, b in 1usize..5, c in 1usize..4) {
        let grid = ParamGrid::new()
            .axis("a", (0..a).collect::<Vec<_>>())
            .axis("b", (0..b).collect::<Vec<_>>())
            .axis("c", (0..c).collect::<Vec<_>>());
        let points = grid.expand();
        prop_assert_eq!(points.len(), a * b * c);
        prop_assert_eq!(points.len(), grid.len());
        prop_assert!(points.iter().all(|p| p.len() == 3));
        // All points are pairwise distinct.
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                prop_assert!(points[i] != points[j]);
            }
        }
    }

    /// Bucket-histogram quantiles stay within one bucket width of the exact
    /// nearest-rank quantile over the same samples.
    #[test]
    fn bucket_quantiles_track_exact_quantiles(values in proptest::collection::vec(0.0f64..100.0, 10..200), q in 0.0f64..1.0) {
        let buckets = 64usize;
        let mut hist = BucketHistogram::new(0.0, 100.0, buckets);
        for v in &values {
            hist.record(*v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let exact = sorted[(((sorted.len() - 1) as f64) * q).round() as usize];
        let width = 100.0 / buckets as f64;
        prop_assert!((hist.quantile(q) - exact).abs() <= width + 1e-9,
            "bucketed {} vs exact {} (width {})", hist.quantile(q), exact, width);
    }

    /// The flagship bounded-memory guarantee: the streaming chunked runner
    /// is **bit-identical** to the retained-record reduction (retain every
    /// record, then reduce) for any worker count and chunk size — including
    /// chunk sizes that cut through parameter points and force the exact
    /// quantile buffers to spill mid-merge.
    #[test]
    fn chunked_aggregation_matches_retained_reduction(
        campaign_seed in 0u64..100_000,
        axis_len in 1usize..4,
        replications in 1u64..40,
        chunk_size in 1usize..50,
        threads in 1usize..6,
    ) {
        let registry = noise_registry();
        let scales: Vec<f64> = (0..axis_len).map(|i| 1.0 + i as f64).collect();
        let campaign = Campaign::new("equiv", campaign_seed)
            .with_chunk_size(chunk_size)
            .entry(
                CampaignEntry::new("noise")
                    .grid(ParamGrid::new().axis("scale", scales.clone()))
                    .replications(replications),
            );
        let records = retained_records(&registry, campaign_seed, &scales, replications);
        let retained = campaign.reduce_records(&registry, &records).expect("count matches");
        let streamed =
            campaign.with_threads(threads).run(&registry).expect("noise is registered");
        prop_assert_eq!(&streamed, &retained);
        prop_assert_eq!(streamed.to_json(), retained.to_json());
    }

    /// The JSONL sink writes one line per run, in canonical order, for any
    /// worker count.
    #[test]
    fn jsonl_sink_captures_every_run(threads in 1usize..5, replications in 1u64..30) {
        let registry = noise_registry();
        let mut writer = JsonlRunWriter::new(Vec::new());
        let report = Campaign::new("jsonl", 11)
            .with_threads(threads)
            .with_chunk_size(7)
            .entry(CampaignEntry::new("noise").replications(replications))
            .run_with_sink(&registry, &mut writer)
            .expect("noise is registered");
        prop_assert_eq!(writer.written(), report.total_runs);
        let bytes = writer.finish().expect("in-memory writes cannot fail");
        let text = String::from_utf8(bytes).unwrap();
        for (i, line) in text.lines().enumerate() {
            prop_assert!(line.starts_with(&format!("{{\"run\":{i},\"scenario\":\"noise\"")));
            prop_assert!(line.ends_with('}'));
        }
        prop_assert_eq!(text.lines().count() as u64, report.total_runs);
    }

    /// The trivial single-run campaign equals running the scenario directly:
    /// the runner adds orchestration, never different semantics.
    #[test]
    fn single_run_campaign_matches_direct_run(seed in 0u64..10_000) {
        let registry = builtin_registry();
        let report = Campaign::new("one", seed)
            .entry(CampaignEntry::new("middleware-qos").replications(1).duration_secs(10))
            .with_threads(1)
            .run(&registry)
            .expect("builtin families");
        let spec = ScenarioSpec::new("middleware-qos")
            .with_seed(derive_run_seed(seed, 0, 0))
            .with_duration_secs(10);
        let direct = registry.get("middleware-qos").unwrap().run(&spec);
        let point = &report.points[0];
        prop_assert_eq!(point.runs, 1);
        for (name, value) in direct.metrics() {
            let summary = &point.metrics[name];
            prop_assert!(summary.mean == *value, "metric {}: {} != {}", name, summary.mean, value);
            prop_assert_eq!(summary.p99, *value);
        }
    }
}

/// Bounded memory at scale: a sweep far past the exact-quantile limit forces
/// the per-metric buffers to spill into derived-range histograms, while the
/// report stays bit-identical across worker counts and equal to the
/// retained-record replay — and the runner itself retains no records.
#[test]
fn large_sweep_spills_and_stays_deterministic() {
    let registry = noise_registry();
    let replications = 20_000u64;
    let build =
        || Campaign::new("spill", 31).entry(CampaignEntry::new("noise").replications(replications));
    let (one, stats) =
        build().with_threads(1).run_instrumented(&registry, None).expect("noise is registered");
    assert_eq!(stats.peak_resident_records, 0, "no sink, no retained records");
    let four = build().with_threads(4).run(&registry).expect("noise is registered");
    assert_eq!(one, four);
    let records = retained_records(&registry, 31, &[1.0], replications);
    // The single no-grid point aggregates identically from retained records.
    let replayed = Campaign::new("spill", 31)
        .entry(CampaignEntry::new("noise").replications(replications))
        .reduce_records(&registry, &records)
        .expect("count matches");
    assert_eq!(one, replayed);
    let wild = &one.points[0].metrics["wild"];
    assert_eq!(wild.count, replications, "every run reports the undeclared metric");
    assert!(wild.p95 > wild.p50, "spilled quantiles keep their ordering");
}

/// Regression: chunk sizes larger than the exact-quantile limit (4096) must
/// aggregate cleanly — chunk partials may each hold more retained samples
/// than the limit, and the spill to a derived-range histogram happens only
/// at canonical merge time (a chunk-local spill would derive unmergeable
/// per-chunk ranges).
#[test]
fn oversized_chunk_sizes_aggregate_cleanly() {
    let registry = noise_registry();
    let build = || {
        Campaign::new("big-chunks", 13)
            .with_chunk_size(8_192)
            .entry(CampaignEntry::new("noise").replications(20_000))
    };
    let one = build().with_threads(1).run(&registry).expect("noise is registered");
    let four = build().with_threads(4).run(&registry).expect("noise is registered");
    assert_eq!(one, four);
    assert_eq!(one.points[0].metrics["wild"].count, 20_000);
}

// Registry coverage (ISSUE 5): every builtin family's default spec must
// parse through the spec-file format (`ScenarioSpec::to_json` →
// `from_json_str` round trip), run a 2-seed smoke campaign, and aggregate
// **bit-identically for 1 vs N workers** — the determinism contract stays
// enforced as the registry grows, for every family at once.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn every_builtin_family_default_spec_is_campaign_clean(
        threads in 2usize..5,
        campaign_seed in 0u64..1_000,
    ) {
        let registry = builtin_registry();
        for info in registry.describe() {
            let scenario = registry.get(&info.name).unwrap();

            // The default spec survives the spec-file format.
            let spec = scenario.default_spec().with_seed(29).with_duration_secs(10);
            let parsed = ScenarioSpec::from_json_str(&spec.to_json())
                .unwrap_or_else(|e| panic!("family {}: default spec must parse: {e}", info.name));
            prop_assert_eq!(&parsed, &spec);

            // A 2-seed smoke campaign at the default parameter point is
            // bit-identical for any worker count.
            let build = || {
                Campaign::new(&format!("smoke-{}", info.name), campaign_seed)
                    .with_chunk_size(1)
                    .entry(
                        CampaignEntry::new(&info.name)
                            .grid(info.default_grid())
                            .replications(2)
                            .duration_secs(10),
                    )
            };
            let serial = build().with_threads(1).run(&registry).unwrap();
            let parallel = build().with_threads(threads).run(&registry).unwrap();
            prop_assert_eq!(&serial, &parallel);
            prop_assert_eq!(serial.to_json(), parallel.to_json());
            prop_assert_eq!(serial.total_runs, 2);
        }
    }
}

/// Clamp-audit guard (ISSUE 5): every `Engine`-driven builtin family must
/// report `suspect_runs == 0` on its default spec, so a new family cannot
/// silently violate the forward-scheduling contract established by the PR-3
/// clamp audit.  (Non-engine families trivially report zero too — asserted
/// as well, since `RunRecord::clamped_schedules` should never be non-zero
/// without an engine.)
#[test]
fn engine_driven_families_are_causality_clean_on_their_defaults() {
    let registry = builtin_registry();
    let mut engine_driven = 0;
    for info in registry.describe() {
        let campaign = Campaign::new(&format!("clamp-audit-{}", info.name), 77).entry(
            CampaignEntry::new(&info.name)
                .grid(info.default_grid())
                .replications(2)
                .duration_secs(10),
        );
        let report = campaign.run(&registry).unwrap();
        assert_eq!(
            report.suspect_runs(),
            0,
            "family {} violates the forward-scheduling contract on its default spec",
            info.name
        );
        if info.engine_driven {
            engine_driven += 1;
        }
    }
    assert!(
        engine_driven >= 1,
        "the audit guard must cover at least the engine-driven middleware-qos family"
    );
}

//! Integration and property tests for the `karyon-scenario` orchestration
//! subsystem: campaign determinism across worker counts, grid expansion and
//! histogram quantile behaviour.

use proptest::prelude::*;

use karyon::scenario::{
    builtin_registry, derive_run_seed, Campaign, CampaignEntry, ParamGrid, ScenarioSpec,
};
use karyon::sim::BucketHistogram;

/// The flagship guarantee: a campaign's aggregated report is bit-identical
/// for 1-thread and N-thread execution with the same campaign seed.
#[test]
fn campaign_reports_are_thread_count_invariant() {
    let registry = builtin_registry();
    let build = || {
        Campaign::new("determinism", 77)
            .entry(
                CampaignEntry::new("middleware-qos")
                    .grid(ParamGrid::new().axis("degrade", [false, true]))
                    .replications(6)
                    .duration_secs(20),
            )
            .entry(
                CampaignEntry::new("lane-change")
                    .grid(ParamGrid::new().axis("coordination", ["agreement", "none"]))
                    .replications(4)
                    .duration_secs(60),
            )
    };
    let one = build().with_threads(1).run(&registry).expect("builtin families");
    let four = build().with_threads(4).run(&registry).expect("builtin families");
    let eight = build().with_threads(8).run(&registry).expect("builtin families");
    assert_eq!(one, four);
    assert_eq!(one, eight);
    assert_eq!(one.to_json(), eight.to_json());
    assert_eq!(one.total_runs, 20);
    assert_eq!(one.points.len(), 4);
}

/// A multi-family campaign over the vehicle use cases aggregates per
/// (family, parameter point) and exposes the safety ordering the paper
/// argues: uncoordinated intersection crossing produces conflicts where the
/// virtual traffic light produces none.
#[test]
fn mixed_campaign_reproduces_vtl_safety_ordering() {
    let registry = builtin_registry();
    let report = Campaign::new("vtl-check", 5)
        .entry(
            CampaignEntry::new("intersection")
                .grid(
                    ParamGrid::new()
                        .axis("fallback", ["vtl", "uncoordinated"])
                        .axis("light_fail", [true]),
                )
                .replications(5)
                .duration_secs(300),
        )
        .run(&registry)
        .expect("builtin families");
    let vtl = &report.points[0];
    let unco = &report.points[1];
    assert_eq!(vtl.params["fallback"].as_str(), Some("vtl"));
    assert_eq!(vtl.metrics["conflicts"].mean, 0.0, "the VTL keeps the intersection conflict-free");
    assert!(
        unco.metrics["conflicts"].mean > 0.0,
        "uncoordinated fallback must show conflicts: {:?}",
        unco.metrics["conflicts"]
    );
}

proptest! {
    /// Derived run seeds depend only on the canonical coordinates, and
    /// distinct coordinates give distinct seeds.
    #[test]
    fn derived_seeds_are_stable_and_collision_free(campaign in 0u64..1_000_000, point in 0u64..64, rep in 0u64..64) {
        prop_assert_eq!(derive_run_seed(campaign, point, rep), derive_run_seed(campaign, point, rep));
        prop_assert!(derive_run_seed(campaign, point, rep) != derive_run_seed(campaign, point, rep + 1));
        prop_assert!(derive_run_seed(campaign, point, rep) != derive_run_seed(campaign, point + 1, rep));
    }

    /// Grid expansion always yields the full cross product: the point count
    /// is the product of the axis lengths and every point carries every axis.
    #[test]
    fn grid_expansion_is_exhaustive(a in 1usize..5, b in 1usize..5, c in 1usize..4) {
        let grid = ParamGrid::new()
            .axis("a", (0..a).collect::<Vec<_>>())
            .axis("b", (0..b).collect::<Vec<_>>())
            .axis("c", (0..c).collect::<Vec<_>>());
        let points = grid.expand();
        prop_assert_eq!(points.len(), a * b * c);
        prop_assert_eq!(points.len(), grid.len());
        prop_assert!(points.iter().all(|p| p.len() == 3));
        // All points are pairwise distinct.
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                prop_assert!(points[i] != points[j]);
            }
        }
    }

    /// Bucket-histogram quantiles stay within one bucket width of the exact
    /// nearest-rank quantile over the same samples.
    #[test]
    fn bucket_quantiles_track_exact_quantiles(values in proptest::collection::vec(0.0f64..100.0, 10..200), q in 0.0f64..1.0) {
        let buckets = 64usize;
        let mut hist = BucketHistogram::new(0.0, 100.0, buckets);
        for v in &values {
            hist.record(*v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let exact = sorted[(((sorted.len() - 1) as f64) * q).round() as usize];
        let width = 100.0 / buckets as f64;
        prop_assert!((hist.quantile(q) - exact).abs() <= width + 1e-9,
            "bucketed {} vs exact {} (width {})", hist.quantile(q), exact, width);
    }

    /// The trivial single-run campaign equals running the scenario directly:
    /// the runner adds orchestration, never different semantics.
    #[test]
    fn single_run_campaign_matches_direct_run(seed in 0u64..10_000) {
        let registry = builtin_registry();
        let report = Campaign::new("one", seed)
            .entry(CampaignEntry::new("middleware-qos").replications(1).duration_secs(10))
            .with_threads(1)
            .run(&registry)
            .expect("builtin families");
        let spec = ScenarioSpec::new("middleware-qos")
            .with_seed(derive_run_seed(seed, 0, 0))
            .with_duration_secs(10);
        let direct = registry.get("middleware-qos").unwrap().run(&spec);
        let point = &report.points[0];
        prop_assert_eq!(point.runs, 1);
        for (name, value) in direct.metrics() {
            let summary = &point.metrics[name];
            prop_assert!(summary.mean == *value, "metric {}: {} != {}", name, summary.mean, value);
            prop_assert_eq!(summary.p99, *value);
        }
    }
}

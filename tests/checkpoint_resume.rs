//! Resume-determinism properties of the campaign checkpoint subsystem: a
//! campaign interrupted at an arbitrary canonical-chunk boundary — its JSONL
//! stream truncated back to the checkpoint watermark, exactly what a crash
//! plus [`truncate_jsonl`] leaves behind — and resumed from its manifest
//! must produce a **byte-identical** report, JSON rendering and JSONL
//! stream, for 1 and N workers on either side of the interruption.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use karyon::scenario::{
    derive_run_seed, truncate_jsonl, truncate_trace_jsonl, Campaign, CampaignEntry,
    CampaignOutcome, CampaignTelemetry, CheckpointManifest, Checkpointer, Fault, FaultPlan,
    JsonlRunWriter, ParamGrid, RunRecord, Scenario, ScenarioRegistry, ScenarioSpec,
};
use karyon::sim::{splitmix64, SimTime};
use karyon::telemetry::{trace, AttrValue, JsonlTraceWriter};

/// A cheap deterministic scenario with adversarial metric content: a
/// pre-agreed-range metric (streams through fixed histograms), an undeclared
/// wild-range metric (exercises exact-until-spill), an occasionally absent
/// metric and an occasional NaN.
struct Noise;

impl Scenario for Noise {
    fn name(&self) -> &str {
        "noise"
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "ranged" => Some((0.0, 1.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let mut state = spec.seed;
        let a = splitmix64(&mut state);
        let b = splitmix64(&mut state);
        // Virtual-time trace records (no-ops without a campaign trace
        // scope): pure functions of the spec, so the campaign trace stream
        // must be byte-identical across any kill/resume history.
        trace::event(
            "noise.sample",
            SimTime::from_micros(a % 1_000),
            &[("a", AttrValue::U64(a % 97))],
        );
        trace::span("noise.run", SimTime::ZERO, SimTime::from_micros(1 + b % 1_000), &[]);
        let mut record = RunRecord::new();
        record.set("ranged", (a >> 11) as f64 / (1u64 << 53) as f64);
        record.set("wild", ((b % 10_000) as f64 - 5_000.0) * spec.f64_or("scale", 1.0));
        if a % 5 == 0 {
            record.set("sometimes", (a % 97) as f64);
        }
        if b % 31 == 0 {
            record.set("broken", f64::NAN);
        }
        record
    }
}

fn noise_registry() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::new();
    registry.register(Arc::new(Noise));
    registry
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("karyon-resume-{}-{tag}", std::process::id()));
    fs::create_dir_all(&dir).expect("temp dir is writable");
    dir
}

fn noise_campaign(seed: u64, replications: u64, chunk_size: usize, threads: usize) -> Campaign {
    Campaign::new("resume-prop", seed).with_chunk_size(chunk_size).with_threads(threads).entry(
        CampaignEntry::new("noise")
            .grid(ParamGrid::new().axis("scale", [1.0, 2.5]))
            .replications(replications),
    )
}

/// The uninterrupted reference: report + full JSONL bytes.
fn reference(campaign: &Campaign) -> (karyon::scenario::CampaignReport, Vec<u8>) {
    let mut jsonl = JsonlRunWriter::new(Vec::new());
    let report =
        campaign.run_with_sink(&noise_registry(), &mut jsonl).expect("noise is registered");
    (report, jsonl.finish().expect("in-memory writes cannot fail"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The flagship acceptance property: interrupt at an arbitrary chunk
    /// boundary, truncate the JSONL stream to the watermark (crash
    /// recovery), resume from the manifest — report, JSON text and JSONL
    /// stream are byte-identical to the uninterrupted run, with independent
    /// worker counts before and after the interruption.
    #[test]
    fn interrupted_campaigns_resume_byte_identically(
        seed in 0u64..100_000,
        replications in 4u64..40,
        chunk_size in 1usize..12,
        boundary_frac in 0.0f64..1.0,
        threads_before in 1usize..5,
        threads_after in 1usize..5,
    ) {
        let campaign = noise_campaign(seed, replications, chunk_size, threads_before);
        let chunks = campaign.canonical_chunks();
        if chunks < 2 {
            // A single-chunk campaign has no interior boundary to interrupt
            // at; nothing to check for this sample.
            return Ok(());
        }
        // Interrupt somewhere strictly inside the campaign.
        let boundary = 1 + ((chunks - 2) as f64 * boundary_frac) as usize;
        prop_assert!(boundary < chunks, "boundary {boundary} inside {chunks} chunks");
        let (expected_report, expected_jsonl) = reference(&campaign);

        let dir = scratch_dir("prop");
        let ckpt_path = dir.join(format!("c-{seed}-{replications}-{chunk_size}.json"));
        let jsonl_path = dir.join(format!("s-{seed}-{replications}-{chunk_size}.jsonl"));

        // Session 1: bounded to `boundary` chunks, checkpointing as it goes.
        let mut jsonl = JsonlRunWriter::new(
            fs::File::create(&jsonl_path).expect("temp file is writable"),
        );
        let mut ckpt = Checkpointer::new(&ckpt_path).max_chunks_per_session(boundary);
        let (outcome, _) = campaign
            .run_checkpointed(&noise_registry(), &mut ckpt, Some(&mut jsonl))
            .expect("session 1 runs");
        prop_assert_eq!(
            &outcome,
            &CampaignOutcome::Interrupted {
                chunks_done: boundary,
                runs_done: (boundary as u64 * chunk_size as u64).min(campaign.run_count()),
            }
        );
        drop(jsonl); // the crash: nothing past the last flush survives cleanly

        // Simulate a kill mid-write: runs beyond the checkpoint plus a torn
        // final line trail the stream.
        let mut tail = fs::OpenOptions::new().append(true).open(&jsonl_path).unwrap();
        use std::io::Write as _;
        writeln!(tail, "{{\"run\":99999,\"scenario\":\"noise\",\"metrics\":{{}}}}").unwrap();
        write!(tail, "{{\"run\":100000,\"scen").unwrap();
        drop(tail);

        // Crash recovery: read the manifest, cut the stream to the
        // watermark, resume with an append writer and a different worker
        // count.
        let manifest = CheckpointManifest::load(&ckpt_path).expect("manifest is on disk");
        prop_assert_eq!(manifest.chunks_done, boundary);
        truncate_jsonl(&jsonl_path, manifest.runs_done).expect("stream covers the watermark");
        let campaign = noise_campaign(seed, replications, chunk_size, threads_after);
        let mut jsonl = JsonlRunWriter::new(
            fs::OpenOptions::new().append(true).open(&jsonl_path).unwrap(),
        );
        let mut ckpt = Checkpointer::new(&ckpt_path);
        let (outcome, stats) = campaign
            .resume(&noise_registry(), &mut ckpt, Some(&mut jsonl))
            .expect("session 2 resumes");
        jsonl.finish().expect("stream closes cleanly");
        prop_assert_eq!(stats.chunks, (chunks - boundary) as u64);

        let resumed = match outcome {
            CampaignOutcome::Complete(report) => report,
            CampaignOutcome::Interrupted { .. } => {
                prop_assert!(false, "an unbounded resume session must complete");
                unreachable!()
            }
        };
        prop_assert_eq!(&resumed, &expected_report);
        prop_assert_eq!(resumed.to_json(), expected_report.to_json());
        // The stitched JSONL stream must be byte-identical to an
        // uninterrupted run's.
        let stitched = fs::read(&jsonl_path).unwrap();
        prop_assert!(stitched == expected_jsonl, "stitched JSONL differs from uninterrupted");
        fs::remove_file(&ckpt_path).ok();
        fs::remove_file(&jsonl_path).ok();
    }

    /// The chaos acceptance property: kill the campaign with an injected
    /// worker death at an *arbitrary* chunk — including chunk 0, where no
    /// manifest exists yet and recovery must restart from scratch — then
    /// recover across sessions with a different worker count.  Report, JSONL
    /// stream and trace stream must all be byte-identical to an
    /// uninterrupted traced run's.
    #[test]
    fn a_worker_death_at_any_chunk_recovers_all_streams_byte_identically(
        seed in 0u64..100_000,
        replications in 8u64..40,
        chunk_size in 1usize..10,
        death_frac in 0.0f64..1.0,
        threads_before in 1usize..4,
        threads_after in 1usize..4,
    ) {
        let registry = noise_registry();
        let campaign = noise_campaign(seed, replications, chunk_size, threads_before);
        let chunks = campaign.canonical_chunks();
        let death_chunk = ((chunks - 1) as f64 * death_frac) as usize;

        // The traced reference: report, JSONL bytes and trace bytes of one
        // uninterrupted instrumented run.
        let mut ref_jsonl = JsonlRunWriter::new(Vec::new());
        let mut ref_trace = JsonlTraceWriter::new(Vec::new());
        let (expected_report, _) = campaign
            .run_instrumented_with(
                &registry,
                Some(&mut ref_jsonl),
                CampaignTelemetry::none().with_trace(&mut ref_trace),
            )
            .expect("reference runs");
        let expected_jsonl = ref_jsonl.finish().expect("in-memory stream");
        let expected_trace = ref_trace.into_inner().expect("in-memory stream");

        let dir = scratch_dir("chaos");
        let tag = format!("{seed}-{replications}-{chunk_size}-{death_chunk}");
        let ckpt_path = dir.join(format!("c-{tag}.json"));
        let jsonl_path = dir.join(format!("s-{tag}.jsonl"));
        let trace_path = dir.join(format!("t-{tag}.jsonl"));
        fs::remove_file(&ckpt_path).ok();
        fs::remove_file(&jsonl_path).ok();
        fs::remove_file(&trace_path).ok();

        // One injector across every session: the death budget is one-shot,
        // so recovery sessions never re-trip it.
        let injector =
            FaultPlan::new().with(Fault::WorkerDeath { at_chunk: death_chunk }).injector();
        let mut sessions = 0usize;
        let report = loop {
            sessions += 1;
            prop_assert!(sessions <= 4, "recovery must converge quickly");
            let resuming = ckpt_path.exists();
            if resuming {
                let manifest = CheckpointManifest::load(&ckpt_path).expect("manifest on disk");
                truncate_jsonl(&jsonl_path, manifest.runs_done).expect("stream covers watermark");
                truncate_trace_jsonl(&trace_path, manifest.runs_done).expect("trace recovers");
            }
            let threads = if resuming { threads_after } else { threads_before };
            let campaign = noise_campaign(seed, replications, chunk_size, threads);
            let mut jsonl = JsonlRunWriter::new(
                fs::OpenOptions::new()
                    .create(true)
                    .append(resuming)
                    .write(true)
                    .truncate(!resuming)
                    .open(&jsonl_path)
                    .expect("stream opens"),
            );
            let mut trace_sink = JsonlTraceWriter::new(
                fs::OpenOptions::new()
                    .create(true)
                    .append(resuming)
                    .write(true)
                    .truncate(!resuming)
                    .open(&trace_path)
                    .expect("trace opens"),
            );
            let telemetry = CampaignTelemetry::none().with_trace(&mut trace_sink);
            let mut ckpt = Checkpointer::new(&ckpt_path);
            let result = if resuming {
                campaign.resume_chaos(&registry, &mut ckpt, Some(&mut jsonl), telemetry, &injector)
            } else {
                campaign.run_checkpointed_chaos(
                    &registry,
                    &mut ckpt,
                    Some(&mut jsonl),
                    telemetry,
                    &injector,
                )
            };
            match result {
                Ok((CampaignOutcome::Complete(report), _)) => {
                    jsonl.finish().expect("stream closes");
                    trace_sink.into_inner().expect("trace closes");
                    break report;
                }
                Ok((CampaignOutcome::Interrupted { .. }, _)) => {
                    prop_assert!(false, "no session budget is set");
                }
                Err(error) => {
                    prop_assert!(
                        karyon::scenario::fault::is_injected(&error),
                        "only the injected death may kill a session: {error}"
                    );
                    // The "crash": writers drop un-finished, like a killed
                    // process; the next session recovers from disk.
                }
            }
        };
        // The death fires exactly once; recovery is one crash, one clean run.
        prop_assert_eq!(injector.injected(), 1);
        prop_assert_eq!(sessions, 2);
        prop_assert_eq!(&report, &expected_report);
        prop_assert_eq!(report.to_json(), expected_report.to_json());
        let recovered_jsonl = fs::read(&jsonl_path).unwrap();
        prop_assert!(recovered_jsonl == expected_jsonl, "recovered JSONL differs from reference");
        let recovered_trace = fs::read(&trace_path).unwrap();
        prop_assert!(recovered_trace == expected_trace, "recovered trace differs from reference");
        fs::remove_file(&ckpt_path).ok();
        fs::remove_file(&jsonl_path).ok();
        fs::remove_file(&trace_path).ok();
    }
}

/// Chained preemptions: a campaign sliced into many bounded sessions — each
/// resuming the last, under varying worker counts — still converges to the
/// uninterrupted result.  This is the time-slicing deployment mode
/// (preemptible compute) rather than the crash mode above.
#[test]
fn many_chained_sessions_converge_to_the_uninterrupted_report() {
    let dir = scratch_dir("chain");
    let ckpt_path = dir.join("chain.json");
    let build = |threads| noise_campaign(777, 50, 4, threads);
    let (expected, _) = reference(&build(1));
    let chunks = build(1).canonical_chunks();

    let mut sessions = 0usize;
    let mut ckpt = Checkpointer::new(&ckpt_path).max_chunks_per_session(3).every_chunks(2);
    let report = loop {
        sessions += 1;
        let threads = 1 + (sessions % 4);
        let campaign = build(threads);
        let (outcome, _) = if sessions == 1 {
            campaign.run_checkpointed(&noise_registry(), &mut ckpt, None).expect("session runs")
        } else {
            campaign.resume(&noise_registry(), &mut ckpt, None).expect("session resumes")
        };
        match outcome {
            CampaignOutcome::Complete(report) => break report,
            CampaignOutcome::Interrupted { chunks_done, .. } => {
                assert_eq!(chunks_done, (sessions * 3).min(chunks));
            }
        }
        assert!(sessions < 64, "the chain must terminate");
    };
    assert_eq!(sessions, chunks.div_ceil(3), "every session advances exactly its budget");
    assert_eq!(report, expected);
    assert_eq!(report.to_json(), expected.to_json());
    fs::remove_dir_all(&dir).ok();
}

/// [`Noise`] with an injectable failure (panics on exactly one derived run
/// seed) and an injectable slow band (runs whose seed is listed sleep a
/// while) — the levers the abort-path tests below use to place workers
/// mid-chunk when a failure raises the abort flag.
struct FlakyNoise {
    fail_seed: Option<u64>,
    slow_seeds: std::collections::HashSet<u64>,
}

impl Scenario for FlakyNoise {
    fn name(&self) -> &str {
        "flaky"
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        if Some(spec.seed) == self.fail_seed {
            panic!("injected failure");
        }
        if self.slow_seeds.contains(&spec.seed) {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let mut state = spec.seed;
        let mut record = RunRecord::new();
        record.set("value", (splitmix64(&mut state) % 10_000) as f64);
        record
    }
}

fn flaky_registry(fail_seed: Option<u64>, slow_seeds: &[u64]) -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::new();
    registry.register(Arc::new(FlakyNoise {
        fail_seed,
        slow_seeds: slow_seeds.iter().copied().collect(),
    }));
    registry
}

/// Asserts a manifest is internally consistent: the per-point run counts it
/// persists must sum to exactly the watermark.  A collector that ever merged
/// a *partial* chunk (a worker cut short by the abort flag) below the
/// watermark fails this immediately.
fn assert_manifest_covers_exactly_its_watermark(ckpt_path: &std::path::Path) -> u64 {
    use karyon::scenario::JsonValue;
    let text = karyon::scenario::checkpoint::read_manifest_text(ckpt_path).expect("readable");
    let doc = JsonValue::parse(&text).expect("manifest is JSON");
    let runs_done = doc.get("runs_done").and_then(JsonValue::as_u64).expect("runs_done");
    let merged: u64 = doc
        .get("points")
        .and_then(JsonValue::as_array)
        .expect("points")
        .iter()
        .map(|p| p.get("runs").and_then(JsonValue::as_u64).expect("point runs"))
        .sum();
    assert_eq!(
        merged, runs_done,
        "manifest {ckpt_path:?} merged {merged} runs but its watermark claims {runs_done}"
    );
    runs_done
}

/// Regression test for the abort/checkpoint race: when a worker fails
/// mid-campaign, sibling workers observe the abort flag and return *partial*
/// chunks — and a partial chunk at the merge frontier can reach the
/// collector before the failure does.  Merging it would let a checkpoint
/// watermark durably cover runs that never executed.  Two invariants must
/// hold for every surviving manifest: the watermark never reaches the
/// failing chunk, and resuming from it (with the failure gone) converges
/// bit-identically to the uninterrupted reference — which is exactly what
/// breaks if a hole was ever merged below the watermark.
#[test]
fn a_mid_campaign_failure_never_checkpoints_unexecuted_runs() {
    let dir = scratch_dir("abort");
    const CHUNK: u64 = 128;
    const FAIL_RUN: u64 = 16 * CHUNK; // first run of chunk 16 of 24
    let campaign = || {
        Campaign::new("abort", 99)
            .with_chunk_size(CHUNK as usize)
            .with_threads(4)
            .entry(CampaignEntry::new("flaky").replications(24 * CHUNK))
    };
    let fail_seed = derive_run_seed(99, 0, FAIL_RUN);
    let expected = campaign().run(&flaky_registry(None, &[])).expect("healthy reference");

    for attempt in 0..24 {
        let ckpt_path = dir.join(format!("abort-{attempt}.json"));
        let mut ckpt = Checkpointer::new(&ckpt_path);
        let err = campaign()
            .run_checkpointed(&flaky_registry(Some(fail_seed), &[]), &mut ckpt, None)
            .expect_err("the injected failure must surface");
        assert!(err.contains("injected failure"), "the real failure is reported: {err}");

        // Checkpoints from before the failure are legitimate; the watermark
        // may never reach the chunk the failure cut short, and must cover
        // exactly the runs the manifest actually merged.
        if ckpt_path.exists() {
            let runs_done = assert_manifest_covers_exactly_its_watermark(&ckpt_path);
            assert!(
                runs_done <= FAIL_RUN,
                "watermark {runs_done} covers the failed run {FAIL_RUN} (attempt {attempt})"
            );
            // Every chunk below the watermark must have fully executed:
            // with the failure gone, resume must converge bit-identically
            // to the uninterrupted reference.
            let mut resume_ckpt = Checkpointer::new(&ckpt_path);
            let (outcome, _) = campaign()
                .resume(&flaky_registry(None, &[]), &mut resume_ckpt, None)
                .expect("a surviving manifest must resume");
            assert_eq!(
                outcome.into_report().expect("resume completes"),
                expected,
                "a checkpointed chunk holds runs that never executed (attempt {attempt})"
            );
        }
        fs::remove_file(&ckpt_path).ok();
    }
    fs::remove_dir_all(&dir).ok();
}

/// Deterministically drives the collector through the aborted-partial-chunk
/// path: runs in chunks 5–7 sleep, the first run of chunk 8 panics, so the
/// three workers on 5–7 reliably observe the abort flag mid-chunk and hand
/// the collector *partial* outputs — including one at the merge frontier.
/// Those partials must be dropped (never merged, never checkpointed), the
/// real failure must be the one reported, and the surviving manifest must
/// resume bit-identically.
#[test]
fn aborted_partial_chunks_are_dropped_not_merged() {
    let dir = scratch_dir("partial");
    const CHUNK: u64 = 16;
    const FAIL_CHUNK: u64 = 8; // of 12
    let campaign = || {
        Campaign::new("partial", 7)
            .with_chunk_size(CHUNK as usize)
            .with_threads(4)
            .entry(CampaignEntry::new("flaky").replications(12 * CHUNK))
    };
    let fail_seed = derive_run_seed(7, 0, FAIL_CHUNK * CHUNK);
    let slow_seeds: Vec<u64> =
        (5 * CHUNK..FAIL_CHUNK * CHUNK).map(|run| derive_run_seed(7, 0, run)).collect();
    let expected = campaign().run(&flaky_registry(None, &[])).expect("healthy reference");

    let ckpt_path = dir.join("partial.json");
    let mut ckpt = Checkpointer::new(&ckpt_path);
    let err = campaign()
        .run_checkpointed(&flaky_registry(Some(fail_seed), &slow_seeds), &mut ckpt, None)
        .expect_err("the injected failure must surface");
    assert!(
        err.contains("injected failure"),
        "the real failure is reported, not a stand-in: {err}"
    );

    let runs_done = assert_manifest_covers_exactly_its_watermark(&ckpt_path);
    assert!(
        runs_done <= FAIL_CHUNK * CHUNK,
        "watermark {runs_done} covers the failed chunk {FAIL_CHUNK}"
    );
    let mut resume_ckpt = Checkpointer::new(&ckpt_path);
    let (outcome, _) = campaign()
        .resume(&flaky_registry(None, &[]), &mut resume_ckpt, None)
        .expect("the manifest must resume");
    assert_eq!(outcome.into_report().expect("resume completes"), expected);
    fs::remove_dir_all(&dir).ok();
}

/// Resume must refuse manifests that do not belong to the campaign — a
/// changed grid, seed or chunk size silently merging foreign partials would
/// be a correctness disaster.
#[test]
fn resume_rejects_manifests_from_a_different_campaign_definition() {
    let dir = scratch_dir("reject");
    let ckpt_path = dir.join("reject.json");
    let original = noise_campaign(1, 20, 4, 2);
    let mut ckpt = Checkpointer::new(&ckpt_path).max_chunks_per_session(2);
    original.run_checkpointed(&noise_registry(), &mut ckpt, None).expect("session 1 runs");

    let mut resume_ckpt = Checkpointer::new(&ckpt_path);
    for (label, changed) in [
        ("seed", noise_campaign(2, 20, 4, 2)),
        ("chunk size", noise_campaign(1, 20, 5, 2)),
        ("replications", noise_campaign(1, 21, 4, 2)),
        (
            "grid",
            Campaign::new("resume-prop", 1).with_chunk_size(4).entry(
                CampaignEntry::new("noise")
                    .grid(ParamGrid::new().axis("scale", [1.0, 2.5, 3.5]))
                    .replications(20),
            ),
        ),
    ] {
        let err = changed.resume(&noise_registry(), &mut resume_ckpt, None).expect_err(label);
        assert!(err.contains("fingerprint"), "{label}: {err}");
    }
    // The unchanged definition still resumes fine (worker count may differ).
    let (outcome, _) = noise_campaign(1, 20, 4, 4)
        .resume(&noise_registry(), &mut resume_ckpt, None)
        .expect("same definition resumes");
    assert!(outcome.is_complete());
    fs::remove_dir_all(&dir).ok();
}

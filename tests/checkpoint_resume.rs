//! Resume-determinism properties of the campaign checkpoint subsystem: a
//! campaign interrupted at an arbitrary canonical-chunk boundary — its JSONL
//! stream truncated back to the checkpoint watermark, exactly what a crash
//! plus [`truncate_jsonl`] leaves behind — and resumed from its manifest
//! must produce a **byte-identical** report, JSON rendering and JSONL
//! stream, for 1 and N workers on either side of the interruption.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use karyon::scenario::{
    truncate_jsonl, Campaign, CampaignEntry, CampaignOutcome, CheckpointManifest, Checkpointer,
    JsonlRunWriter, ParamGrid, RunRecord, Scenario, ScenarioRegistry, ScenarioSpec,
};
use karyon::sim::splitmix64;

/// A cheap deterministic scenario with adversarial metric content: a
/// pre-agreed-range metric (streams through fixed histograms), an undeclared
/// wild-range metric (exercises exact-until-spill), an occasionally absent
/// metric and an occasional NaN.
struct Noise;

impl Scenario for Noise {
    fn name(&self) -> &str {
        "noise"
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "ranged" => Some((0.0, 1.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let mut state = spec.seed;
        let a = splitmix64(&mut state);
        let b = splitmix64(&mut state);
        let mut record = RunRecord::new();
        record.set("ranged", (a >> 11) as f64 / (1u64 << 53) as f64);
        record.set("wild", ((b % 10_000) as f64 - 5_000.0) * spec.f64_or("scale", 1.0));
        if a % 5 == 0 {
            record.set("sometimes", (a % 97) as f64);
        }
        if b % 31 == 0 {
            record.set("broken", f64::NAN);
        }
        record
    }
}

fn noise_registry() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::new();
    registry.register(Arc::new(Noise));
    registry
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("karyon-resume-{}-{tag}", std::process::id()));
    fs::create_dir_all(&dir).expect("temp dir is writable");
    dir
}

fn noise_campaign(seed: u64, replications: u64, chunk_size: usize, threads: usize) -> Campaign {
    Campaign::new("resume-prop", seed).with_chunk_size(chunk_size).with_threads(threads).entry(
        CampaignEntry::new("noise")
            .grid(ParamGrid::new().axis("scale", [1.0, 2.5]))
            .replications(replications),
    )
}

/// The uninterrupted reference: report + full JSONL bytes.
fn reference(campaign: &Campaign) -> (karyon::scenario::CampaignReport, Vec<u8>) {
    let mut jsonl = JsonlRunWriter::new(Vec::new());
    let report =
        campaign.run_with_sink(&noise_registry(), &mut jsonl).expect("noise is registered");
    (report, jsonl.finish().expect("in-memory writes cannot fail"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The flagship acceptance property: interrupt at an arbitrary chunk
    /// boundary, truncate the JSONL stream to the watermark (crash
    /// recovery), resume from the manifest — report, JSON text and JSONL
    /// stream are byte-identical to the uninterrupted run, with independent
    /// worker counts before and after the interruption.
    #[test]
    fn interrupted_campaigns_resume_byte_identically(
        seed in 0u64..100_000,
        replications in 4u64..40,
        chunk_size in 1usize..12,
        boundary_frac in 0.0f64..1.0,
        threads_before in 1usize..5,
        threads_after in 1usize..5,
    ) {
        let campaign = noise_campaign(seed, replications, chunk_size, threads_before);
        let chunks = campaign.canonical_chunks();
        if chunks < 2 {
            // A single-chunk campaign has no interior boundary to interrupt
            // at; nothing to check for this sample.
            return Ok(());
        }
        // Interrupt somewhere strictly inside the campaign.
        let boundary = 1 + ((chunks - 2) as f64 * boundary_frac) as usize;
        prop_assert!(boundary < chunks, "boundary {boundary} inside {chunks} chunks");
        let (expected_report, expected_jsonl) = reference(&campaign);

        let dir = scratch_dir("prop");
        let ckpt_path = dir.join(format!("c-{seed}-{replications}-{chunk_size}.json"));
        let jsonl_path = dir.join(format!("s-{seed}-{replications}-{chunk_size}.jsonl"));

        // Session 1: bounded to `boundary` chunks, checkpointing as it goes.
        let mut jsonl = JsonlRunWriter::new(
            fs::File::create(&jsonl_path).expect("temp file is writable"),
        );
        let mut ckpt = Checkpointer::new(&ckpt_path).max_chunks_per_session(boundary);
        let (outcome, _) = campaign
            .run_checkpointed(&noise_registry(), &mut ckpt, Some(&mut jsonl))
            .expect("session 1 runs");
        prop_assert_eq!(
            &outcome,
            &CampaignOutcome::Interrupted {
                chunks_done: boundary,
                runs_done: (boundary as u64 * chunk_size as u64).min(campaign.run_count()),
            }
        );
        drop(jsonl); // the crash: nothing past the last flush survives cleanly

        // Simulate a kill mid-write: runs beyond the checkpoint plus a torn
        // final line trail the stream.
        let mut tail = fs::OpenOptions::new().append(true).open(&jsonl_path).unwrap();
        use std::io::Write as _;
        writeln!(tail, "{{\"run\":99999,\"scenario\":\"noise\",\"metrics\":{{}}}}").unwrap();
        write!(tail, "{{\"run\":100000,\"scen").unwrap();
        drop(tail);

        // Crash recovery: read the manifest, cut the stream to the
        // watermark, resume with an append writer and a different worker
        // count.
        let manifest = CheckpointManifest::load(&ckpt_path).expect("manifest is on disk");
        prop_assert_eq!(manifest.chunks_done, boundary);
        truncate_jsonl(&jsonl_path, manifest.runs_done).expect("stream covers the watermark");
        let campaign = noise_campaign(seed, replications, chunk_size, threads_after);
        let mut jsonl = JsonlRunWriter::new(
            fs::OpenOptions::new().append(true).open(&jsonl_path).unwrap(),
        );
        let mut ckpt = Checkpointer::new(&ckpt_path);
        let (outcome, stats) = campaign
            .resume(&noise_registry(), &mut ckpt, Some(&mut jsonl))
            .expect("session 2 resumes");
        jsonl.finish().expect("stream closes cleanly");
        prop_assert_eq!(stats.chunks, (chunks - boundary) as u64);

        let resumed = match outcome {
            CampaignOutcome::Complete(report) => report,
            CampaignOutcome::Interrupted { .. } => {
                prop_assert!(false, "an unbounded resume session must complete");
                unreachable!()
            }
        };
        prop_assert_eq!(&resumed, &expected_report);
        prop_assert_eq!(resumed.to_json(), expected_report.to_json());
        // The stitched JSONL stream must be byte-identical to an
        // uninterrupted run's.
        let stitched = fs::read(&jsonl_path).unwrap();
        prop_assert!(stitched == expected_jsonl, "stitched JSONL differs from uninterrupted");
        fs::remove_file(&ckpt_path).ok();
        fs::remove_file(&jsonl_path).ok();
    }
}

/// Chained preemptions: a campaign sliced into many bounded sessions — each
/// resuming the last, under varying worker counts — still converges to the
/// uninterrupted result.  This is the time-slicing deployment mode
/// (preemptible compute) rather than the crash mode above.
#[test]
fn many_chained_sessions_converge_to_the_uninterrupted_report() {
    let dir = scratch_dir("chain");
    let ckpt_path = dir.join("chain.json");
    let build = |threads| noise_campaign(777, 50, 4, threads);
    let (expected, _) = reference(&build(1));
    let chunks = build(1).canonical_chunks();

    let mut sessions = 0usize;
    let mut ckpt = Checkpointer::new(&ckpt_path).max_chunks_per_session(3).every_chunks(2);
    let report = loop {
        sessions += 1;
        let threads = 1 + (sessions % 4);
        let campaign = build(threads);
        let (outcome, _) = if sessions == 1 {
            campaign.run_checkpointed(&noise_registry(), &mut ckpt, None).expect("session runs")
        } else {
            campaign.resume(&noise_registry(), &mut ckpt, None).expect("session resumes")
        };
        match outcome {
            CampaignOutcome::Complete(report) => break report,
            CampaignOutcome::Interrupted { chunks_done, .. } => {
                assert_eq!(chunks_done, (sessions * 3).min(chunks));
            }
        }
        assert!(sessions < 64, "the chain must terminate");
    };
    assert_eq!(sessions, chunks.div_ceil(3), "every session advances exactly its budget");
    assert_eq!(report, expected);
    assert_eq!(report.to_json(), expected.to_json());
    fs::remove_dir_all(&dir).ok();
}

/// Resume must refuse manifests that do not belong to the campaign — a
/// changed grid, seed or chunk size silently merging foreign partials would
/// be a correctness disaster.
#[test]
fn resume_rejects_manifests_from_a_different_campaign_definition() {
    let dir = scratch_dir("reject");
    let ckpt_path = dir.join("reject.json");
    let original = noise_campaign(1, 20, 4, 2);
    let mut ckpt = Checkpointer::new(&ckpt_path).max_chunks_per_session(2);
    original.run_checkpointed(&noise_registry(), &mut ckpt, None).expect("session 1 runs");

    let mut resume_ckpt = Checkpointer::new(&ckpt_path);
    for (label, changed) in [
        ("seed", noise_campaign(2, 20, 4, 2)),
        ("chunk size", noise_campaign(1, 20, 5, 2)),
        ("replications", noise_campaign(1, 21, 4, 2)),
        (
            "grid",
            Campaign::new("resume-prop", 1).with_chunk_size(4).entry(
                CampaignEntry::new("noise")
                    .grid(ParamGrid::new().axis("scale", [1.0, 2.5, 3.5]))
                    .replications(20),
            ),
        ),
    ] {
        let err = changed.resume(&noise_registry(), &mut resume_ckpt, None).expect_err(label);
        assert!(err.contains("fingerprint"), "{label}: {err}");
    }
    // The unchanged definition still resumes fine (worker count may differ).
    let (outcome, _) = noise_campaign(1, 20, 4, 4)
        .resume(&noise_registry(), &mut resume_ckpt, None)
        .expect("same definition resumes");
    assert!(outcome.is_complete());
    fs::remove_dir_all(&dir).ok();
}

//! Integration tests for the communication stack: R2T-MAC over the simulated
//! medium under disturbances, self-stabilizing TDMA with mobility, and the
//! end-to-end protocol carried over frames.

use karyon::net::mac::selfstab_tdma::allocation_is_collision_free;
use karyon::net::mac::{MacSimConfig, MacSimulation};
use karyon::net::{
    CsmaConfig, CsmaMac, Disturbance, MediumConfig, NodeId, R2TMac, R2TMacConfig, SelfStabTdmaMac,
    WirelessMedium,
};
use karyon::sim::{Rng, SimDuration, SimTime, Vec2};

#[test]
fn r2tmac_keeps_delivering_through_a_long_jam_while_csma_stalls() {
    let build_medium = || {
        let mut m =
            WirelessMedium::new(MediumConfig { range: 500.0, loss_probability: 0.0, channels: 2 });
        m.add_disturbance(Disturbance {
            channel: Some(0),
            start: SimTime::from_millis(500),
            end: SimTime::from_millis(4_500),
        });
        m
    };
    let traffic = |sim: &mut dyn FnMut(u64)| {
        for round in 0..100u64 {
            sim(round);
        }
    };

    // Plain CSMA.
    let mut csma = MacSimulation::new(build_medium(), MacSimConfig::default(), 5);
    for i in 0..4 {
        csma.add_node(
            NodeId(i),
            CsmaMac::new(CsmaConfig::default()),
            Vec2::new(i as f64 * 20.0, 0.0),
        );
    }
    let mut drive_csma = |round: u64| {
        csma.send_broadcast(NodeId((round % 4) as u32), vec![round as u8]);
        csma.run_slots(50);
    };
    traffic(&mut drive_csma);
    let csma_delivery = csma.metrics().delivery_per_generated();

    // R2T-MAC with channel diversity.
    let config = R2TMacConfig {
        copies: 1,
        heartbeat_period: 0,
        channel_switch_threshold: 10,
        channels: 2,
        ..Default::default()
    };
    let mut r2t = MacSimulation::new(build_medium(), MacSimConfig::default(), 5);
    for i in 0..4 {
        r2t.add_node(
            NodeId(i),
            R2TMac::new(CsmaMac::new(CsmaConfig::default()), config.clone()),
            Vec2::new(i as f64 * 20.0, 0.0),
        );
    }
    let mut drive_r2t = |round: u64| {
        r2t.send_broadcast(NodeId((round % 4) as u32), vec![round as u8]);
        r2t.run_slots(50);
    };
    traffic(&mut drive_r2t);
    let r2t_delivery = r2t.metrics().delivery_per_generated();

    assert!(
        r2t_delivery > csma_delivery,
        "R2T-MAC ({r2t_delivery:.2}) must outperform CSMA ({csma_delivery:.2}) under the jam"
    );
    // Every R2T node bounded its inaccessibility below the channel-switch bound.
    for id in r2t.node_ids() {
        let mac = r2t.mac(id).unwrap();
        assert!(
            mac.inaccessibility().longest()
                <= mac.inaccessibility_bound(SimDuration::from_millis(1))
        );
    }
}

#[test]
fn selfstab_tdma_reconverges_under_mobility() {
    let medium =
        WirelessMedium::new(MediumConfig { range: 120.0, loss_probability: 0.0, channels: 1 });
    let mut sim = MacSimulation::new(
        medium,
        MacSimConfig { slot_duration: SimDuration::from_millis(1), slots_per_frame: 16 },
        8,
    );
    // Two spatially separated clusters that can reuse slots.
    for i in 0..4u32 {
        sim.add_node(NodeId(i), SelfStabTdmaMac::new(), Vec2::new(i as f64 * 20.0, 0.0));
        sim.add_node(
            NodeId(100 + i),
            SelfStabTdmaMac::new(),
            Vec2::new(1_000.0 + i as f64 * 20.0, 0.0),
        );
    }
    sim.run_slots(16 * 60);

    let converged = |sim: &MacSimulation<SelfStabTdmaMac>| {
        let claims: Vec<(NodeId, Option<u16>)> =
            sim.node_ids().iter().map(|id| (*id, sim.mac(*id).unwrap().claimed_slot())).collect();
        allocation_is_collision_free(&claims, |a, b| sim.medium().in_range(a, b))
    };
    assert!(converged(&sim), "initial convergence failed");

    // The second cluster drives into range of the first: slot reuse may now
    // conflict and the allocation must re-stabilize.
    for i in 0..4u32 {
        sim.set_position(NodeId(100 + i), Vec2::new(40.0 + i as f64 * 20.0, 10.0));
    }
    sim.run_slots(16 * 120);
    assert!(converged(&sim), "allocation did not re-converge after the clusters merged");
}

#[test]
fn end_to_end_protocol_over_simulated_frames() {
    // Carry the self-stabilizing end-to-end protocol over a pair of in-memory
    // channels whose error pattern is driven by the shared deterministic RNG,
    // checking FIFO delivery for several capacities in one go.
    use karyon::net::end_to_end::{eventually_fifo, E2EConfig, EndToEndSession};
    let mut rng = Rng::seed_from(123);
    for capacity in [2usize, 4, 8] {
        let config = E2EConfig { capacity, omission: 0.2, duplication: 0.2, reorder: true };
        let mut session = EndToEndSession::new(&config, rng.next_u64());
        let sent: Vec<u64> = (1..=60).collect();
        for &m in &sent {
            session.sender.enqueue(m);
        }
        session.run_until_drained(3_000_000);
        assert!(
            eventually_fifo(&sent, session.receiver.delivered(), 0),
            "capacity {capacity}: {:?}",
            session.receiver.delivered()
        );
    }
}

//! Workspace smoke test: the umbrella crate must re-export every layer under
//! its short module name, and the quickstart example's logic must run.
//!
//! This is the canary for the build system itself — if a `pub use` or a
//! manifest dependency goes missing, this file stops compiling before any
//! deeper suite gets a chance to be confusing.

use karyon::core::los::Asil;
use karyon::core::{
    Condition, DesignTimeSafetyInfo, Hazard, HazardAnalysis, LevelOfService, LosSpec, SafetyKernel,
    SafetyRule,
};
use karyon::middleware::{
    Admission, ContextFilter, EventBus, NetworkCapability, NetworkId, QosClass, QosRequirement,
};
use karyon::net::{MediumConfig, SelfStabTdmaMac, WirelessMedium};
use karyon::scenario::{builtin_registry, ScenarioSpec};
use karyon::sensors::{marzullo_fuse, weighted_fuse, Interval, Measurement, Validity};
use karyon::sim::{EventQueue, Rng, SimDuration, SimTime};
use karyon::vehicles::{run_platoon, ControlMode, PlatoonConfig};

/// Every re-exported layer is reachable through the umbrella crate: construct
/// (or call) one item per module so a missing re-export fails the build here.
#[test]
fn umbrella_reexports_resolve() {
    // karyon::sim
    let mut queue: EventQueue<u8> = EventQueue::new();
    queue.schedule(SimTime::from_millis(1), 7);
    assert_eq!(queue.pop(), Some((SimTime::from_millis(1), 7)));
    let mut rng = Rng::seed_from(42);
    assert!(rng.next_f64() < 1.0);

    // karyon::sensors
    let fused = marzullo_fuse(&[Interval::new(0.0, 2.0), Interval::new(1.0, 3.0)], 0);
    assert!(fused.expect("overlapping intervals fuse").contains(1.5));
    let (value, validity) =
        weighted_fuse(&[(Measurement::new(1.0, SimTime::ZERO, 1.0), Validity::new(0.9))])
            .expect("non-empty fusion");
    assert!((value - 1.0).abs() < 1e-9);
    assert!(validity.fraction() > 0.0);

    // karyon::net
    let medium = WirelessMedium::new(MediumConfig::default());
    assert!(medium.nodes().is_empty());
    let _mac = SelfStabTdmaMac::new();

    // karyon::middleware
    let mut bus = EventBus::new(3);
    bus.attach_network(NetworkId(0), NetworkCapability::local_bus());
    let publisher = bus.topic("smoke.topic").announce(QosRequirement::best_effort());
    assert_eq!(
        publisher.admission(),
        Admission::Admitted,
        "best-effort channel on a local bus must be admitted"
    );
    assert_eq!(publisher.subject(), karyon::middleware::Subject::from_name("smoke.topic"));
    let _ = ContextFilter::accept_all();
    let _ = QosClass::Realtime;

    // karyon::core
    assert!(LevelOfService(0).is_non_cooperative());

    // karyon::scenario
    let registry = builtin_registry();
    let record = registry
        .get("middleware-qos")
        .expect("builtin family registered")
        .run(&ScenarioSpec::new("middleware-qos").with_seed(9).with_duration_secs(5));
    assert!(record.get("published").unwrap_or(0.0) > 0.0);

    // karyon::vehicles
    let result = run_platoon(&PlatoonConfig {
        vehicles: 3,
        duration: SimDuration::from_secs(20),
        mode: ControlMode::SafetyKernel,
        seed: 5,
        ..Default::default()
    });
    assert_eq!(result.collisions, 0, "short healthy platoon run must be collision-free");
}

/// The quickstart example's scenario, run as a test: a safety kernel degrades
/// LoS 2 → 1 → 0 as the V2V radio and then the range sensor fail.
#[test]
fn quickstart_scenario_runs() {
    let mut hazards = HazardAnalysis::new();
    hazards.add(Hazard::new(
        "H1-rear-end",
        "rear-end collision with the preceding vehicle",
        Asil::C,
        SimDuration::from_millis(600),
    ));
    let design = DesignTimeSafetyInfo::new(
        "adaptive-cruise-control",
        vec![
            LosSpec {
                level: LevelOfService(0),
                description: "autonomous sensors only".into(),
                rules: vec![],
                asil: Asil::QM,
                performance_index: 1.0,
            },
            LosSpec {
                level: LevelOfService(1),
                description: "cooperative awareness".into(),
                rules: vec![SafetyRule::new(
                    "R1-range-validity",
                    Condition::MinValidity { item: "front-range".into(), threshold: 0.5 },
                )],
                asil: Asil::B,
                performance_index: 2.0,
            },
            LosSpec {
                level: LevelOfService(2),
                description: "fully cooperative CACC".into(),
                rules: vec![
                    SafetyRule::new(
                        "R2-v2v-health",
                        Condition::ComponentHealthy { component: "v2v-radio".into() },
                    ),
                    SafetyRule::new(
                        "R3-v2v-freshness",
                        Condition::MaxAge {
                            item: "lead-state".into(),
                            bound: SimDuration::from_millis(300),
                        },
                    ),
                ],
                asil: Asil::C,
                performance_index: 3.0,
            },
        ],
        hazards,
        SimDuration::from_millis(50),
    );
    let mut kernel = SafetyKernel::new(design, SimDuration::from_millis(100));

    // Healthy: everything fresh and valid ⇒ highest LoS.
    let t0 = SimTime::from_millis(100);
    kernel.info_mut().update_data("front-range", 42.0, Validity::new(0.95), t0);
    kernel.info_mut().update_health("v2v-radio", true, t0);
    kernel.info_mut().update_data("lead-state", 27.0, Validity::FULL, t0);
    assert_eq!(kernel.run_cycle(t0).selected, LevelOfService(2));

    // V2V radio fails ⇒ degrade to LoS 1.
    let t1 = SimTime::from_millis(200);
    kernel.info_mut().update_health("v2v-radio", false, t1);
    let decision = kernel.run_cycle(t1);
    assert_eq!(decision.selected, LevelOfService(1));
    assert!(!decision.violations.is_empty(), "the violated LoS-2 rule must be reported");

    // Range sensor degrades too ⇒ fall back to the non-cooperative level.
    let t2 = SimTime::from_millis(300);
    kernel.info_mut().update_data("front-range", 42.0, Validity::new(0.2), t2);
    let decision = kernel.run_cycle(t2);
    assert_eq!(decision.selected, LevelOfService(0));
    assert!(decision.selected.is_non_cooperative());

    assert_eq!(kernel.switches().len(), 3, "LoS0→2, 2→1 and 1→0 switches are recorded");
}

//! Run-time environment model and hidden channels (paper §II-B).
//!
//! "One key concept that we pursue is keeping environment models in an
//! appropriate form for run-time assessment.  This has major advantages, such
//! as relating actuation and subsequent sensing events, assessing the
//! temporal uncertainty of information arriving via a network with low
//! predictability, and supporting the formulation and detection of a safety
//! critical state.  … Hidden channels are understood as physical
//! communication channels and as an opportunity rather than impairment,
//! because they allow detecting unsafe states even when the network is down."
//!
//! The [`EnvironmentModel`] keeps, per tracked entity, the last *announced*
//! behaviour (received over the network, e.g. "I will brake at 3 m/s²") and
//! the behaviour *observed through local sensors* (the hidden channel: the
//! physical world itself).  Comparing the two yields
//!
//! * a **plausibility check** on network information (announcements that the
//!   physics contradicts lower the trust in that entity), and
//! * **unsafe-state detection that survives network outages**: even with no
//!   fresh announcements, a locally observed deviation from the last agreed
//!   behaviour (e.g. the leader braking hard) is flagged within a bounded
//!   time.

use std::collections::BTreeMap;

use karyon_sim::{SimDuration, SimTime};

/// The announced (network-received) behaviour of a tracked entity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnouncedBehaviour {
    /// Announced speed (m/s).
    pub speed: f64,
    /// Announced acceleration (m/s²).
    pub acceleration: f64,
    /// When the announcement was produced at its sender.
    pub timestamp: SimTime,
}

/// A locally observed kinematic sample of a tracked entity (from on-board
/// sensors — the hidden channel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedKinematics {
    /// Observed speed (m/s).
    pub speed: f64,
    /// Observed acceleration (m/s²), typically differentiated from ranging.
    pub acceleration: f64,
    /// Observation time.
    pub timestamp: SimTime,
}

/// The assessment of one tracked entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityAssessment {
    /// Announcements and observations agree (within tolerances).
    Consistent,
    /// The physical observation contradicts the announcement — the networked
    /// information should not be trusted at face value.
    Implausible,
    /// No sufficiently fresh announcement exists, but local observation shows
    /// behaviour that requires a reaction (e.g. hard braking ahead).
    UnsafeWithoutNetwork,
    /// Nothing fresh is known at all (neither announcements nor observations).
    Unknown,
}

/// Configuration of the environment model's consistency checks.
#[derive(Debug, Clone, Copy)]
pub struct EnvironmentModelConfig {
    /// Maximum age of an announcement before it is considered stale.
    pub announcement_freshness: SimDuration,
    /// Maximum age of an observation before it is considered stale.
    pub observation_freshness: SimDuration,
    /// Tolerated difference between announced and observed acceleration (m/s²).
    pub acceleration_tolerance: f64,
    /// Tolerated difference between announced and observed speed (m/s).
    pub speed_tolerance: f64,
    /// Observed deceleration magnitude beyond which the state is unsafe even
    /// without any network information (m/s²).
    pub unsafe_deceleration: f64,
}

impl Default for EnvironmentModelConfig {
    fn default() -> Self {
        EnvironmentModelConfig {
            announcement_freshness: SimDuration::from_millis(500),
            observation_freshness: SimDuration::from_millis(300),
            acceleration_tolerance: 1.5,
            speed_tolerance: 2.0,
            unsafe_deceleration: 3.0,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct TrackedEntity {
    announced: Option<AnnouncedBehaviour>,
    observed: Option<ObservedKinematics>,
    implausible_count: u64,
}

/// The per-vehicle environment model relating networked announcements to
/// locally observed physics.
#[derive(Debug, Clone)]
pub struct EnvironmentModel {
    config: EnvironmentModelConfig,
    entities: BTreeMap<u32, TrackedEntity>,
}

impl EnvironmentModel {
    /// Creates an environment model with the given consistency configuration.
    pub fn new(config: EnvironmentModelConfig) -> Self {
        EnvironmentModel { config, entities: BTreeMap::new() }
    }

    /// Records a network announcement from entity `id`.
    pub fn record_announcement(&mut self, id: u32, behaviour: AnnouncedBehaviour) {
        let entry = self.entities.entry(id).or_default();
        match entry.announced {
            Some(prev) if prev.timestamp > behaviour.timestamp => {}
            _ => entry.announced = Some(behaviour),
        }
    }

    /// Records a local sensor observation of entity `id` (the hidden channel).
    pub fn record_observation(&mut self, id: u32, observation: ObservedKinematics) {
        let entry = self.entities.entry(id).or_default();
        match entry.observed {
            Some(prev) if prev.timestamp > observation.timestamp => {}
            _ => entry.observed = Some(observation),
        }
    }

    /// Number of entities currently tracked.
    pub fn tracked(&self) -> usize {
        self.entities.len()
    }

    /// How many times entity `id` has been assessed implausible.
    pub fn implausibility_count(&self, id: u32) -> u64 {
        self.entities.get(&id).map(|e| e.implausible_count).unwrap_or(0)
    }

    /// Assesses entity `id` at time `now`, updating its implausibility count.
    pub fn assess(&mut self, id: u32, now: SimTime) -> EntityAssessment {
        let config = self.config;
        let Some(entity) = self.entities.get_mut(&id) else {
            return EntityAssessment::Unknown;
        };
        let fresh_announcement =
            entity.announced.filter(|a| now.since(a.timestamp) <= config.announcement_freshness);
        let fresh_observation =
            entity.observed.filter(|o| now.since(o.timestamp) <= config.observation_freshness);

        match (fresh_announcement, fresh_observation) {
            (Some(announced), Some(observed)) => {
                let acc_dev = (announced.acceleration - observed.acceleration).abs();
                let speed_dev = (announced.speed - observed.speed).abs();
                if acc_dev > config.acceleration_tolerance || speed_dev > config.speed_tolerance {
                    entity.implausible_count += 1;
                    EntityAssessment::Implausible
                } else {
                    EntityAssessment::Consistent
                }
            }
            (None, Some(observed)) => {
                if observed.acceleration <= -config.unsafe_deceleration {
                    EntityAssessment::UnsafeWithoutNetwork
                } else {
                    // Observation alone, nothing alarming: treat as consistent
                    // non-cooperative traffic.
                    EntityAssessment::Consistent
                }
            }
            (Some(_), None) => {
                // Announcements without any physical confirmation cannot be
                // validated; the safety rules should not rely on them.
                EntityAssessment::Unknown
            }
            (None, None) => EntityAssessment::Unknown,
        }
    }

    /// Convenience for safety rules: a trust factor in `[0, 1]` for entity
    /// `id` — 1 when consistent, reduced by every recorded implausibility.
    pub fn trust(&self, id: u32) -> f64 {
        let count = self.implausibility_count(id);
        1.0 / (1.0 + count as f64 * 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnvironmentModel {
        EnvironmentModel::new(EnvironmentModelConfig::default())
    }

    fn announced(speed: f64, acceleration: f64, ms: u64) -> AnnouncedBehaviour {
        AnnouncedBehaviour { speed, acceleration, timestamp: SimTime::from_millis(ms) }
    }

    fn observed(speed: f64, acceleration: f64, ms: u64) -> ObservedKinematics {
        ObservedKinematics { speed, acceleration, timestamp: SimTime::from_millis(ms) }
    }

    #[test]
    fn consistent_announcement_and_observation() {
        let mut m = model();
        m.record_announcement(7, announced(25.0, -1.0, 900));
        m.record_observation(7, observed(24.5, -0.8, 950));
        assert_eq!(m.assess(7, SimTime::from_millis(1_000)), EntityAssessment::Consistent);
        assert_eq!(m.tracked(), 1);
        assert_eq!(m.implausibility_count(7), 0);
        assert_eq!(m.trust(7), 1.0);
    }

    #[test]
    fn contradicting_announcement_is_implausible() {
        let mut m = model();
        // Announces gentle cruising but is physically braking hard.
        m.record_announcement(3, announced(25.0, 0.0, 900));
        m.record_observation(3, observed(24.0, -4.0, 950));
        assert_eq!(m.assess(3, SimTime::from_millis(1_000)), EntityAssessment::Implausible);
        assert_eq!(m.implausibility_count(3), 1);
        assert!(m.trust(3) < 1.0);
        // Repeated implausibility keeps lowering the trust.
        m.record_observation(3, observed(22.0, -4.0, 1_050));
        m.assess(3, SimTime::from_millis(1_100));
        assert!(m.trust(3) < 0.6);
    }

    #[test]
    fn hidden_channel_detects_unsafe_state_without_network() {
        let mut m = model();
        // No announcement at all (network down), but the local sensors see
        // the vehicle ahead braking hard.
        m.record_observation(9, observed(20.0, -5.0, 980));
        assert_eq!(
            m.assess(9, SimTime::from_millis(1_000)),
            EntityAssessment::UnsafeWithoutNetwork
        );
        // Mild behaviour without announcements is just non-cooperative traffic.
        m.record_observation(9, observed(20.0, -0.5, 1_050));
        assert_eq!(m.assess(9, SimTime::from_millis(1_100)), EntityAssessment::Consistent);
    }

    #[test]
    fn stale_information_degrades_to_unknown() {
        let mut m = model();
        m.record_announcement(1, announced(20.0, 0.0, 100));
        m.record_observation(1, observed(20.0, 0.0, 100));
        // Both stale at t = 2 s.
        assert_eq!(m.assess(1, SimTime::from_secs(2)), EntityAssessment::Unknown);
        // Unknown entity.
        assert_eq!(m.assess(42, SimTime::from_secs(2)), EntityAssessment::Unknown);
        // A fresh announcement without physical confirmation is also Unknown.
        m.record_announcement(2, announced(20.0, 0.0, 1_900));
        assert_eq!(m.assess(2, SimTime::from_secs(2)), EntityAssessment::Unknown);
    }

    #[test]
    fn out_of_order_updates_keep_the_newest() {
        let mut m = model();
        m.record_announcement(5, announced(20.0, 0.0, 500));
        m.record_announcement(5, announced(25.0, 0.0, 400)); // older, ignored
        m.record_observation(5, observed(20.0, 0.0, 520));
        m.record_observation(5, observed(99.0, 0.0, 100)); // older, ignored
        assert_eq!(m.assess(5, SimTime::from_millis(600)), EntityAssessment::Consistent);
    }
}

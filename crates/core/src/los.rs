//! Levels of Service, ASIL grades and hazards.
//!
//! "We consider that functionality can be performed with possibly several
//! LoS … in run-time it will be possible to select the LoS that will allow
//! the highest performance for the functionality while making sure that all
//! unacceptable risks are avoided" (paper §III).  There is always one LoS
//! that meets all conditions for functional safety — the non-cooperative
//! mode realized only with components below the hybridization line.

use std::fmt;

use karyon_sim::SimDuration;

/// A Level of Service.  Higher values allow higher performance but impose
/// more safety rules; level 0 is the always-safe non-cooperative mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LevelOfService(pub u8);

impl LevelOfService {
    /// The non-cooperative, always-safe level.
    pub const NON_COOPERATIVE: LevelOfService = LevelOfService(0);

    /// The next lower level (saturating at the non-cooperative level).
    pub fn lower(self) -> LevelOfService {
        LevelOfService(self.0.saturating_sub(1))
    }

    /// The next higher level.
    pub fn higher(self) -> LevelOfService {
        LevelOfService(self.0.saturating_add(1))
    }

    /// True when this is the non-cooperative fallback level.
    pub fn is_non_cooperative(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for LevelOfService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LoS{}", self.0)
    }
}

/// Automotive Safety Integrity Level (ISO 26262).  The avionics use cases map
/// their assurance levels onto the same scale for the purpose of the
/// reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Asil {
    /// Quality managed — no safety requirement.
    QM,
    /// ASIL A (lowest integrity requirement).
    A,
    /// ASIL B.
    B,
    /// ASIL C.
    C,
    /// ASIL D (highest integrity requirement).
    D,
}

impl fmt::Display for Asil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Asil::QM => "QM",
            Asil::A => "ASIL-A",
            Asil::B => "ASIL-B",
            Asil::C => "ASIL-C",
            Asil::D => "ASIL-D",
        };
        f.write_str(s)
    }
}

/// A hazard identified by the design-time hazard analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Hazard {
    /// Stable identifier, e.g. `"H1-rear-end-collision"`.
    pub id: String,
    /// Human-readable description.
    pub description: String,
    /// Integrity level assigned to mitigating this hazard.
    pub asil: Asil,
    /// Maximum time the system may take to react once the hazard condition
    /// is detected (drives the bounded LoS-switch requirement).
    pub max_reaction: SimDuration,
}

impl Hazard {
    /// Creates a hazard record.
    pub fn new(id: &str, description: &str, asil: Asil, max_reaction: SimDuration) -> Self {
        Hazard { id: id.to_string(), description: description.to_string(), asil, max_reaction }
    }
}

/// The design-time hazard analysis: the set of hazards and the tightest
/// reaction bound among them (which the safety-manager cycle must respect).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HazardAnalysis {
    hazards: Vec<Hazard>,
}

impl HazardAnalysis {
    /// Creates an empty analysis.
    pub fn new() -> Self {
        HazardAnalysis { hazards: Vec::new() }
    }

    /// Adds a hazard.
    pub fn add(&mut self, hazard: Hazard) -> &mut Self {
        self.hazards.push(hazard);
        self
    }

    /// All recorded hazards.
    pub fn hazards(&self) -> &[Hazard] {
        &self.hazards
    }

    /// The highest ASIL among the hazards, if any.
    pub fn highest_asil(&self) -> Option<Asil> {
        self.hazards.iter().map(|h| h.asil).max()
    }

    /// The tightest (smallest) reaction bound among the hazards; the safety
    /// manager's cycle time plus the LoS switch time must stay below it.
    pub fn tightest_reaction_bound(&self) -> Option<SimDuration> {
        self.hazards.iter().map(|h| h.max_reaction).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn los_ordering_and_navigation() {
        let low = LevelOfService::NON_COOPERATIVE;
        let high = LevelOfService(3);
        assert!(low < high);
        assert!(low.is_non_cooperative());
        assert!(!high.is_non_cooperative());
        assert_eq!(high.lower(), LevelOfService(2));
        assert_eq!(low.lower(), low);
        assert_eq!(low.higher(), LevelOfService(1));
        assert_eq!(format!("{high}"), "LoS3");
    }

    #[test]
    fn asil_ordering() {
        assert!(Asil::QM < Asil::A);
        assert!(Asil::A < Asil::D);
        assert_eq!(format!("{}", Asil::C), "ASIL-C");
        assert_eq!(format!("{}", Asil::QM), "QM");
    }

    #[test]
    fn hazard_analysis_aggregates() {
        let mut ha = HazardAnalysis::new();
        assert_eq!(ha.highest_asil(), None);
        assert_eq!(ha.tightest_reaction_bound(), None);
        ha.add(Hazard::new("H1", "rear-end collision", Asil::C, SimDuration::from_millis(300)));
        ha.add(Hazard::new("H2", "lane departure", Asil::B, SimDuration::from_millis(500)));
        ha.add(Hazard::new("H3", "intersection conflict", Asil::D, SimDuration::from_millis(200)));
        assert_eq!(ha.hazards().len(), 3);
        assert_eq!(ha.highest_asil(), Some(Asil::D));
        assert_eq!(ha.tightest_reaction_bound(), Some(SimDuration::from_millis(200)));
    }
}

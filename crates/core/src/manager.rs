//! The Safety Manager and the Safety Kernel.
//!
//! "The Safety Manager is the component that triggers changes in the
//! operation of the nominal system components in order to adjust the LoS as
//! necessary … The safety manager will periodically check the run time safety
//! data against safety rules and make the necessary adjustments in the
//! nominal system components.  Upper bounds on the time needed to perform
//! each cycle will be known at design time" (paper §III).

use karyon_sim::{SimDuration, SimTime, TimeSeries};

use crate::design_time::DesignTimeSafetyInfo;
use crate::los::LevelOfService;
use crate::runtime::RunTimeSafetyInfo;

/// The outcome of one safety-manager evaluation cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct LosDecision {
    /// The highest level whose rules all hold (the level to enforce).
    pub selected: LevelOfService,
    /// The level that was active before this cycle.
    pub previous: LevelOfService,
    /// Rule identifiers that failed, per level that was rejected.
    pub violations: Vec<(LevelOfService, Vec<String>)>,
    /// When the decision was made.
    pub decided_at: SimTime,
}

impl LosDecision {
    /// True when the cycle changed the Level of Service.
    pub fn switched(&self) -> bool {
        self.selected != self.previous
    }

    /// True when the cycle lowered the Level of Service (a safety-driven
    /// degradation).
    pub fn degraded(&self) -> bool {
        self.selected < self.previous
    }
}

/// A record of one LoS switch, used to verify the bounded-switch property.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchEvent {
    /// When the switch was decided.
    pub at: SimTime,
    /// The level before the switch.
    pub from: LevelOfService,
    /// The level after the switch.
    pub to: LevelOfService,
    /// How long enacting the switch took (reconfiguration latency).
    pub latency: SimDuration,
}

/// The Safety Manager: evaluates safety rules and selects the LoS.
#[derive(Debug, Clone)]
pub struct SafetyManager {
    design: DesignTimeSafetyInfo,
    current: LevelOfService,
    evaluations: u64,
}

impl SafetyManager {
    /// Creates a manager that starts at the non-cooperative level.
    pub fn new(design: DesignTimeSafetyInfo) -> Self {
        SafetyManager { design, current: LevelOfService::NON_COOPERATIVE, evaluations: 0 }
    }

    /// The design-time safety information driving this manager.
    pub fn design(&self) -> &DesignTimeSafetyInfo {
        &self.design
    }

    /// The currently selected Level of Service.
    pub fn current(&self) -> LevelOfService {
        self.current
    }

    /// Number of evaluation cycles performed.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Performs one evaluation cycle: checks every level's rules against the
    /// run-time safety information and selects the highest safe level.
    pub fn evaluate(&mut self, info: &RunTimeSafetyInfo, now: SimTime) -> LosDecision {
        self.evaluations += 1;
        let previous = self.current;
        let mut violations = Vec::new();
        let mut selected = LevelOfService::NON_COOPERATIVE;
        // Levels are ordered; walk from the lowest to the highest and keep
        // the highest level whose *entire* rule set holds.  A higher level is
        // only reachable if every lower level also holds (the rule sets are
        // cumulative by construction of the use cases).
        for spec in self.design.levels() {
            let failed: Vec<String> =
                spec.rules.iter().filter(|r| !r.holds(info)).map(|r| r.id.clone()).collect();
            if failed.is_empty() {
                selected = spec.level;
            } else {
                violations.push((spec.level, failed));
                break;
            }
        }
        self.current = selected;
        LosDecision { selected, previous, violations, decided_at: now }
    }
}

/// The Safety Kernel: the Safety Manager plus the run-time information store,
/// periodic execution and switch-latency accounting.  There is logically one
/// kernel per vehicle.
#[derive(Debug)]
pub struct SafetyKernel {
    manager: SafetyManager,
    info: RunTimeSafetyInfo,
    cycle_period: SimDuration,
    next_cycle: SimTime,
    switches: Vec<SwitchEvent>,
    los_trace: TimeSeries,
    last_decision: Option<LosDecision>,
}

impl SafetyKernel {
    /// Creates a kernel with the given design-time information and cycle
    /// period.
    ///
    /// # Panics
    /// Panics if the cycle period is zero, or if the cycle period plus the
    /// design-time switch bound exceeds the tightest hazard reaction bound
    /// (in which case safety cannot be argued, per §III).
    pub fn new(design: DesignTimeSafetyInfo, cycle_period: SimDuration) -> Self {
        assert!(!cycle_period.is_zero(), "cycle period must be non-zero");
        assert!(
            design.reaction_bound_satisfied(cycle_period),
            "cycle period + switch bound exceeds the tightest hazard reaction bound"
        );
        SafetyKernel {
            manager: SafetyManager::new(design),
            info: RunTimeSafetyInfo::new(),
            cycle_period,
            next_cycle: SimTime::ZERO,
            switches: Vec::new(),
            los_trace: TimeSeries::new(),
            last_decision: None,
        }
    }

    /// The kernel's cycle period.
    pub fn cycle_period(&self) -> SimDuration {
        self.cycle_period
    }

    /// The current Level of Service.
    pub fn current_los(&self) -> LevelOfService {
        self.manager.current()
    }

    /// Mutable access to the run-time safety information (data collection).
    pub fn info_mut(&mut self) -> &mut RunTimeSafetyInfo {
        &mut self.info
    }

    /// Shared access to the run-time safety information.
    pub fn info(&self) -> &RunTimeSafetyInfo {
        &self.info
    }

    /// The manager (e.g. to inspect the design-time information).
    pub fn manager(&self) -> &SafetyManager {
        &self.manager
    }

    /// The most recent decision, if a cycle has run.
    pub fn last_decision(&self) -> Option<&LosDecision> {
        self.last_decision.as_ref()
    }

    /// All recorded LoS switches.
    pub fn switches(&self) -> &[SwitchEvent] {
        &self.switches
    }

    /// The LoS trace over time (one sample per executed cycle).
    pub fn los_trace(&self) -> &TimeSeries {
        &self.los_trace
    }

    /// Runs the periodic cycle if it is due at `now`; returns the decision if
    /// a cycle was executed.  The enacted switch latency is bounded by the
    /// design-time switch bound (modelled as exactly that bound, the worst
    /// case used in the safety argument).
    pub fn step(&mut self, now: SimTime) -> Option<LosDecision> {
        if now < self.next_cycle {
            return None;
        }
        self.next_cycle = now + self.cycle_period;
        Some(self.run_cycle(now))
    }

    /// Forces an evaluation cycle at `now` regardless of the period (used
    /// when a critical event demands immediate reassessment).
    pub fn run_cycle(&mut self, now: SimTime) -> LosDecision {
        self.info.set_now(now);
        let decision = self.manager.evaluate(&self.info, now);
        if decision.switched() {
            self.switches.push(SwitchEvent {
                at: now,
                from: decision.previous,
                to: decision.selected,
                latency: self.manager.design().switch_time_bound(),
            });
        }
        self.los_trace.record(now, decision.selected.0 as f64);
        self.last_decision = Some(decision.clone());
        decision
    }

    /// The worst-case time from a rule being violated to the lower LoS being
    /// enforced: one full cycle period (detection latency) plus the switch
    /// bound (enactment latency).  This is the quantity that must stay below
    /// every hazard's reaction bound.
    pub fn worst_case_reaction(&self) -> SimDuration {
        self.cycle_period + self.manager.design().switch_time_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design_time::LosSpec;
    use crate::los::{Asil, Hazard, HazardAnalysis};
    use crate::rules::{Condition, SafetyRule};
    use karyon_sensors::Validity;

    fn design() -> DesignTimeSafetyInfo {
        let mut hazards = HazardAnalysis::new();
        hazards.add(Hazard::new("H1", "rear-end", Asil::C, SimDuration::from_millis(500)));
        DesignTimeSafetyInfo::new(
            "acc",
            vec![
                LosSpec {
                    level: LevelOfService(0),
                    description: "autonomous sensors only".into(),
                    rules: vec![],
                    asil: Asil::QM,
                    performance_index: 1.0,
                },
                LosSpec {
                    level: LevelOfService(1),
                    description: "cooperative with degraded data".into(),
                    rules: vec![SafetyRule::new(
                        "R1-v2v-health",
                        Condition::ComponentHealthy { component: "v2v".into() },
                    )],
                    asil: Asil::B,
                    performance_index: 2.0,
                },
                LosSpec {
                    level: LevelOfService(2),
                    description: "fully cooperative".into(),
                    rules: vec![
                        SafetyRule::new(
                            "R2-v2v-health",
                            Condition::ComponentHealthy { component: "v2v".into() },
                        ),
                        SafetyRule::new(
                            "R3-remote-validity",
                            Condition::MinValidity {
                                item: "remote-headway".into(),
                                threshold: 0.8,
                            },
                        ),
                    ],
                    asil: Asil::C,
                    performance_index: 3.0,
                },
            ],
            hazards,
            SimDuration::from_millis(50),
        )
    }

    fn kernel() -> SafetyKernel {
        SafetyKernel::new(design(), SimDuration::from_millis(100))
    }

    #[test]
    fn starts_at_non_cooperative_level() {
        let k = kernel();
        assert_eq!(k.current_los(), LevelOfService::NON_COOPERATIVE);
        assert!(k.last_decision().is_none());
        assert_eq!(k.cycle_period(), SimDuration::from_millis(100));
    }

    #[test]
    fn selects_highest_level_whose_rules_hold() {
        let mut k = kernel();
        let now = SimTime::from_millis(100);
        k.info_mut().update_health("v2v", true, now);
        k.info_mut().update_data("remote-headway", 1.5, Validity::new(0.9), now);
        let d = k.run_cycle(now);
        assert_eq!(d.selected, LevelOfService(2));
        assert!(d.switched());
        assert!(!d.degraded());
        assert!(d.violations.is_empty());
        assert_eq!(k.current_los(), LevelOfService(2));
    }

    #[test]
    fn degrades_when_rules_break_and_reports_violations() {
        let mut k = kernel();
        let t0 = SimTime::from_millis(100);
        k.info_mut().update_health("v2v", true, t0);
        k.info_mut().update_data("remote-headway", 1.5, Validity::new(0.9), t0);
        k.run_cycle(t0);
        assert_eq!(k.current_los(), LevelOfService(2));
        // Remote data degrades below the validity threshold.
        let t1 = SimTime::from_millis(200);
        k.info_mut().update_data("remote-headway", 1.5, Validity::new(0.3), t1);
        let d = k.run_cycle(t1);
        assert_eq!(d.selected, LevelOfService(1));
        assert!(d.degraded());
        assert_eq!(d.violations.len(), 1);
        assert_eq!(d.violations[0].0, LevelOfService(2));
        assert_eq!(d.violations[0].1, vec!["R3-remote-validity".to_string()]);
        // V2V dies entirely: fall back to non-cooperative.
        let t2 = SimTime::from_millis(300);
        k.info_mut().update_health("v2v", false, t2);
        let d = k.run_cycle(t2);
        assert_eq!(d.selected, LevelOfService::NON_COOPERATIVE);
        assert_eq!(k.switches().len(), 3);
        assert!(k.switches().iter().all(|s| s.latency == SimDuration::from_millis(50)));
    }

    #[test]
    fn periodic_step_respects_cycle_period() {
        let mut k = kernel();
        assert!(k.step(SimTime::from_millis(0)).is_some());
        assert!(k.step(SimTime::from_millis(50)).is_none());
        assert!(k.step(SimTime::from_millis(100)).is_some());
        assert_eq!(k.manager().evaluations(), 2);
        assert_eq!(k.los_trace().len(), 2);
    }

    #[test]
    fn worst_case_reaction_is_cycle_plus_switch_bound() {
        let k = kernel();
        assert_eq!(k.worst_case_reaction(), SimDuration::from_millis(150));
        // And by construction it is below the tightest hazard bound (500 ms).
        assert!(k.worst_case_reaction() <= SimDuration::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "reaction bound")]
    fn kernel_rejects_unsafe_cycle_period() {
        // 480 ms cycle + 50 ms switch bound > 500 ms hazard reaction bound.
        let _ = SafetyKernel::new(design(), SimDuration::from_millis(480));
    }

    #[test]
    fn higher_level_unreachable_if_lower_level_fails() {
        // Even if level 2's own rules hold, a violated level 1 blocks it.
        let mut k = kernel();
        let now = SimTime::from_millis(100);
        // v2v unhealthy breaks level 1's rule (shared with level 2's R2).
        k.info_mut().update_health("v2v", false, now);
        k.info_mut().update_data("remote-headway", 1.0, Validity::FULL, now);
        let d = k.run_cycle(now);
        assert_eq!(d.selected, LevelOfService::NON_COOPERATIVE);
        assert_eq!(d.violations[0].0, LevelOfService(1));
    }
}

//! Nominal system components and the hybridization line.
//!
//! "We draw an 'hybridization line' to clearly separate the components that
//! behave in a predictable way and for which it will be possible to validate
//! safety properties in design time, from the components that might be
//! affected by run-time uncertainties" (paper §III, Fig. 1).

use std::collections::BTreeMap;

/// Which side of the hybridization line a component lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Below the line: predictable behaviour, all bounds proved in design
    /// time (e.g. local sensors, actuators, the safety kernel itself).
    Predictable,
    /// Above the line: possibly affected by run-time uncertainty (e.g.
    /// wireless communication, complex perception components).
    Uncertain,
}

/// The role a component plays in the sense–compute–communicate–actuate chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentKind {
    /// A sensing component.
    Sensor,
    /// A computing/control component.
    Computing,
    /// A communication component.
    Communication,
    /// An actuating component (always below the line; assumed not to fail).
    Actuator,
}

/// A registered nominal system component.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// The component's name.
    pub name: String,
    /// Its role.
    pub kind: ComponentKind,
    /// Its side of the hybridization line.
    pub placement: Placement,
}

/// The registry of nominal system components of one vehicle.
#[derive(Debug, Clone, Default)]
pub struct ComponentRegistry {
    components: BTreeMap<String, Component>,
}

impl ComponentRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a component.
    ///
    /// # Panics
    /// Panics if an actuator is placed above the hybridization line: the
    /// fault model assumes "actuators … are all below the hybridization
    /// line" and do not fail.
    pub fn register(&mut self, name: &str, kind: ComponentKind, placement: Placement) -> &mut Self {
        assert!(
            !(kind == ComponentKind::Actuator && placement == Placement::Uncertain),
            "actuators must be below the hybridization line"
        );
        self.components
            .insert(name.to_string(), Component { name: name.to_string(), kind, placement });
        self
    }

    /// Looks up a component.
    pub fn get(&self, name: &str) -> Option<&Component> {
        self.components.get(name)
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when no components are registered.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The components on the given side of the hybridization line.
    pub fn with_placement(&self, placement: Placement) -> Vec<&Component> {
        self.components.values().filter(|c| c.placement == placement).collect()
    }

    /// Names of the components above the hybridization line — exactly the
    /// components whose health/validity must be monitored at run time for
    /// any LoS above the non-cooperative one.
    pub fn monitored_components(&self) -> Vec<&str> {
        self.with_placement(Placement::Uncertain).iter().map(|c| c.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_classifies_components() {
        let mut reg = ComponentRegistry::new();
        assert!(reg.is_empty());
        reg.register("radar", ComponentKind::Sensor, Placement::Predictable)
            .register("v2v-radio", ComponentKind::Communication, Placement::Uncertain)
            .register("trajectory-planner", ComponentKind::Computing, Placement::Uncertain)
            .register("brake", ComponentKind::Actuator, Placement::Predictable);
        assert_eq!(reg.len(), 4);
        assert!(!reg.is_empty());
        assert_eq!(reg.get("radar").unwrap().kind, ComponentKind::Sensor);
        assert!(reg.get("missing").is_none());
        assert_eq!(reg.with_placement(Placement::Predictable).len(), 2);
        assert_eq!(reg.monitored_components(), vec!["trajectory-planner", "v2v-radio"]);
    }

    #[test]
    #[should_panic(expected = "below the hybridization line")]
    fn actuators_above_the_line_are_rejected() {
        let mut reg = ComponentRegistry::new();
        reg.register("steering", ComponentKind::Actuator, Placement::Uncertain);
    }

    #[test]
    fn reregistration_replaces() {
        let mut reg = ComponentRegistry::new();
        reg.register("x", ComponentKind::Sensor, Placement::Predictable);
        reg.register("x", ComponentKind::Sensor, Placement::Uncertain);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("x").unwrap().placement, Placement::Uncertain);
    }
}

//! Design Time Safety Information: the per-LoS rule sets produced by the
//! design-time hazard analysis.
//!
//! "The Design Time Safety Information component holds a set of predefined
//! safety rules establishing the conditions for functional safety assurance
//! in each LoS.  A certain functionality will only be safe in a given LoS
//! (excluding the lower one), if the associated set of safety rules is
//! satisfied at run time" (paper §III).

use karyon_sim::SimDuration;

use crate::los::{Asil, HazardAnalysis, LevelOfService};
use crate::rules::SafetyRule;

/// The specification of one Level of Service of one functionality.
#[derive(Debug, Clone)]
pub struct LosSpec {
    /// The level being specified.
    pub level: LevelOfService,
    /// Human-readable description (e.g. `"cooperative ACC, 0.5 s headway"`).
    pub description: String,
    /// The safety rules that must all hold for this level to be safe.
    /// The non-cooperative level conventionally has an empty rule set.
    pub rules: Vec<SafetyRule>,
    /// The integrity level (ASIL) assigned to operating at this LoS.
    pub asil: Asil,
    /// A scalar performance index for reporting (higher = better
    /// performance), e.g. the admissible speed or the inverse time margin.
    pub performance_index: f64,
}

/// The Design Time Safety Information for one functionality.
#[derive(Debug, Clone)]
pub struct DesignTimeSafetyInfo {
    functionality: String,
    levels: Vec<LosSpec>,
    hazards: HazardAnalysis,
    /// Design-time bound on the time needed to switch between any two LoS.
    switch_time_bound: SimDuration,
}

impl DesignTimeSafetyInfo {
    /// Creates the design-time information for a functionality.
    ///
    /// `levels` must be non-empty and contain the non-cooperative level 0;
    /// they are sorted by level.
    ///
    /// # Panics
    /// Panics if `levels` is empty or level 0 is missing or duplicated.
    pub fn new(
        functionality: &str,
        mut levels: Vec<LosSpec>,
        hazards: HazardAnalysis,
        switch_time_bound: SimDuration,
    ) -> Self {
        assert!(!levels.is_empty(), "at least one LoS must be specified");
        levels.sort_by_key(|l| l.level);
        let zero_count =
            levels.iter().filter(|l| l.level == LevelOfService::NON_COOPERATIVE).count();
        assert_eq!(zero_count, 1, "exactly one non-cooperative (level 0) spec is required");
        let mut seen = std::collections::BTreeSet::new();
        for l in &levels {
            assert!(seen.insert(l.level), "duplicate LoS {:?}", l.level);
        }
        DesignTimeSafetyInfo {
            functionality: functionality.to_string(),
            levels,
            hazards,
            switch_time_bound,
        }
    }

    /// Builds a synthetic design of configurable size for kernel-latency
    /// experiments: one fallback level 0 plus `levels` cooperative levels,
    /// each holding `rules_per_level` three-condition rules (minimum
    /// validity, maximum age, component health) over distinct data items, a
    /// single hazard with reaction bound `hazard_bound`, and the given LoS
    /// switch-time bound.
    ///
    /// The rule-set size, the validity threshold and the bounds were
    /// hard-coded in the e14 bench harness; as constructor parameters they
    /// become campaign-sweepable knobs (the `kernel-latency` scenario
    /// family).
    pub fn synthetic(
        functionality: &str,
        levels: u8,
        rules_per_level: usize,
        validity_threshold: f64,
        hazard_bound: SimDuration,
        switch_time_bound: SimDuration,
    ) -> Self {
        use crate::los::Hazard;
        use crate::rules::Condition;
        assert!(levels >= 1, "a synthetic design needs at least one cooperative level");
        let mut hazards = HazardAnalysis::new();
        hazards.add(Hazard::new("H1", "generic hazard", Asil::C, hazard_bound));
        let mut specs = vec![LosSpec {
            level: LevelOfService(0),
            description: "fallback".into(),
            rules: vec![],
            asil: Asil::QM,
            performance_index: 1.0,
        }];
        for level in 1..=levels {
            let rules: Vec<SafetyRule> = (0..rules_per_level)
                .map(|i| {
                    SafetyRule::new(
                        &format!("R{level}-{i}"),
                        Condition::All(vec![
                            Condition::MinValidity {
                                item: format!("item-{i}"),
                                threshold: validity_threshold,
                            },
                            Condition::MaxAge {
                                item: format!("item-{i}"),
                                bound: SimDuration::from_millis(500),
                            },
                            Condition::ComponentHealthy { component: format!("component-{i}") },
                        ]),
                    )
                })
                .collect();
            specs.push(LosSpec {
                level: LevelOfService(level),
                description: format!("level {level}"),
                rules,
                asil: Asil::B,
                performance_index: level as f64 + 1.0,
            });
        }
        DesignTimeSafetyInfo::new(functionality, specs, hazards, switch_time_bound)
    }

    /// The functionality's name.
    pub fn functionality(&self) -> &str {
        &self.functionality
    }

    /// The specifications, ordered from the lowest to the highest level.
    pub fn levels(&self) -> &[LosSpec] {
        &self.levels
    }

    /// The specification of a given level, if defined.
    pub fn spec(&self, level: LevelOfService) -> Option<&LosSpec> {
        self.levels.iter().find(|l| l.level == level)
    }

    /// The highest defined level.
    pub fn highest_level(&self) -> LevelOfService {
        self.levels.last().map(|l| l.level).unwrap_or(LevelOfService::NON_COOPERATIVE)
    }

    /// The design-time hazard analysis.
    pub fn hazards(&self) -> &HazardAnalysis {
        &self.hazards
    }

    /// The design-time bound on LoS switching time.
    pub fn switch_time_bound(&self) -> SimDuration {
        self.switch_time_bound
    }

    /// Checks the fundamental design constraint: the safety-manager cycle
    /// period plus the switch bound must not exceed the tightest hazard
    /// reaction bound (otherwise "arguing about safety" is impossible).
    pub fn reaction_bound_satisfied(&self, manager_cycle: SimDuration) -> bool {
        match self.hazards.tightest_reaction_bound() {
            None => true,
            Some(bound) => manager_cycle + self.switch_time_bound <= bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::los::Hazard;
    use crate::rules::Condition;

    fn spec(level: u8, rules: Vec<SafetyRule>) -> LosSpec {
        LosSpec {
            level: LevelOfService(level),
            description: format!("level {level}"),
            rules,
            asil: Asil::B,
            performance_index: level as f64,
        }
    }

    fn sample() -> DesignTimeSafetyInfo {
        let mut hazards = HazardAnalysis::new();
        hazards.add(Hazard::new("H1", "collision", Asil::C, SimDuration::from_millis(500)));
        DesignTimeSafetyInfo::new(
            "acc",
            vec![
                spec(
                    2,
                    vec![SafetyRule::new(
                        "R2",
                        Condition::ComponentHealthy { component: "v2v".into() },
                    )],
                ),
                spec(0, vec![]),
                spec(
                    1,
                    vec![SafetyRule::new(
                        "R1",
                        Condition::ComponentHealthy { component: "radar".into() },
                    )],
                ),
            ],
            hazards,
            SimDuration::from_millis(100),
        )
    }

    #[test]
    fn levels_are_sorted_and_accessible() {
        let d = sample();
        assert_eq!(d.functionality(), "acc");
        let order: Vec<u8> = d.levels().iter().map(|l| l.level.0).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(d.highest_level(), LevelOfService(2));
        assert!(d.spec(LevelOfService(1)).is_some());
        assert!(d.spec(LevelOfService(7)).is_none());
        assert_eq!(d.switch_time_bound(), SimDuration::from_millis(100));
        assert_eq!(d.hazards().hazards().len(), 1);
    }

    #[test]
    fn reaction_bound_check() {
        let d = sample();
        // 100 ms cycle + 100 ms switch <= 500 ms reaction bound.
        assert!(d.reaction_bound_satisfied(SimDuration::from_millis(100)));
        // 450 ms cycle + 100 ms switch > 500 ms.
        assert!(!d.reaction_bound_satisfied(SimDuration::from_millis(450)));
    }

    #[test]
    #[should_panic(expected = "non-cooperative")]
    fn missing_level_zero_is_rejected() {
        let _ = DesignTimeSafetyInfo::new(
            "f",
            vec![spec(1, vec![])],
            HazardAnalysis::new(),
            SimDuration::from_millis(10),
        );
    }

    #[test]
    #[should_panic(expected = "at least one LoS")]
    fn empty_levels_are_rejected() {
        let _ = DesignTimeSafetyInfo::new(
            "f",
            vec![],
            HazardAnalysis::new(),
            SimDuration::from_millis(10),
        );
    }

    #[test]
    #[should_panic(expected = "duplicate LoS")]
    fn duplicate_levels_are_rejected() {
        let _ = DesignTimeSafetyInfo::new(
            "f",
            vec![spec(0, vec![]), spec(1, vec![]), spec(1, vec![])],
            HazardAnalysis::new(),
            SimDuration::from_millis(10),
        );
    }
}

//! # karyon-core — the KARYON safety kernel (paper §III, §V-C)
//!
//! KARYON "proposes a safety architecture that exploits the concept of
//! architectural hybridization to define systems in which a small local
//! safety kernel can be built for guaranteeing functional safety along a set
//! of safety rules."  This crate is that kernel:
//!
//! * [`los`] — Levels of Service, ASIL grades and the design-time hazard
//!   analysis,
//! * [`rules`] — safety rules: conditions over validity, freshness, values
//!   and component health,
//! * [`design_time`] — the Design Time Safety Information: per-LoS rule sets
//!   and the bounded switch time,
//! * [`runtime`] — the Run Time Safety Information store and the lease-based
//!   timing failure detector,
//! * [`manager`] — the Safety Manager evaluation cycle and the Safety Kernel
//!   (periodic execution, LoS switching, bounded-reaction accounting),
//! * [`component`] — the nominal-component registry and the hybridization
//!   line,
//! * [`cooperation`] — cooperation-state assessment: group views and
//!   bounded-round manoeuvre agreement,
//! * [`virtual_node`] — virtual stationary automata (region-bound replicated
//!   state machines), the substrate of the virtual traffic light,
//! * [`environment`] — the run-time environment model and hidden channels:
//!   relating networked announcements to locally observed physics, so unsafe
//!   states are detectable even when the network is down (§II-B).
//!
//! ## Quick tour
//!
//! Levels of Service order the system's operating modes: level 0 is the
//! always-safe non-cooperative mode the kernel can fall back to without any
//! external component:
//!
//! ```
//! use karyon_core::LevelOfService;
//!
//! let cooperative = LevelOfService(2);
//! assert!(!cooperative.is_non_cooperative());
//! let degraded = cooperative.lower();
//! assert_eq!(degraded, LevelOfService(1));
//! assert_eq!(
//!     LevelOfService::NON_COOPERATIVE.lower(),
//!     LevelOfService::NON_COOPERATIVE,
//!     "level 0 is the floor — degradation saturates there"
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod component;
pub mod cooperation;
pub mod design_time;
pub mod environment;
pub mod los;
pub mod manager;
pub mod rules;
pub mod runtime;
pub mod virtual_node;

pub use component::{Component, ComponentKind, ComponentRegistry, Placement};
pub use cooperation::{
    AgreementMessage, AgreementProtocol, CooperationView, ProposalState, StateAnnouncement,
    VehicleId,
};
pub use design_time::{DesignTimeSafetyInfo, LosSpec};
pub use environment::{
    AnnouncedBehaviour, EntityAssessment, EnvironmentModel, EnvironmentModelConfig,
    ObservedKinematics,
};
pub use los::{Asil, Hazard, HazardAnalysis, LevelOfService};
pub use manager::{LosDecision, SafetyKernel, SafetyManager, SwitchEvent};
pub use rules::{Condition, SafetyRule};
pub use runtime::{DataItem, HealthReport, RunTimeSafetyInfo, TimingFailureDetector};
pub use virtual_node::{Region, Replica, ReplicatedMachine, StateSnapshot, VirtualNode};

//! Reliable assessment of the cooperation state (paper §V-C).
//!
//! "Solutions for reliable cooperation between mobile nodes should have a
//! consistent view about the operational state of cooperating entities and
//! their intentions."  This module provides the two building blocks the
//! vehicles use:
//!
//! * a **cooperation group view** built from periodic state announcements
//!   (who is participating, what they intend, how fresh their state is), and
//! * a bounded-round **manoeuvre agreement** protocol (after Le Lann's
//!   cohort/group primitives): an initiator proposes a manoeuvre, every
//!   required participant must acknowledge within a deadline, otherwise the
//!   manoeuvre is aborted — guaranteeing that a manoeuvre is only executed
//!   when all involved vehicles have consistently agreed to it.
//!
//! The protocol is expressed as a message-in/message-out state machine so it
//! can be carried over any transport (the middleware event channels in the
//! use cases, plain broadcast frames in the unit tests).

use std::collections::{BTreeMap, BTreeSet};

use karyon_sim::{SimDuration, SimTime};

/// Identifier of a cooperating vehicle (matches the network node id).
pub type VehicleId = u32;

/// A periodic cooperation-state announcement from one vehicle.
#[derive(Debug, Clone, PartialEq)]
pub struct StateAnnouncement {
    /// The announcing vehicle.
    pub vehicle: VehicleId,
    /// Its current intention (free-form label, e.g. `"lane-keep"`).
    pub intention: String,
    /// The announcement's timestamp at the sender.
    pub timestamp: SimTime,
}

/// The local view of the cooperation group.
#[derive(Debug, Clone)]
pub struct CooperationView {
    own_id: VehicleId,
    freshness_bound: SimDuration,
    members: BTreeMap<VehicleId, StateAnnouncement>,
}

impl CooperationView {
    /// Creates a view for the given vehicle; members are dropped when their
    /// last announcement is older than `freshness_bound`.
    pub fn new(own_id: VehicleId, freshness_bound: SimDuration) -> Self {
        CooperationView { own_id, freshness_bound, members: BTreeMap::new() }
    }

    /// The owning vehicle's identifier.
    pub fn own_id(&self) -> VehicleId {
        self.own_id
    }

    /// Records an announcement from another vehicle.
    pub fn on_announcement(&mut self, announcement: StateAnnouncement) {
        if announcement.vehicle == self.own_id {
            return;
        }
        let entry = self.members.entry(announcement.vehicle);
        match entry {
            std::collections::btree_map::Entry::Occupied(mut o) => {
                if announcement.timestamp >= o.get().timestamp {
                    o.insert(announcement);
                }
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(announcement);
            }
        }
    }

    /// The vehicles whose state is fresh at `now` (the consistent scope for
    /// cooperative functionality).
    pub fn fresh_members(&self, now: SimTime) -> Vec<VehicleId> {
        self.members
            .values()
            .filter(|a| now.since(a.timestamp) <= self.freshness_bound)
            .map(|a| a.vehicle)
            .collect()
    }

    /// The last known intention of a member, if fresh at `now`.
    pub fn intention_of(&self, vehicle: VehicleId, now: SimTime) -> Option<&str> {
        self.members
            .get(&vehicle)
            .filter(|a| now.since(a.timestamp) <= self.freshness_bound)
            .map(|a| a.intention.as_str())
    }

    /// Number of known (fresh or stale) members.
    pub fn known_members(&self) -> usize {
        self.members.len()
    }
}

/// Messages exchanged by the manoeuvre-agreement protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum AgreementMessage {
    /// The initiator proposes a manoeuvre to a set of participants.
    Propose {
        /// Proposal identifier (unique per initiator).
        proposal: u64,
        /// The initiating vehicle.
        initiator: VehicleId,
        /// The manoeuvre description, e.g. `"lane-change-left"`.
        manoeuvre: String,
        /// The participants whose acknowledgement is required.
        participants: Vec<VehicleId>,
        /// The deadline by which all acknowledgements must have arrived.
        deadline: SimTime,
    },
    /// A participant acknowledges (accepts) the proposal.
    Accept {
        /// The proposal being acknowledged.
        proposal: u64,
        /// The acknowledging participant.
        participant: VehicleId,
    },
    /// A participant rejects the proposal (e.g. it conflicts with its own).
    Reject {
        /// The proposal being rejected.
        proposal: u64,
        /// The rejecting participant.
        participant: VehicleId,
    },
    /// The initiator announces the outcome to everyone.
    Outcome {
        /// The proposal the outcome refers to.
        proposal: u64,
        /// Whether the manoeuvre was agreed.
        agreed: bool,
    },
}

/// The state of one proposal at the initiator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProposalState {
    /// Waiting for acknowledgements.
    Pending,
    /// Every participant accepted before the deadline.
    Agreed,
    /// Rejected or timed out.
    Aborted,
}

#[derive(Debug, Clone)]
struct PendingProposal {
    participants: BTreeSet<VehicleId>,
    accepted: BTreeSet<VehicleId>,
    deadline: SimTime,
    state: ProposalState,
}

/// The manoeuvre-agreement protocol endpoint of one vehicle.
#[derive(Debug, Clone)]
pub struct AgreementProtocol {
    own_id: VehicleId,
    next_proposal: u64,
    /// Proposals this vehicle initiated.
    initiated: BTreeMap<u64, PendingProposal>,
    /// Proposals this vehicle accepted and is currently bound by
    /// (proposal id → manoeuvre).  Used to refuse conflicting proposals.
    committed: BTreeMap<u64, String>,
}

impl AgreementProtocol {
    /// Creates the protocol endpoint for a vehicle.
    pub fn new(own_id: VehicleId) -> Self {
        AgreementProtocol {
            own_id,
            next_proposal: 0,
            initiated: BTreeMap::new(),
            committed: BTreeMap::new(),
        }
    }

    /// The vehicle's identifier.
    pub fn own_id(&self) -> VehicleId {
        self.own_id
    }

    /// Initiates a proposal; returns the message to broadcast and the
    /// proposal id.
    pub fn propose(
        &mut self,
        manoeuvre: &str,
        participants: &[VehicleId],
        now: SimTime,
        timeout: SimDuration,
    ) -> (AgreementMessage, u64) {
        let proposal = self.next_proposal + self.own_id as u64 * 1_000_000;
        self.next_proposal += 1;
        let deadline = now + timeout;
        let participant_set: BTreeSet<VehicleId> =
            participants.iter().copied().filter(|p| *p != self.own_id).collect();
        let state =
            if participant_set.is_empty() { ProposalState::Agreed } else { ProposalState::Pending };
        self.initiated.insert(
            proposal,
            PendingProposal {
                participants: participant_set.clone(),
                accepted: BTreeSet::new(),
                deadline,
                state,
            },
        );
        (
            AgreementMessage::Propose {
                proposal,
                initiator: self.own_id,
                manoeuvre: manoeuvre.to_string(),
                participants: participant_set.into_iter().collect(),
                deadline,
            },
            proposal,
        )
    }

    /// The state of a proposal this vehicle initiated.
    pub fn proposal_state(&self, proposal: u64) -> Option<ProposalState> {
        self.initiated.get(&proposal).map(|p| p.state)
    }

    /// The manoeuvres this vehicle is currently committed to (accepted and
    /// not yet resolved).
    pub fn commitments(&self) -> Vec<&str> {
        self.committed.values().map(|s| s.as_str()).collect()
    }

    /// Handles an incoming message; returns the messages to send in response.
    pub fn on_message(
        &mut self,
        message: &AgreementMessage,
        now: SimTime,
    ) -> Vec<AgreementMessage> {
        match message {
            AgreementMessage::Propose {
                proposal,
                initiator,
                manoeuvre,
                participants,
                deadline,
            } => {
                if *initiator == self.own_id || !participants.contains(&self.own_id) {
                    return Vec::new();
                }
                if now > *deadline {
                    return vec![AgreementMessage::Reject {
                        proposal: *proposal,
                        participant: self.own_id,
                    }];
                }
                // Refuse proposals that conflict with an existing commitment
                // to the same kind of manoeuvre (e.g. two simultaneous lane
                // changes in the same region).
                if self.committed.values().any(|m| m == manoeuvre) {
                    return vec![AgreementMessage::Reject {
                        proposal: *proposal,
                        participant: self.own_id,
                    }];
                }
                self.committed.insert(*proposal, manoeuvre.clone());
                vec![AgreementMessage::Accept { proposal: *proposal, participant: self.own_id }]
            }
            AgreementMessage::Accept { proposal, participant } => {
                let mut out = Vec::new();
                if let Some(pending) = self.initiated.get_mut(proposal) {
                    if pending.state == ProposalState::Pending && now <= pending.deadline {
                        pending.accepted.insert(*participant);
                        if pending.accepted.is_superset(&pending.participants) {
                            pending.state = ProposalState::Agreed;
                            out.push(AgreementMessage::Outcome {
                                proposal: *proposal,
                                agreed: true,
                            });
                        }
                    }
                }
                out
            }
            AgreementMessage::Reject { proposal, .. } => {
                let mut out = Vec::new();
                if let Some(pending) = self.initiated.get_mut(proposal) {
                    if pending.state == ProposalState::Pending {
                        pending.state = ProposalState::Aborted;
                        out.push(AgreementMessage::Outcome { proposal: *proposal, agreed: false });
                    }
                }
                out
            }
            AgreementMessage::Outcome { proposal, .. } => {
                // A resolved proposal releases the participant's commitment.
                self.committed.remove(proposal);
                Vec::new()
            }
        }
    }

    /// Advances time: proposals whose deadline passed without full agreement
    /// are aborted.  Returns the outcome announcements to broadcast.
    pub fn tick(&mut self, now: SimTime) -> Vec<AgreementMessage> {
        let mut out = Vec::new();
        for (id, pending) in self.initiated.iter_mut() {
            if pending.state == ProposalState::Pending && now > pending.deadline {
                pending.state = ProposalState::Aborted;
                out.push(AgreementMessage::Outcome { proposal: *id, agreed: false });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn view_tracks_fresh_members() {
        let mut view = CooperationView::new(1, SimDuration::from_millis(500));
        assert_eq!(view.own_id(), 1);
        view.on_announcement(StateAnnouncement {
            vehicle: 2,
            intention: "lane-keep".into(),
            timestamp: ts(100),
        });
        view.on_announcement(StateAnnouncement {
            vehicle: 3,
            intention: "lane-change".into(),
            timestamp: ts(300),
        });
        view.on_announcement(StateAnnouncement {
            vehicle: 1,
            intention: "self".into(),
            timestamp: ts(300),
        });
        assert_eq!(view.known_members(), 2);
        assert_eq!(view.fresh_members(ts(400)), vec![2, 3]);
        assert_eq!(view.fresh_members(ts(700)), vec![3]);
        assert_eq!(view.intention_of(3, ts(400)), Some("lane-change"));
        assert_eq!(view.intention_of(2, ts(700)), None);
        // Stale announcements do not overwrite newer ones.
        view.on_announcement(StateAnnouncement {
            vehicle: 3,
            intention: "old".into(),
            timestamp: ts(200),
        });
        assert_eq!(view.intention_of(3, ts(400)), Some("lane-change"));
    }

    #[test]
    fn all_participants_accepting_reaches_agreement() {
        let mut initiator = AgreementProtocol::new(1);
        let mut p2 = AgreementProtocol::new(2);
        let mut p3 = AgreementProtocol::new(3);
        let (proposal_msg, id) =
            initiator.propose("lane-change-left", &[2, 3], ts(0), SimDuration::from_millis(200));
        assert_eq!(initiator.proposal_state(id), Some(ProposalState::Pending));
        let r2 = p2.on_message(&proposal_msg, ts(10));
        let r3 = p3.on_message(&proposal_msg, ts(12));
        assert_eq!(r2.len(), 1);
        assert!(matches!(r2[0], AgreementMessage::Accept { participant: 2, .. }));
        assert_eq!(p2.commitments(), vec!["lane-change-left"]);
        let out1 = initiator.on_message(&r2[0], ts(20));
        assert!(out1.is_empty(), "agreement needs every participant");
        let out2 = initiator.on_message(&r3[0], ts(25));
        assert_eq!(out2.len(), 1);
        assert!(matches!(out2[0], AgreementMessage::Outcome { agreed: true, .. }));
        assert_eq!(initiator.proposal_state(id), Some(ProposalState::Agreed));
        // The outcome releases the participants' commitments.
        p2.on_message(&out2[0], ts(30));
        assert!(p2.commitments().is_empty());
    }

    #[test]
    fn rejection_aborts_the_manoeuvre() {
        let mut initiator = AgreementProtocol::new(1);
        let mut busy = AgreementProtocol::new(2);
        // Vehicle 2 is already committed to a lane change from vehicle 9.
        let (other_proposal, _) = AgreementProtocol::new(9).propose(
            "lane-change-left",
            &[2],
            ts(0),
            SimDuration::from_millis(500),
        );
        busy.on_message(&other_proposal, ts(1));
        let (msg, id) =
            initiator.propose("lane-change-left", &[2], ts(10), SimDuration::from_millis(200));
        let response = busy.on_message(&msg, ts(20));
        assert!(matches!(response[0], AgreementMessage::Reject { .. }));
        let out = initiator.on_message(&response[0], ts(30));
        assert!(matches!(out[0], AgreementMessage::Outcome { agreed: false, .. }));
        assert_eq!(initiator.proposal_state(id), Some(ProposalState::Aborted));
    }

    #[test]
    fn timeout_aborts_pending_proposals() {
        let mut initiator = AgreementProtocol::new(1);
        let (_, id) = initiator.propose("merge", &[2, 3], ts(0), SimDuration::from_millis(100));
        assert!(initiator.tick(ts(50)).is_empty());
        let out = initiator.tick(ts(150));
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], AgreementMessage::Outcome { agreed: false, .. }));
        assert_eq!(initiator.proposal_state(id), Some(ProposalState::Aborted));
        // Late accepts are ignored.
        let late = AgreementMessage::Accept { proposal: id, participant: 2 };
        assert!(initiator.on_message(&late, ts(200)).is_empty());
        assert_eq!(initiator.proposal_state(id), Some(ProposalState::Aborted));
    }

    #[test]
    fn proposal_with_no_other_participants_is_immediately_agreed() {
        let mut solo = AgreementProtocol::new(5);
        let (_, id) = solo.propose("merge", &[5], ts(0), SimDuration::from_millis(100));
        assert_eq!(solo.proposal_state(id), Some(ProposalState::Agreed));
    }

    #[test]
    fn late_proposals_are_rejected_by_participants() {
        let mut p = AgreementProtocol::new(2);
        let msg = AgreementMessage::Propose {
            proposal: 7,
            initiator: 1,
            manoeuvre: "merge".into(),
            participants: vec![2],
            deadline: ts(100),
        };
        let out = p.on_message(&msg, ts(200));
        assert!(matches!(out[0], AgreementMessage::Reject { .. }));
        // Proposals not addressed to us are ignored.
        let not_for_us = AgreementMessage::Propose {
            proposal: 8,
            initiator: 1,
            manoeuvre: "merge".into(),
            participants: vec![3],
            deadline: ts(400),
        };
        assert!(p.on_message(&not_for_us, ts(300)).is_empty());
    }
}

//! Virtual stationary automata / mobile virtual nodes (paper §V-C, after
//! Dolev, Gilbert, Lahiani, Lynch and Nolte).
//!
//! "One of these approaches is based on virtual nodes that maintain shared
//! finite state machines that tile the plane.  These state machines can
//! monitor the activity in a given region, such as intersections, or a
//! cluster of vehicles that cruise on the highway."
//!
//! A [`VirtualNode`] is a replicated state machine bound to a geographic
//! region.  Every vehicle currently inside the region keeps a replica; the
//! replica with the smallest vehicle identifier acts as leader, executes the
//! operations submitted by the region's clients and disseminates the new
//! state with a monotonically increasing version.  When the leader leaves
//! the region (or fails), the next smallest id takes over from the freshest
//! state it has seen — the virtual node survives as long as the region is
//! populated.  The virtual traffic light of use case A2 is built on exactly
//! this abstraction.

use std::collections::BTreeMap;

use karyon_sim::{SimTime, Vec2};

/// A geographic region that hosts a virtual node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    /// Centre of the region.
    pub center: Vec2,
    /// Radius of the region in metres.
    pub radius: f64,
}

impl Region {
    /// Creates a region.
    pub fn new(center: Vec2, radius: f64) -> Self {
        Region { center, radius: radius.max(0.0) }
    }

    /// True when `position` lies inside the region.
    pub fn contains(&self, position: Vec2) -> bool {
        self.center.distance(position) <= self.radius
    }
}

/// A state machine replicated by a virtual node.
pub trait ReplicatedMachine: Clone {
    /// The operations clients may submit.
    type Op: Clone;

    /// Applies one operation to the state.
    fn apply(&mut self, op: &Self::Op, now: SimTime);
}

/// A versioned snapshot of the replicated state, as disseminated by the
/// leader.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSnapshot<S> {
    /// Monotonically increasing version.
    pub version: u64,
    /// The state at that version.
    pub state: S,
}

/// The local replica of a virtual node held by one vehicle.
#[derive(Debug, Clone)]
pub struct Replica<S: ReplicatedMachine> {
    vehicle: u32,
    snapshot: StateSnapshot<S>,
}

impl<S: ReplicatedMachine> Replica<S> {
    /// Creates a replica with the initial state at version 0.
    pub fn new(vehicle: u32, initial: S) -> Self {
        Replica { vehicle, snapshot: StateSnapshot { version: 0, state: initial } }
    }

    /// The owning vehicle's identifier.
    pub fn vehicle(&self) -> u32 {
        self.vehicle
    }

    /// The replica's current snapshot.
    pub fn snapshot(&self) -> &StateSnapshot<S> {
        &self.snapshot
    }

    /// Adopts a disseminated snapshot if it is newer than the local one.
    pub fn adopt(&mut self, snapshot: &StateSnapshot<S>) {
        if snapshot.version > self.snapshot.version {
            self.snapshot = snapshot.clone();
        }
    }
}

/// The virtual node: region, replicas and leader-driven execution.
#[derive(Debug, Clone)]
pub struct VirtualNode<S: ReplicatedMachine> {
    region: Region,
    initial: S,
    replicas: BTreeMap<u32, Replica<S>>,
    operations_applied: u64,
    leader_changes: u64,
    last_leader: Option<u32>,
}

impl<S: ReplicatedMachine> VirtualNode<S> {
    /// Creates a virtual node for a region with the given initial state.
    pub fn new(region: Region, initial: S) -> Self {
        VirtualNode {
            region,
            initial,
            replicas: BTreeMap::new(),
            operations_applied: 0,
            leader_changes: 0,
            last_leader: None,
        }
    }

    /// The hosting region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Number of operations executed since creation.
    pub fn operations_applied(&self) -> u64 {
        self.operations_applied
    }

    /// Number of leader handovers observed.
    pub fn leader_changes(&self) -> u64 {
        self.leader_changes
    }

    /// Updates which vehicles are inside the region.  Vehicles entering get a
    /// replica initialized from the freshest state currently known (or the
    /// initial state if the region was empty — the "reset" case of a
    /// depopulated virtual node); vehicles leaving drop their replica.
    pub fn update_population(&mut self, vehicles: &[(u32, Vec2)]) {
        let inside: Vec<u32> = vehicles
            .iter()
            .filter(|(_, pos)| self.region.contains(*pos))
            .map(|(id, _)| *id)
            .collect();
        // Drop replicas of vehicles that left.
        let to_remove: Vec<u32> =
            self.replicas.keys().copied().filter(|id| !inside.contains(id)).collect();
        for id in to_remove {
            self.replicas.remove(&id);
        }
        // The freshest known snapshot seeds new arrivals.
        let freshest = self
            .replicas
            .values()
            .max_by_key(|r| r.snapshot.version)
            .map(|r| r.snapshot.clone())
            .unwrap_or(StateSnapshot { version: 0, state: self.initial.clone() });
        for id in inside {
            self.replicas.entry(id).or_insert_with(|| {
                let mut r = Replica::new(id, self.initial.clone());
                r.adopt(&freshest);
                r
            });
        }
        // Track leader changes.
        let leader = self.leader();
        if leader != self.last_leader && leader.is_some() {
            if self.last_leader.is_some() {
                self.leader_changes += 1;
            }
            self.last_leader = leader;
        } else if leader.is_none() {
            self.last_leader = None;
        }
    }

    /// The current leader (smallest vehicle id inside the region), if any.
    pub fn leader(&self) -> Option<u32> {
        self.replicas.keys().next().copied()
    }

    /// True when no vehicle currently hosts the virtual node.
    pub fn is_depopulated(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Number of replicas currently maintained.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The state as seen by the leader (the authoritative state), if any.
    pub fn state(&self) -> Option<&S> {
        self.leader().and_then(|l| self.replicas.get(&l)).map(|r| &r.snapshot.state)
    }

    /// A specific vehicle's replica state, if it hosts one.
    pub fn replica_state(&self, vehicle: u32) -> Option<&S> {
        self.replicas.get(&vehicle).map(|r| &r.snapshot.state)
    }

    /// Submits an operation: the leader applies it, bumps the version and the
    /// new snapshot is disseminated to all replicas.  Returns `false` when
    /// the region is depopulated (no leader to execute the operation).
    pub fn submit(&mut self, op: &S::Op, now: SimTime) -> bool {
        let Some(leader_id) = self.leader() else {
            return false;
        };
        let snapshot = {
            let leader = self.replicas.get_mut(&leader_id).expect("leader replica exists");
            leader.snapshot.state.apply(op, now);
            leader.snapshot.version += 1;
            leader.snapshot.clone()
        };
        for replica in self.replicas.values_mut() {
            replica.adopt(&snapshot);
        }
        self.operations_applied += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A simple occupancy counter used as the replicated machine in tests.
    #[derive(Debug, Clone, PartialEq, Default)]
    struct Counter {
        value: i64,
    }

    #[derive(Debug, Clone, Copy)]
    enum CounterOp {
        Add(i64),
    }

    impl ReplicatedMachine for Counter {
        type Op = CounterOp;
        fn apply(&mut self, op: &CounterOp, _now: SimTime) {
            match op {
                CounterOp::Add(delta) => self.value += delta,
            }
        }
    }

    fn vn() -> VirtualNode<Counter> {
        VirtualNode::new(Region::new(Vec2::new(0.0, 0.0), 50.0), Counter::default())
    }

    #[test]
    fn region_containment() {
        let r = Region::new(Vec2::new(10.0, 0.0), 5.0);
        assert!(r.contains(Vec2::new(12.0, 3.0)));
        assert!(!r.contains(Vec2::new(20.0, 0.0)));
        assert_eq!(Region::new(Vec2::ZERO, -3.0).radius, 0.0);
    }

    #[test]
    fn leader_is_smallest_id_inside_region() {
        let mut node = vn();
        assert!(node.is_depopulated());
        assert!(node.leader().is_none());
        node.update_population(&[
            (5, Vec2::new(0.0, 0.0)),
            (3, Vec2::new(10.0, 0.0)),
            (9, Vec2::new(100.0, 0.0)),
        ]);
        assert_eq!(node.replica_count(), 2);
        assert_eq!(node.leader(), Some(3));
        assert!(!node.is_depopulated());
    }

    #[test]
    fn operations_replicate_to_all_members() {
        let mut node = vn();
        node.update_population(&[(1, Vec2::ZERO), (2, Vec2::new(5.0, 5.0))]);
        assert!(node.submit(&CounterOp::Add(3), SimTime::ZERO));
        assert!(node.submit(&CounterOp::Add(4), SimTime::ZERO));
        assert_eq!(node.state().unwrap().value, 7);
        assert_eq!(node.replica_state(2).unwrap().value, 7);
        assert_eq!(node.operations_applied(), 2);
    }

    #[test]
    fn leader_handover_preserves_state() {
        let mut node = vn();
        node.update_population(&[(1, Vec2::ZERO), (2, Vec2::new(5.0, 0.0))]);
        node.submit(&CounterOp::Add(10), SimTime::ZERO);
        assert_eq!(node.leader(), Some(1));
        // Vehicle 1 leaves the region; vehicle 2 takes over with the state intact.
        node.update_population(&[(1, Vec2::new(500.0, 0.0)), (2, Vec2::new(5.0, 0.0))]);
        assert_eq!(node.leader(), Some(2));
        assert_eq!(node.state().unwrap().value, 10);
        assert_eq!(node.leader_changes(), 1);
        // A newcomer adopts the surviving state.
        node.update_population(&[(2, Vec2::new(5.0, 0.0)), (7, Vec2::new(1.0, 1.0))]);
        assert_eq!(node.replica_state(7).unwrap().value, 10);
    }

    #[test]
    fn depopulated_region_resets_state() {
        let mut node = vn();
        node.update_population(&[(1, Vec2::ZERO)]);
        node.submit(&CounterOp::Add(5), SimTime::ZERO);
        // Everyone leaves: the virtual node disappears...
        node.update_population(&[(1, Vec2::new(999.0, 0.0))]);
        assert!(node.is_depopulated());
        assert!(!node.submit(&CounterOp::Add(1), SimTime::ZERO));
        // ...and a later arrival restarts from the initial state.
        node.update_population(&[(4, Vec2::ZERO)]);
        assert_eq!(node.state().unwrap().value, 0);
    }
}

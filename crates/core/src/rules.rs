//! Safety rules: the design-time conditions that must hold at run time for a
//! Level of Service to be functionally safe.
//!
//! "These safety rules express the needed validity of (sensor) data and
//! integrity of components (e.g., timeliness requirements)" (paper §III).

use karyon_sim::SimDuration;

use crate::runtime::RunTimeSafetyInfo;

/// A condition over the run-time safety information.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// The named data item must exist and have at least this validity
    /// (fraction in `[0, 1]`).
    MinValidity {
        /// Data-item name (e.g. `"front-range"`).
        item: String,
        /// Required validity fraction.
        threshold: f64,
    },
    /// The named data item must be fresher than the bound.
    MaxAge {
        /// Data-item name.
        item: String,
        /// Maximum acceptable age.
        bound: SimDuration,
    },
    /// The named data item's value must not exceed the bound.
    MaxValue {
        /// Data-item name.
        item: String,
        /// Maximum acceptable value.
        bound: f64,
    },
    /// The named data item's value must be at least the bound.
    MinValue {
        /// Data-item name.
        item: String,
        /// Minimum acceptable value.
        bound: f64,
    },
    /// The named component must currently be reported healthy.
    ComponentHealthy {
        /// Component name (e.g. `"v2v-radio"`).
        component: String,
    },
    /// All of the sub-conditions must hold.
    All(Vec<Condition>),
    /// At least one of the sub-conditions must hold.
    Any(Vec<Condition>),
}

impl Condition {
    /// Evaluates the condition against the run-time safety information.
    pub fn holds(&self, info: &RunTimeSafetyInfo) -> bool {
        match self {
            Condition::MinValidity { item, threshold } => {
                info.data(item).map(|d| d.validity.fraction() >= *threshold).unwrap_or(false)
            }
            Condition::MaxAge { item, bound } => {
                info.data(item).map(|d| info.now().since(d.timestamp) <= *bound).unwrap_or(false)
            }
            Condition::MaxValue { item, bound } => {
                info.data(item).map(|d| d.value <= *bound).unwrap_or(false)
            }
            Condition::MinValue { item, bound } => {
                info.data(item).map(|d| d.value >= *bound).unwrap_or(false)
            }
            Condition::ComponentHealthy { component } => info.is_healthy(component),
            Condition::All(subs) => subs.iter().all(|c| c.holds(info)),
            Condition::Any(subs) => subs.iter().any(|c| c.holds(info)),
        }
    }

    /// A short description of the first sub-condition that fails, if any.
    pub fn first_violation(&self, info: &RunTimeSafetyInfo) -> Option<String> {
        match self {
            Condition::All(subs) => subs.iter().find_map(|c| c.first_violation(info)),
            Condition::Any(subs) => {
                if subs.iter().any(|c| c.holds(info)) {
                    None
                } else {
                    Some(format!("none of {} alternatives hold", subs.len()))
                }
            }
            other => {
                if other.holds(info) {
                    None
                } else {
                    Some(other.describe())
                }
            }
        }
    }

    /// A human-readable description of the condition.
    pub fn describe(&self) -> String {
        match self {
            Condition::MinValidity { item, threshold } => {
                format!("validity({item}) >= {:.0}%", threshold * 100.0)
            }
            Condition::MaxAge { item, bound } => format!("age({item}) <= {bound}"),
            Condition::MaxValue { item, bound } => format!("{item} <= {bound}"),
            Condition::MinValue { item, bound } => format!("{item} >= {bound}"),
            Condition::ComponentHealthy { component } => format!("healthy({component})"),
            Condition::All(subs) => format!("all of {} conditions", subs.len()),
            Condition::Any(subs) => format!("any of {} conditions", subs.len()),
        }
    }
}

/// A named safety rule: a condition plus bookkeeping metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SafetyRule {
    /// Stable identifier, e.g. `"R3-v2v-freshness"`.
    pub id: String,
    /// The condition that must hold.
    pub condition: Condition,
}

impl SafetyRule {
    /// Creates a rule.
    pub fn new(id: &str, condition: Condition) -> Self {
        SafetyRule { id: id.to_string(), condition }
    }

    /// Evaluates the rule.
    pub fn holds(&self, info: &RunTimeSafetyInfo) -> bool {
        self.condition.holds(info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RunTimeSafetyInfo;
    use karyon_sensors::Validity;
    use karyon_sim::SimTime;

    fn info() -> RunTimeSafetyInfo {
        let mut info = RunTimeSafetyInfo::new();
        info.set_now(SimTime::from_millis(1_000));
        info.update_data("front-range", 35.0, Validity::new(0.9), SimTime::from_millis(950));
        info.update_data("v2v-headway", 1.2, Validity::new(0.4), SimTime::from_millis(400));
        info.update_health("v2v-radio", true, SimTime::from_millis(990));
        info.update_health("lidar", false, SimTime::from_millis(990));
        info
    }

    #[test]
    fn validity_and_age_conditions() {
        let info = info();
        assert!(Condition::MinValidity { item: "front-range".into(), threshold: 0.8 }.holds(&info));
        assert!(!Condition::MinValidity { item: "v2v-headway".into(), threshold: 0.8 }.holds(&info));
        assert!(!Condition::MinValidity { item: "missing".into(), threshold: 0.1 }.holds(&info));
        assert!(Condition::MaxAge {
            item: "front-range".into(),
            bound: SimDuration::from_millis(100)
        }
        .holds(&info));
        assert!(!Condition::MaxAge {
            item: "v2v-headway".into(),
            bound: SimDuration::from_millis(100)
        }
        .holds(&info));
    }

    #[test]
    fn value_and_health_conditions() {
        let info = info();
        assert!(Condition::MaxValue { item: "front-range".into(), bound: 50.0 }.holds(&info));
        assert!(!Condition::MaxValue { item: "front-range".into(), bound: 10.0 }.holds(&info));
        assert!(Condition::MinValue { item: "v2v-headway".into(), bound: 1.0 }.holds(&info));
        assert!(!Condition::MinValue { item: "v2v-headway".into(), bound: 2.0 }.holds(&info));
        assert!(Condition::ComponentHealthy { component: "v2v-radio".into() }.holds(&info));
        assert!(!Condition::ComponentHealthy { component: "lidar".into() }.holds(&info));
        assert!(!Condition::ComponentHealthy { component: "unknown".into() }.holds(&info));
    }

    #[test]
    fn composite_conditions() {
        let info = info();
        let all = Condition::All(vec![
            Condition::ComponentHealthy { component: "v2v-radio".into() },
            Condition::MinValidity { item: "front-range".into(), threshold: 0.5 },
        ]);
        assert!(all.holds(&info));
        let broken = Condition::All(vec![
            all.clone(),
            Condition::ComponentHealthy { component: "lidar".into() },
        ]);
        assert!(!broken.holds(&info));
        assert!(broken.first_violation(&info).unwrap().contains("lidar"));
        let any = Condition::Any(vec![
            Condition::ComponentHealthy { component: "lidar".into() },
            Condition::ComponentHealthy { component: "v2v-radio".into() },
        ]);
        assert!(any.holds(&info));
        assert!(any.first_violation(&info).is_none());
        let none = Condition::Any(vec![Condition::ComponentHealthy { component: "lidar".into() }]);
        assert!(none.first_violation(&info).unwrap().contains("alternatives"));
    }

    #[test]
    fn rule_wrapper_and_descriptions() {
        let info = info();
        let rule = SafetyRule::new(
            "R1",
            Condition::MinValidity { item: "front-range".into(), threshold: 0.5 },
        );
        assert!(rule.holds(&info));
        assert_eq!(rule.id, "R1");
        assert!(rule.condition.describe().contains("front-range"));
        assert!(Condition::MaxAge { item: "x".into(), bound: SimDuration::from_millis(5) }
            .describe()
            .contains("age"));
        assert!(Condition::All(vec![]).describe().contains("all of"));
    }
}

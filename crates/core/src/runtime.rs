//! Run-time safety information and timing failure detection.
//!
//! The Run Time Safety Information component "abstracts the concrete
//! mechanisms that must be put in place to do this information collection
//! (which will include, for instance, failure detectors for detecting timing
//! faults)" (paper §III).  The store collects validity-annotated data items
//! (from the abstract sensors and the cooperation layer) and component
//! health reports (from timing failure detectors and self-checks).

use std::collections::BTreeMap;

use karyon_sensors::Validity;
use karyon_sim::{SimDuration, SimTime};

/// A validity-annotated data item collected for rule evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataItem {
    /// The most recent value.
    pub value: f64,
    /// Its validity.
    pub validity: Validity,
    /// When the value was produced.
    pub timestamp: SimTime,
}

/// A component health report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthReport {
    /// Whether the component is currently considered healthy.
    pub healthy: bool,
    /// When the report was produced.
    pub timestamp: SimTime,
}

/// The Run Time Safety Information store.
#[derive(Debug, Clone, Default)]
pub struct RunTimeSafetyInfo {
    now: SimTime,
    data: BTreeMap<String, DataItem>,
    health: BTreeMap<String, HealthReport>,
}

impl RunTimeSafetyInfo {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current time used for age checks.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// The current time used for age checks.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Records (or replaces) a data item.
    pub fn update_data(&mut self, item: &str, value: f64, validity: Validity, timestamp: SimTime) {
        self.data.insert(item.to_string(), DataItem { value, validity, timestamp });
    }

    /// Looks up a data item.
    pub fn data(&self, item: &str) -> Option<&DataItem> {
        self.data.get(item)
    }

    /// Records (or replaces) a component health report.
    pub fn update_health(&mut self, component: &str, healthy: bool, timestamp: SimTime) {
        self.health.insert(component.to_string(), HealthReport { healthy, timestamp });
    }

    /// True when the component has a current report and it says healthy.
    pub fn is_healthy(&self, component: &str) -> bool {
        self.health.get(component).map(|h| h.healthy).unwrap_or(false)
    }

    /// Number of data items currently held.
    pub fn data_len(&self) -> usize {
        self.data.len()
    }

    /// Number of health reports currently held.
    pub fn health_len(&self) -> usize {
        self.health.len()
    }

    /// Names of all data items (sorted).
    pub fn data_items(&self) -> Vec<&str> {
        self.data.keys().map(|s| s.as_str()).collect()
    }
}

/// A lease-based timing failure detector: a monitored component must produce
/// a heartbeat at least every `timeout`; otherwise it is reported failed.
/// This is the crash/timing failure detector assumed for components above
/// the hybridization line.
#[derive(Debug, Clone)]
pub struct TimingFailureDetector {
    component: String,
    timeout: SimDuration,
    last_heartbeat: Option<SimTime>,
    suspected: bool,
    suspicions: u64,
}

impl TimingFailureDetector {
    /// Creates a detector for `component` with the given heartbeat timeout.
    pub fn new(component: &str, timeout: SimDuration) -> Self {
        TimingFailureDetector {
            component: component.to_string(),
            timeout,
            last_heartbeat: None,
            suspected: false,
            suspicions: 0,
        }
    }

    /// The monitored component's name.
    pub fn component(&self) -> &str {
        &self.component
    }

    /// Registers a heartbeat from the component.
    pub fn heartbeat(&mut self, now: SimTime) {
        self.last_heartbeat = Some(now);
        self.suspected = false;
    }

    /// Evaluates the detector and pushes the verdict into the run-time store.
    /// Returns `true` when the component is currently considered healthy.
    pub fn check(&mut self, now: SimTime, info: &mut RunTimeSafetyInfo) -> bool {
        let healthy = match self.last_heartbeat {
            Some(last) => now.since(last) <= self.timeout,
            None => false,
        };
        if !healthy && !self.suspected {
            self.suspected = true;
            self.suspicions += 1;
        }
        info.update_health(&self.component, healthy, now);
        healthy
    }

    /// Number of distinct times the component became suspected.
    pub fn suspicions(&self) -> u64 {
        self.suspicions
    }

    /// True while the component is suspected.
    pub fn is_suspected(&self) -> bool {
        self.suspected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_holds_data_and_health() {
        let mut info = RunTimeSafetyInfo::new();
        assert_eq!(info.data_len(), 0);
        info.set_now(SimTime::from_secs(1));
        info.update_data("a", 1.0, Validity::FULL, SimTime::from_millis(900));
        info.update_data("b", 2.0, Validity::new(0.5), SimTime::from_millis(950));
        info.update_health("c1", true, SimTime::from_secs(1));
        assert_eq!(info.data_len(), 2);
        assert_eq!(info.health_len(), 1);
        assert_eq!(info.data("a").unwrap().value, 1.0);
        assert!(info.data("missing").is_none());
        assert!(info.is_healthy("c1"));
        assert!(!info.is_healthy("other"));
        assert_eq!(info.data_items(), vec!["a", "b"]);
        assert_eq!(info.now(), SimTime::from_secs(1));
        // Updating replaces.
        info.update_data("a", 5.0, Validity::INVALID, SimTime::from_secs(1));
        assert_eq!(info.data("a").unwrap().value, 5.0);
        assert!(info.data("a").unwrap().validity.is_invalid());
    }

    #[test]
    fn timing_failure_detector_lifecycle() {
        let mut info = RunTimeSafetyInfo::new();
        let mut fd = TimingFailureDetector::new("v2v-radio", SimDuration::from_millis(200));
        assert_eq!(fd.component(), "v2v-radio");
        // No heartbeat yet: unhealthy.
        assert!(!fd.check(SimTime::from_millis(0), &mut info));
        assert!(fd.is_suspected());
        assert_eq!(fd.suspicions(), 1);
        assert!(!info.is_healthy("v2v-radio"));
        // Heartbeat arrives: healthy within the timeout.
        fd.heartbeat(SimTime::from_millis(100));
        assert!(fd.check(SimTime::from_millis(250), &mut info));
        assert!(info.is_healthy("v2v-radio"));
        assert!(!fd.is_suspected());
        // Silence beyond the timeout: suspected again (a new suspicion).
        assert!(!fd.check(SimTime::from_millis(400), &mut info));
        assert_eq!(fd.suspicions(), 2);
        // Repeated checks while already suspected do not double-count.
        assert!(!fd.check(SimTime::from_millis(500), &mut info));
        assert_eq!(fd.suspicions(), 2);
        // Recovery.
        fd.heartbeat(SimTime::from_millis(600));
        assert!(fd.check(SimTime::from_millis(700), &mut info));
    }
}

//! E15 — ISO 26262-style fault-injection campaign (§I, §VI).
//!
//! Randomized campaigns inject a sensor fault (random class, random follower,
//! random window) and a V2V outage into the platoon scenario, and count how
//! often each control strategy ends up with collisions or hazard exposure.
//! This is the "experimentally evaluate safety assurance" loop the project
//! promises; the per-strategy residual-hazard rate is the quantity an ISO
//! 26262 assessment would track.
//!
//! The harness is a campaign spec over the `platoon-fault` family (one grid
//! axis: the control strategy); the runner handles seed derivation, parallel
//! execution and aggregation, reproducibly for any worker count.

use karyon_bench::run_campaign;
use karyon_sim::table::{fmt3, fmt_pct};
use karyon_sim::Table;

const SPEC: &str = r#"{
  "name": "e15-fault-injection", "seed": 2026,
  "entries": [
    {"scenario": "platoon-fault", "replications": 30, "duration_secs": 140,
     "grid": {"mode": ["kernel", "los2", "los0"]}}
  ]
}"#;

fn main() {
    let (report, stats, elapsed) = run_campaign(SPEC);
    let mut table = Table::new(
        "E15 — fault-injection campaign (30 randomized runs per strategy: sensor fault + V2V outage)",
        &[
            "control strategy",
            "runs with collision",
            "runs with hazard exposure",
            "mean hazard steps/run",
            "mean throughput [veh/h]",
        ],
    );
    for point in &report.points {
        let label = point.params_label();
        let name = match label.as_str() {
            "mode=kernel" => "KARYON safety kernel",
            "mode=los2" => "always cooperative (LoS2)",
            "mode=los0" => "always conservative (LoS0)",
            other => other,
        };
        let collision_rate = point.metrics["collision"].mean;
        let hazard_rate = point.metrics["hazard"].mean;
        // 0/1 flag metrics: the exact event counts are the sums.
        let collisions = point.metrics["collision"].sum as u64;
        let hazards = point.metrics["hazard"].sum as u64;
        table.add_row(&[
            name.to_string(),
            format!("{collisions}/{} ({})", point.runs, fmt_pct(collision_rate)),
            format!("{hazards}/{} ({})", point.runs, fmt_pct(hazard_rate)),
            fmt3(point.metrics["hazard_steps"].mean),
            format!("{:.0}", point.metrics["throughput_vph"].mean),
        ]);
    }
    table.print();
    eprintln!("({} runs, {} workers, {:.2?})", report.total_runs, stats.workers, elapsed);
    println!(
        "Expectation (paper §I, §VI): under randomized fault injection the kernel-controlled system\n\
         keeps its residual hazard exposure at (or near) the level of the conservative baseline\n\
         while retaining a throughput advantage over it — the blindly cooperative system shows the\n\
         highest residual risk, which is what would block its ISO 26262 safety case."
    );
}

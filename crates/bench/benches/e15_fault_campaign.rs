//! E15 — ISO 26262-style fault-injection campaign (§I, §VI).
//!
//! Randomized campaigns inject a sensor fault (random class, random follower,
//! random window) and a V2V outage into the platoon scenario, and count how
//! often each control strategy ends up with collisions or hazard exposure.
//! This is the "experimentally evaluate safety assurance" loop the project
//! promises; the per-strategy residual-hazard rate is the quantity an ISO
//! 26262 assessment would track.

use karyon_core::LevelOfService;
use karyon_sensors::SensorFault;
use karyon_sim::table::{fmt3, fmt_pct};
use karyon_sim::{Rng, SimDuration, SimTime, Table};
use karyon_vehicles::{run_platoon, ControlMode, InjectedSensorFault, PlatoonConfig, V2VModel};

const CAMPAIGN_RUNS: u64 = 30;

fn random_fault(rng: &mut Rng) -> SensorFault {
    match rng.range_u64(0, 4) {
        0 => SensorFault::Delay { delay: SimDuration::from_millis(rng.range_u64(400, 1_500)) },
        1 => SensorFault::SporadicOffset { probability: 0.3, magnitude: rng.range_f64(10.0, 40.0) },
        2 => SensorFault::PermanentOffset { offset: rng.range_f64(-25.0, 25.0) },
        3 => SensorFault::StochasticOffset { std_dev: rng.range_f64(3.0, 12.0) },
        _ => SensorFault::StuckAt { stuck_value: None },
    }
}

fn campaign(mode: ControlMode, seed: u64) -> (u64, u64, f64, f64) {
    let mut rng = Rng::seed_from(seed);
    let mut runs_with_collision = 0u64;
    let mut runs_with_hazard = 0u64;
    let mut hazard_steps_total = 0.0;
    let mut throughput_sum = 0.0;
    for run in 0..CAMPAIGN_RUNS {
        let fault_start = rng.range_u64(20, 60);
        let outage_start = rng.range_u64(30, 80);
        let config = PlatoonConfig {
            vehicles: 6,
            duration: SimDuration::from_secs(140),
            mode,
            lead_braking: rng.range_f64(3.5, 5.5),
            v2v: V2VModel {
                loss: rng.range_f64(0.02, 0.2),
                outages: vec![(
                    SimTime::from_secs(outage_start),
                    SimTime::from_secs(outage_start + rng.range_u64(10, 40)),
                )],
                ..Default::default()
            },
            sensor_fault: Some(InjectedSensorFault {
                follower: rng.range_usize(1, 5),
                fault: random_fault(&mut rng),
                from: SimTime::from_secs(fault_start),
                until: SimTime::from_secs(fault_start + rng.range_u64(10, 50)),
            }),
            seed: seed.wrapping_mul(1_000).wrapping_add(run),
            ..Default::default()
        };
        let result = run_platoon(&config);
        if result.collisions > 0 {
            runs_with_collision += 1;
        }
        if result.hazard_steps > 0 {
            runs_with_hazard += 1;
        }
        hazard_steps_total += result.hazard_steps as f64;
        throughput_sum += result.throughput_veh_per_hour;
    }
    (
        runs_with_collision,
        runs_with_hazard,
        hazard_steps_total / CAMPAIGN_RUNS as f64,
        throughput_sum / CAMPAIGN_RUNS as f64,
    )
}

fn main() {
    let mut table = Table::new(
        "E15 — fault-injection campaign (30 randomized runs per strategy: sensor fault + V2V outage)",
        &[
            "control strategy",
            "runs with collision",
            "runs with hazard exposure",
            "mean hazard steps/run",
            "mean throughput [veh/h]",
        ],
    );
    let strategies: Vec<(&str, ControlMode)> = vec![
        ("KARYON safety kernel", ControlMode::SafetyKernel),
        ("always cooperative (LoS2)", ControlMode::FixedLos(LevelOfService(2))),
        ("always conservative (LoS0)", ControlMode::FixedLos(LevelOfService(0))),
    ];
    for (name, mode) in strategies {
        let (collisions, hazards, mean_hazard, throughput) = campaign(mode, 2026);
        table.add_row(&[
            name.to_string(),
            format!(
                "{collisions}/{CAMPAIGN_RUNS} ({})",
                fmt_pct(collisions as f64 / CAMPAIGN_RUNS as f64)
            ),
            format!(
                "{hazards}/{CAMPAIGN_RUNS} ({})",
                fmt_pct(hazards as f64 / CAMPAIGN_RUNS as f64)
            ),
            fmt3(mean_hazard),
            format!("{throughput:.0}"),
        ]);
    }
    table.print();
    println!(
        "Expectation (paper §I, §VI): under randomized fault injection the kernel-controlled system\n\
         keeps its residual hazard exposure at (or near) the level of the conservative baseline\n\
         while retaining a throughput advantage over it — the blindly cooperative system shows the\n\
         highest residual risk, which is what would block its ISO 26262 safety case."
    );
}

//! E15 — ISO 26262-style fault-injection campaign (§I, §VI).
//!
//! Randomized campaigns inject a sensor fault (random class, random follower,
//! random window) and a V2V outage into the platoon scenario, and count how
//! often each control strategy ends up with collisions or hazard exposure.
//! This is the "experimentally evaluate safety assurance" loop the project
//! promises; the per-strategy residual-hazard rate is the quantity an ISO
//! 26262 assessment would track.
//!
//! Since the introduction of `karyon-scenario` the harness no longer
//! hand-wires the loop: it declares a [`Campaign`] over the `platoon-fault`
//! scenario family (one grid axis: the control strategy), and the runner
//! handles seed derivation, parallel execution and aggregation.  Results are
//! reproducible for any worker count.

use karyon_scenario::{builtin_registry, Campaign, CampaignEntry, ParamGrid};
use karyon_sim::table::{fmt3, fmt_pct};
use karyon_sim::{SimDuration, Table};

const CAMPAIGN_RUNS: u64 = 30;

fn main() {
    let registry = builtin_registry();
    let campaign = Campaign::new("e15-fault-injection", 2026).entry(
        CampaignEntry::new("platoon-fault")
            .grid(ParamGrid::new().axis("mode", ["kernel", "los2", "los0"]))
            .replications(CAMPAIGN_RUNS)
            .duration(SimDuration::from_secs(140)),
    );
    let report = campaign.run(&registry).expect("builtin families are registered");

    let mut table = Table::new(
        "E15 — fault-injection campaign (30 randomized runs per strategy: sensor fault + V2V outage)",
        &[
            "control strategy",
            "runs with collision",
            "runs with hazard exposure",
            "mean hazard steps/run",
            "mean throughput [veh/h]",
        ],
    );
    for point in &report.points {
        let label = point.params_label();
        let name = match label.as_str() {
            "mode=kernel" => "KARYON safety kernel",
            "mode=los2" => "always cooperative (LoS2)",
            "mode=los0" => "always conservative (LoS0)",
            other => other,
        };
        let collision_rate = point.metrics["collision"].mean;
        let hazard_rate = point.metrics["hazard"].mean;
        // 0/1 flag metrics: the exact event counts are the sums.
        let collisions = point.metrics["collision"].sum as u64;
        let hazards = point.metrics["hazard"].sum as u64;
        table.add_row(&[
            name.to_string(),
            format!("{collisions}/{} ({})", point.runs, fmt_pct(collision_rate)),
            format!("{hazards}/{} ({})", point.runs, fmt_pct(hazard_rate)),
            fmt3(point.metrics["hazard_steps"].mean),
            format!("{:.0}", point.metrics["throughput_vph"].mean),
        ]);
    }
    table.print();
    println!(
        "Expectation (paper §I, §VI): under randomized fault injection the kernel-controlled system\n\
         keeps its residual hazard exposure at (or near) the level of the conservative baseline\n\
         while retaining a throughput advantage over it — the blindly cooperative system shows the\n\
         highest residual risk, which is what would block its ISO 26262 safety case."
    );
}

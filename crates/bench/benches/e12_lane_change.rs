//! E12 — Coordinated lane-change manoeuvres (§VI-A3): the at-most-one-per-
//! region invariant vs. manoeuvre throughput.
//!
//! A campaign spec over the `lane-change` family: two entries rather than one
//! 3-axis grid, because the original experiment pairs the density with the
//! desire rate (12 veh @ 0.04/s, 20 veh @ 0.08/s) instead of crossing them.

use karyon_bench::run_campaign;
use karyon_sim::table::fmt3;
use karyon_sim::Table;

const SPEC: &str = r#"{
  "name": "e12-lane-change", "seed": 23,
  "entries": [
    {"scenario": "lane-change", "replications": 5, "duration_secs": 300,
     "grid": {"vehicles": [12], "desire_rate": [0.04],
              "coordination": ["agreement", "none"]}},
    {"scenario": "lane-change", "replications": 5, "duration_secs": 300,
     "grid": {"vehicles": [20], "desire_rate": [0.08],
              "coordination": ["agreement", "none"]}}
  ]
}"#;

fn main() {
    let (report, _, _) = run_campaign(SPEC);
    let mut table = Table::new(
        "E12 — coordinated lane changes (300 s, 2-lane ring road, 5 seeds per cell, mean values)",
        &[
            "vehicles",
            "desire rate [1/s]",
            "coordination",
            "desired",
            "started",
            "completed",
            "aborted",
            "invariant violations",
            "mean start delay [s]",
        ],
    );
    for point in &report.points {
        let coordination = match point.params["coordination"].as_str() {
            Some("agreement") => "KARYON agreement",
            _ => "uncoordinated",
        };
        table.add_row(&[
            point.params["vehicles"].to_string(),
            point.params["desire_rate"].to_string(),
            coordination.to_string(),
            fmt3(point.metrics["desired"].mean),
            fmt3(point.metrics["started"].mean),
            fmt3(point.metrics["completed"].mean),
            fmt3(point.metrics["aborted"].mean),
            fmt3(point.metrics["invariant_violations"].mean),
            fmt3(point.metrics["mean_start_delay_s"].mean),
        ]);
    }
    table.print();
    println!(
        "Expectation (paper §VI-A3): with agreement-based coordination the at-most-one-manoeuvre-\n\
         per-region invariant never breaks (0 violations) at the cost of some aborted/delayed\n\
         manoeuvres; without coordination violations appear and grow with traffic density."
    );
}

//! E12 — Coordinated lane-change manoeuvres (§VI-A3): the at-most-one-per-
//! region invariant vs. manoeuvre throughput.

use karyon_sim::table::fmt3;
use karyon_sim::{SimDuration, Table};
use karyon_vehicles::{run_lane_changes, Coordination, LaneChangeConfig};

fn main() {
    let mut table = Table::new(
        "E12 — coordinated lane changes (300 s, 2-lane ring road, 80 m coordination region)",
        &[
            "vehicles",
            "desire rate [1/s]",
            "coordination",
            "desired",
            "started",
            "completed",
            "aborted",
            "invariant violations",
            "mean start delay [s]",
        ],
    );
    for &(vehicles, desire) in &[(12usize, 0.04f64), (20, 0.08)] {
        for &(name, coordination) in
            &[("KARYON agreement", Coordination::Agreement), ("uncoordinated", Coordination::None)]
        {
            let result = run_lane_changes(&LaneChangeConfig {
                vehicles,
                desire_rate: desire,
                coordination,
                duration: SimDuration::from_secs(300),
                seed: 23,
                ..Default::default()
            });
            table.add_row(&[
                vehicles.to_string(),
                fmt3(desire),
                name.to_string(),
                result.desired.to_string(),
                result.started.to_string(),
                result.completed.to_string(),
                result.aborted.to_string(),
                result.invariant_violations.to_string(),
                fmt3(result.mean_start_delay),
            ]);
        }
    }
    table.print();
    println!(
        "Expectation (paper §VI-A3): with agreement-based coordination the at-most-one-manoeuvre-\n\
         per-region invariant never breaks (0 violations) at the cost of some aborted/delayed\n\
         manoeuvres; without coordination violations appear and grow with traffic density."
    );
}

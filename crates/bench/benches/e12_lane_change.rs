//! E12 — Coordinated lane-change manoeuvres (§VI-A3): the at-most-one-per-
//! region invariant vs. manoeuvre throughput.
//!
//! Runs on the `karyon-scenario` campaign runner: a `vehicles × desire-rate ×
//! coordination` grid over the `lane-change` family, executed in parallel
//! with deterministic per-run seeds — the harness only declares the grid and
//! renders the aggregates.

use karyon_scenario::{builtin_registry, Campaign, CampaignEntry, ParamGrid};
use karyon_sim::table::fmt3;
use karyon_sim::{SimDuration, Table};

fn main() {
    let registry = builtin_registry();
    // Two entries rather than one 3-axis grid: the original experiment pairs
    // the density with the desire rate (12 veh @ 0.04/s, 20 veh @ 0.08/s)
    // instead of crossing them.
    let cell = |vehicles: i64, desire_rate: f64| {
        CampaignEntry::new("lane-change")
            .grid(
                ParamGrid::new()
                    .axis("vehicles", [vehicles])
                    .axis("desire_rate", [desire_rate])
                    .axis("coordination", ["agreement", "none"]),
            )
            .replications(5)
            .duration(SimDuration::from_secs(300))
    };
    let campaign = Campaign::new("e12-lane-change", 23).entry(cell(12, 0.04)).entry(cell(20, 0.08));
    let report = campaign.run(&registry).expect("builtin families are registered");

    let mut table = Table::new(
        "E12 — coordinated lane changes (300 s, 2-lane ring road, 5 seeds per cell, mean values)",
        &[
            "vehicles",
            "desire rate [1/s]",
            "coordination",
            "desired",
            "started",
            "completed",
            "aborted",
            "invariant violations",
            "mean start delay [s]",
        ],
    );
    for point in &report.points {
        let coordination = match point.params["coordination"].as_str() {
            Some("agreement") => "KARYON agreement",
            _ => "uncoordinated",
        };
        table.add_row(&[
            point.params["vehicles"].to_string(),
            point.params["desire_rate"].to_string(),
            coordination.to_string(),
            fmt3(point.metrics["desired"].mean),
            fmt3(point.metrics["started"].mean),
            fmt3(point.metrics["completed"].mean),
            fmt3(point.metrics["aborted"].mean),
            fmt3(point.metrics["invariant_violations"].mean),
            fmt3(point.metrics["mean_start_delay_s"].mean),
        ]);
    }
    table.print();
    println!(
        "Expectation (paper §VI-A3): with agreement-based coordination the at-most-one-manoeuvre-\n\
         per-region invariant never breaks (0 violations) at the cost of some aborted/delayed\n\
         manoeuvres; without coordination violations appear and grow with traffic density."
    );
}

//! E09 — Reliable assessment of the cooperation state (§V-C).
//!
//! Three building blocks are measured: (a) the bounded-round manoeuvre
//! agreement under message loss — the `cooperation` family, where one run is
//! one trial and the campaign's 200 Monte-Carlo replications replace the
//! hand-rolled trial loop; (b) flooding topology-discovery convergence and
//! (c) the 2f+1 vertex-disjoint-path condition for Byzantine-resilient
//! dissemination — both the `topology` family on representative graphs.

use karyon_bench::run_campaign;
use karyon_sim::table::fmt_pct;
use karyon_sim::Table;

const AGREEMENT_SPEC: &str = r#"{
  "name": "e09a-agreement", "seed": 13,
  "entries": [
    {"scenario": "cooperation", "replications": 200,
     "grid": {"participants": [2, 4, 8], "loss": [0.0, 0.2, 0.5],
              "deadline_ms": [300], "retransmit_ms": [50]}}
  ]
}"#;

const TOPOLOGY_SPEC: &str = r#"{
  "name": "e09bc-topology", "seed": 1,
  "entries": [
    {"scenario": "topology", "replications": 1,
     "grid": {"topology": ["line"], "nodes": [10]}},
    {"scenario": "topology", "replications": 1,
     "grid": {"topology": ["ring-chords"], "nodes": [12]}},
    {"scenario": "topology", "replications": 1,
     "grid": {"topology": ["complete"], "nodes": [6]}}
  ]
}"#;

fn main() {
    let (agreement, stats, elapsed) = run_campaign(AGREEMENT_SPEC);
    let mut table = Table::new(
        "E09a — manoeuvre agreement under message loss (300 ms deadline, 50 ms retransmission, 200 trials)",
        &["participants", "loss", "agreement success", "mean latency [ms]"],
    );
    for point in &agreement.points {
        let latency = point
            .metrics
            .get("latency_ms")
            .map(|m| format!("{:.0}", m.mean))
            .unwrap_or_else(|| "-".into());
        table.add_row(&[
            point.params["participants"].to_string(),
            fmt_pct(point.params["loss"].as_f64().unwrap()),
            fmt_pct(point.metrics["agreed"].mean),
            latency,
        ]);
    }
    table.print();
    eprintln!("({} trials, {} workers, {:.2?})\n", agreement.total_runs, stats.workers, elapsed);

    let (topology, _, _) = run_campaign(TOPOLOGY_SPEC);
    let mut discovery = Table::new(
        "E09b — flooding topology discovery convergence",
        &["topology", "nodes", "edges", "rounds to converge"],
    );
    let mut byz = Table::new(
        "E09c — Byzantine-resilient dissemination feasibility (needs 2f+1 vertex-disjoint paths)",
        &["topology", "disjoint paths (0 -> far node)", "tolerates f=1", "tolerates f=2"],
    );
    for point in &topology.points {
        let name =
            format!("{}-{}", point.params["topology"].as_str().unwrap(), point.params["nodes"]);
        let rounds = point
            .metrics
            .get("discovery_rounds")
            .map(|m| format!("{:.0}", m.mean))
            .unwrap_or_else(|| "never".into());
        discovery.add_row(&[
            name.clone(),
            format!("{:.0}", point.metrics["nodes"].mean),
            format!("{:.0}", point.metrics["edges"].mean),
            rounds,
        ]);
        byz.add_row(&[
            name,
            format!("{:.0}", point.metrics["disjoint_paths"].mean),
            (point.metrics["byzantine_f1"].mean == 1.0).to_string(),
            (point.metrics["byzantine_f2"].mean == 1.0).to_string(),
        ]);
    }
    discovery.print();
    byz.print();
    println!(
        "Expectation (paper §V-C): agreement succeeds within the deadline as long as losses are\n\
         moderate and degrades gracefully (abort, never inconsistency) under heavy loss; topology\n\
         discovery converges in at most diameter rounds; denser topologies provide the 2f+1\n\
         disjoint paths Byzantine-resilient dissemination needs."
    );
}

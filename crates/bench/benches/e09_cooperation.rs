//! E09 — Reliable assessment of the cooperation state (§V-C).
//!
//! Three building blocks are measured: (a) the bounded-round manoeuvre
//! agreement under message loss, (b) flooding topology discovery convergence,
//! and (c) the 2f+1 vertex-disjoint-path condition for Byzantine-resilient
//! dissemination on representative topologies.

use karyon_core::{AgreementProtocol, ProposalState};
use karyon_net::{Graph, NodeId, TopologyDiscovery};
use karyon_sim::table::fmt_pct;
use karyon_sim::{Rng, SimDuration, SimTime, Table};

/// Runs `trials` agreement rounds among `participants + 1` vehicles over a
/// lossy broadcast and reports the success rate and mean decision latency.
fn agreement_under_loss(participants: usize, loss: f64, trials: u64, seed: u64) -> (f64, f64) {
    let mut rng = Rng::seed_from(seed);
    let mut successes = 0u64;
    let mut latency_sum = 0.0;
    for trial in 0..trials {
        let mut initiator = AgreementProtocol::new(0);
        let mut others: Vec<AgreementProtocol> =
            (1..=participants).map(|i| AgreementProtocol::new(i as u32)).collect();
        let ids: Vec<u32> = (1..=participants as u32).collect();
        let start = SimTime::from_millis(trial * 1_000);
        let (proposal_msg, id) =
            initiator.propose("merge", &ids, start, SimDuration::from_millis(300));
        // One round trip with per-message loss; retransmission every 50 ms.
        let mut t = start;
        while initiator.proposal_state(id) == Some(ProposalState::Pending)
            && t < start + SimDuration::from_millis(300)
        {
            for other in others.iter_mut() {
                if rng.chance(loss) {
                    continue;
                }
                for response in other.on_message(&proposal_msg, t) {
                    if rng.chance(loss) {
                        continue;
                    }
                    initiator.on_message(&response, t + SimDuration::from_millis(10));
                }
            }
            t += SimDuration::from_millis(50);
            initiator.tick(t);
        }
        initiator.tick(start + SimDuration::from_millis(301));
        if initiator.proposal_state(id) == Some(ProposalState::Agreed) {
            successes += 1;
            latency_sum += t.since(start).as_secs_f64() * 1e3;
        }
    }
    (successes as f64 / trials as f64, latency_sum / successes.max(1) as f64)
}

fn ring_with_chords(n: u32) -> Graph {
    let mut g = Graph::new();
    for i in 0..n {
        g.add_edge(NodeId(i), NodeId((i + 1) % n));
        g.add_edge(NodeId(i), NodeId((i + 2) % n));
    }
    g
}

fn main() {
    let mut agreement = Table::new(
        "E09a — manoeuvre agreement under message loss (300 ms deadline, 50 ms retransmission)",
        &["participants", "loss", "agreement success", "mean latency [ms]"],
    );
    for &participants in &[2usize, 4, 8] {
        for &loss in &[0.0, 0.2, 0.5] {
            let (success, latency) = agreement_under_loss(participants, loss, 200, 13);
            agreement.add_row(&[
                participants.to_string(),
                fmt_pct(loss),
                fmt_pct(success),
                format!("{latency:.0}"),
            ]);
        }
    }
    agreement.print();

    let mut discovery = Table::new(
        "E09b — flooding topology discovery convergence",
        &["topology", "nodes", "edges", "rounds to converge"],
    );
    let line = {
        let mut g = Graph::new();
        for i in 0..9 {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        g
    };
    let cases = vec![("line-10", line), ("ring+chords-12", ring_with_chords(12))];
    for (name, graph) in cases {
        let nodes = graph.node_count();
        let edges = graph.edge_count();
        let mut disc = TopologyDiscovery::new(graph);
        let rounds =
            disc.run_to_convergence(64).map(|r| r.to_string()).unwrap_or_else(|| "never".into());
        discovery.add_row(&[name.to_string(), nodes.to_string(), edges.to_string(), rounds]);
    }
    discovery.print();

    let mut byz = Table::new(
        "E09c — Byzantine-resilient dissemination feasibility (needs 2f+1 vertex-disjoint paths)",
        &["topology", "disjoint paths (0 -> far node)", "tolerates f=1", "tolerates f=2"],
    );
    let ring12 = ring_with_chords(12);
    let complete6 = {
        let mut g = Graph::new();
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        g
    };
    for (name, graph, target) in
        [("ring+chords-12", ring12, NodeId(6)), ("complete-6", complete6, NodeId(5))]
    {
        let paths = graph.vertex_disjoint_paths(NodeId(0), target);
        byz.add_row(&[
            name.to_string(),
            paths.to_string(),
            graph.byzantine_resilient(NodeId(0), target, 1).to_string(),
            graph.byzantine_resilient(NodeId(0), target, 2).to_string(),
        ]);
    }
    byz.print();
    println!(
        "Expectation (paper §V-C): agreement succeeds within the deadline as long as losses are\n\
         moderate and degrades gracefully (abort, never inconsistency) under heavy loss; topology\n\
         discovery converges in at most diameter rounds; denser topologies provide the 2f+1\n\
         disjoint paths Byzantine-resilient dissemination needs."
    );
}

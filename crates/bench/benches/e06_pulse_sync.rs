//! E06 — Autonomous pulse/slot alignment under clock drift (§V-A2).
//!
//! Nodes with drifting oscillators and random initial phases align their TDMA
//! pulse timing using only overheard neighbour pulses.  The table reports the
//! initial and steady-state worst pairwise phase error and the convergence
//! time, including a no-correction baseline.

use karyon_net::{PulseSyncConfig, PulseSyncSim};
use karyon_sim::table::{fmt3, fmt_pct};
use karyon_sim::Table;

fn main() {
    let mut table = Table::new(
        "E06 — self-stabilizing pulse synchronization (10 nodes, 100 ms period)",
        &[
            "drift [ppm]",
            "pulse loss",
            "gain",
            "initial max error",
            "converged (<5%) after [s]",
            "steady max error",
        ],
    );

    let cases = vec![
        (40e-6, 0.05, 0.5),
        (40e-6, 0.30, 0.5),
        (100e-6, 0.05, 0.5),
        (100e-6, 0.30, 0.5),
        (40e-6, 0.05, 0.0), // no-correction baseline
    ];
    for (drift, loss, gain) in cases {
        let config = PulseSyncConfig {
            nodes: 10,
            period: 0.1,
            gain,
            drift,
            loss_probability: loss,
            dt: 0.001,
        };
        let mut sim = PulseSyncSim::new(config, 5);
        let initial = sim.max_phase_error_fraction();
        let converged = sim.run_until_converged(0.05, 60.0);
        sim.run(10.0);
        let steady = sim.max_phase_error_fraction();
        table.add_row(&[
            format!("{:.0}", drift * 1e6),
            fmt_pct(loss),
            fmt3(gain),
            fmt_pct(initial),
            converged.map(|t| format!("{t:.1}")).unwrap_or_else(|| "never".into()),
            fmt_pct(steady),
        ]);
    }
    table.print();
    println!(
        "Expectation (paper §V-A2, MicaZ validation): alignment to a few percent of the period\n\
         within seconds despite drift and pulse loss; without the correction (gain 0) the phases\n\
         never align — showing why an autonomous mechanism is needed when GPS is unavailable."
    );
}

//! E06 — Autonomous pulse/slot alignment under clock drift (§V-A2).
//!
//! Nodes with drifting oscillators and random initial phases align their TDMA
//! pulse timing using only overheard neighbour pulses.  The sweep — drift ×
//! pulse loss, plus the no-correction baseline (gain 0) — is a campaign spec
//! over the `pulse-sync` family; the 60 s duration budgets the convergence
//! hunt exactly like the seed harness.

use karyon_bench::run_campaign;
use karyon_sim::table::{fmt3, fmt_pct};
use karyon_sim::Table;

const SPEC: &str = r#"{
  "name": "e06-pulse-sync", "seed": 5,
  "entries": [
    {"scenario": "pulse-sync", "replications": 3, "duration_secs": 60,
     "grid": {"drift_ppm": [40.0, 100.0], "loss": [0.05, 0.3], "gain": [0.5],
              "nodes": [10], "period_ms": [100.0]}},
    {"scenario": "pulse-sync", "replications": 3, "duration_secs": 60,
     "grid": {"drift_ppm": [40.0], "loss": [0.05], "gain": [0.0],
              "nodes": [10], "period_ms": [100.0]}}
  ]
}"#;

fn main() {
    let (report, _, _) = run_campaign(SPEC);
    let mut table = Table::new(
        "E06 — self-stabilizing pulse synchronization (10 nodes, 100 ms period, 3 seeds)",
        &[
            "drift [ppm]",
            "pulse loss",
            "gain",
            "initial max error",
            "converged (<5%)",
            "mean convergence [s]",
            "steady max error",
        ],
    );
    for point in &report.points {
        let converged = point.metrics["converged"].mean;
        let convergence_time = point
            .metrics
            .get("converged_after_s")
            .map(|m| format!("{:.1}", m.mean))
            .unwrap_or_else(|| "never".into());
        table.add_row(&[
            format!("{:.0}", point.params["drift_ppm"].as_f64().unwrap()),
            fmt_pct(point.params["loss"].as_f64().unwrap()),
            fmt3(point.params["gain"].as_f64().unwrap()),
            fmt_pct(point.metrics["initial_max_error"].mean),
            fmt_pct(converged),
            convergence_time,
            fmt_pct(point.metrics["steady_max_error"].mean),
        ]);
        // Consistency with the pre-refactor harness: with the correction
        // every condition aligns; without it (gain 0) none do.
        let gain = point.params["gain"].as_f64().unwrap();
        assert_eq!(
            converged,
            if gain > 0.0 { 1.0 } else { 0.0 },
            "pulse-sync convergence changed for {}",
            point.params_label()
        );
    }
    table.print();
    println!(
        "Expectation (paper §V-A2, MicaZ validation): alignment to a few percent of the period\n\
         within seconds despite drift and pulse loss; without the correction (gain 0) the phases\n\
         never align — showing why an autonomous mechanism is needed when GPS is unavailable."
    );
}

//! E10 — ACC/platooning: time margin, throughput and hazards per LoS (§VI-A1).
//!
//! Reproduces the use-case A1 table: each fixed Level of Service trades the
//! time margin between vehicles against road throughput; the safety kernel
//! obtains (close to) the best throughput that is safe under the prevailing
//! conditions.

use karyon_core::LevelOfService;
use karyon_sim::table::{fmt3, fmt_pct};
use karyon_sim::{SimDuration, SimTime, Table};
use karyon_vehicles::{run_platoon, time_margin_for_los, ControlMode, PlatoonConfig, V2VModel};

fn run(mode: ControlMode, outage: bool, seed: u64) -> karyon_vehicles::PlatoonResult {
    let v2v = if outage {
        V2VModel {
            loss: 0.05,
            outages: vec![(SimTime::from_secs(50), SimTime::from_secs(110))],
            ..Default::default()
        }
    } else {
        V2VModel::default()
    };
    run_platoon(&PlatoonConfig {
        vehicles: 8,
        duration: SimDuration::from_secs(180),
        mode,
        v2v,
        seed,
        ..Default::default()
    })
}

fn main() {
    let mut table = Table::new(
        "E10 — ACC/platooning per Level of Service (8 vehicles, 180 s)",
        &[
            "condition",
            "control",
            "design time margin [s]",
            "mean time gap [s]",
            "min time gap [s]",
            "hazard steps",
            "collisions",
            "throughput [veh/h]",
            "time at LoS2",
        ],
    );
    for &(cond, outage) in &[("healthy V2V", false), ("V2V outage 50-110 s", true)] {
        for level in 0u8..=2 {
            let los = LevelOfService(level);
            let r = run(ControlMode::FixedLos(los), outage, 21);
            table.add_row(&[
                cond.to_string(),
                format!("fixed {los}"),
                fmt3(time_margin_for_los(los)),
                fmt3(r.mean_time_gap),
                fmt3(r.min_time_gap),
                r.hazard_steps.to_string(),
                r.collisions.to_string(),
                format!("{:.0}", r.throughput_veh_per_hour),
                fmt_pct(r.los_time_fraction[2]),
            ]);
        }
        let r = run(ControlMode::SafetyKernel, outage, 21);
        table.add_row(&[
            cond.to_string(),
            "KARYON safety kernel".into(),
            "adaptive".into(),
            fmt3(r.mean_time_gap),
            fmt3(r.min_time_gap),
            r.hazard_steps.to_string(),
            r.collisions.to_string(),
            format!("{:.0}", r.throughput_veh_per_hour),
            fmt_pct(r.los_time_fraction[2]),
        ]);
    }
    table.print();
    println!(
        "Expectation (paper §VI-A1): higher LoS ⇒ smaller time margin ⇒ higher throughput; under a\n\
         V2V outage the fixed high-LoS platoon accumulates hazard steps while the kernel adapts its\n\
         margin and stays as safe as the conservative setting."
    );
}

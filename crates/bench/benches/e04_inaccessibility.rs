//! E04 — Network-inaccessibility control with R2T-MAC (§V-A1, Fig. 4).
//!
//! A broadcast workload runs over a medium hit by jamming bursts (plus one
//! stark 8–12 s burst, `long_burst`).  The plain CSMA baseline suffers
//! inaccessibility periods as long as the bursts; the R2T-MAC wrapper
//! bounds them via channel diversity and temporal redundancy.  The sweep is
//! a campaign spec over the `inaccessibility` family; the harness renders
//! the aggregates and asserts the bound property the seed harness showed.

use karyon_bench::run_campaign;
use karyon_sim::table::fmt3;
use karyon_sim::Table;

const SPEC: &str = r#"{
  "name": "e04-inaccessibility", "seed": 9,
  "entries": [
    {"scenario": "inaccessibility", "replications": 3, "duration_secs": 20,
     "grid": {"burst_ms": [200, 800], "mac": ["csma", "r2t"],
              "long_burst": [true], "nodes": [6], "copies": [2]}}
  ]
}"#;

fn main() {
    let (report, stats, elapsed) = run_campaign(SPEC);
    let mut table = Table::new(
        "E04 — inaccessibility control (jamming bursts on channel 0, 20 s, 6 nodes, 3 seeds)",
        &[
            "burst mean [ms]",
            "MAC",
            "delivered/generated",
            "p95 delay [ms]",
            "max delay [ms]",
            "longest inaccessibility [ms]",
            "bound [ms]",
        ],
    );
    for point in &report.points {
        let is_r2t = point.params["mac"].as_str().unwrap() == "r2t";
        table.add_row(&[
            point.params["burst_ms"].to_string(),
            if is_r2t { "R2T-MAC over CSMA" } else { "CSMA (baseline)" }.to_string(),
            fmt3(point.metrics["delivery_per_generated"].mean),
            fmt3(point.metrics["p95_delay_ms"].mean),
            fmt3(point.metrics["max_delay_ms"].mean),
            fmt3(point.metrics["longest_inaccessibility_ms"].mean),
            if is_r2t {
                fmt3(point.metrics["inaccessibility_bound_ms"].mean)
            } else {
                "unbounded".into()
            },
        ]);
        // Consistency with the pre-refactor harness: R2T-MAC respects its
        // analytical bound in every run, CSMA never does.
        let bounded = point.metrics["bounded"].mean;
        assert_eq!(
            bounded,
            if is_r2t { 1.0 } else { 0.0 },
            "inaccessibility bound property changed for {}",
            point.params_label()
        );
    }
    table.print();
    eprintln!("({} runs, {} workers, {:.2?})", report.total_runs, stats.workers, elapsed);
    println!(
        "Expectation (paper §V-A1): plain CSMA's inaccessibility grows with the burst length\n\
         (unbounded by design), while R2T-MAC bounds it at the channel-switch threshold and keeps\n\
         the delivery ratio and tail delays flat."
    );
}

//! E04 — Network-inaccessibility control with R2T-MAC (§V-A1, Fig. 4).
//!
//! A broadcast workload runs over a medium hit by jamming bursts.  The plain
//! CSMA baseline suffers inaccessibility periods as long as the bursts; the
//! R2T-MAC wrapper (mediator + channel-control layers) bounds them via
//! channel diversity and temporal redundancy.

use karyon_net::mac::{MacSimConfig, MacSimulation};
use karyon_net::{
    CsmaConfig, CsmaMac, Disturbance, MediumConfig, NodeId, R2TMac, R2TMacConfig, WirelessMedium,
};
use karyon_sim::table::fmt3;
use karyon_sim::{Rng, SimDuration, SimTime, Table, Vec2};

const SLOTS: u64 = 20_000; // 20 s at 1 ms slots
const NODES: u32 = 6;

fn medium(seed: u64, burst_ms: u64) -> WirelessMedium {
    let mut m =
        WirelessMedium::new(MediumConfig { range: 1_000.0, loss_probability: 0.01, channels: 2 });
    let mut rng = Rng::seed_from(seed);
    m.add_random_disturbances(
        Some(0),
        SimTime::from_millis(SLOTS),
        SimDuration::from_secs(3),
        SimDuration::from_millis(burst_ms),
        &mut rng,
    );
    // One long burst to make the difference stark.
    m.add_disturbance(Disturbance {
        channel: Some(0),
        start: SimTime::from_secs(8),
        end: SimTime::from_secs(12),
    });
    m
}

fn traffic<M: karyon_net::MacProtocol>(sim: &mut MacSimulation<M>) {
    for round in 0..(SLOTS / 50) {
        let src = NodeId((round % NODES as u64) as u32);
        sim.send_broadcast(src, vec![round as u8]);
        sim.run_slots(50);
    }
}

fn main() {
    let mut table = Table::new(
        "E04 — inaccessibility control (jamming bursts on channel 0, 20 s, 6 nodes)",
        &[
            "burst mean [ms]",
            "MAC",
            "delivered/generated",
            "p95 delay [ms]",
            "max delay [ms]",
            "longest inaccessibility [ms]",
            "bound [ms]",
        ],
    );

    for burst_ms in [200u64, 800] {
        // Plain CSMA.
        let mut csma = MacSimulation::new(medium(9, burst_ms), MacSimConfig::default(), 1);
        for i in 0..NODES {
            csma.add_node(
                NodeId(i),
                CsmaMac::new(CsmaConfig::default()),
                Vec2::new(i as f64 * 10.0, 0.0),
            );
        }
        traffic(&mut csma);
        // Measure the raw disturbance-driven inaccessibility a CSMA node sees:
        // it cannot escape the jammed channel, so the longest burst applies.
        let mut tracker = karyon_net::InaccessibilityTracker::new();
        for slot in 0..SLOTS {
            let now = SimTime::from_millis(slot);
            tracker.observe(csma.medium().is_disturbed(0, now), now);
        }
        tracker.finish(SimTime::from_millis(SLOTS));
        let mut csma_delays = csma.metrics().delays_ms.clone();
        table.add_row(&[
            burst_ms.to_string(),
            "CSMA (baseline)".into(),
            fmt3(csma.metrics().delivery_per_generated()),
            fmt3(csma_delays.p95()),
            fmt3(csma_delays.max()),
            fmt3(tracker.longest().as_secs_f64() * 1e3),
            "unbounded".into(),
        ]);

        // R2T-MAC over CSMA.
        let r2t_config = R2TMacConfig {
            copies: 2,
            heartbeat_period: 0,
            channel_switch_threshold: 10,
            channels: 2,
            ..Default::default()
        };
        let mut r2t = MacSimulation::new(medium(9, burst_ms), MacSimConfig::default(), 1);
        for i in 0..NODES {
            r2t.add_node(
                NodeId(i),
                R2TMac::new(CsmaMac::new(CsmaConfig::default()), r2t_config.clone()),
                Vec2::new(i as f64 * 10.0, 0.0),
            );
        }
        traffic(&mut r2t);
        let mut longest = SimDuration::ZERO;
        let mut bound = SimDuration::ZERO;
        for id in r2t.node_ids() {
            let mac = r2t.mac(id).unwrap();
            longest = longest.max(mac.inaccessibility().longest());
            bound = mac.inaccessibility_bound(SimDuration::from_millis(1));
        }
        let mut r2t_delays = r2t.metrics().delays_ms.clone();
        table.add_row(&[
            burst_ms.to_string(),
            "R2T-MAC over CSMA".into(),
            fmt3(r2t.metrics().delivery_per_generated()),
            fmt3(r2t_delays.p95()),
            fmt3(r2t_delays.max()),
            fmt3(longest.as_secs_f64() * 1e3),
            fmt3(bound.as_secs_f64() * 1e3),
        ]);
    }
    table.print();
    println!(
        "Expectation (paper §V-A1): plain CSMA's inaccessibility grows with the burst length\n\
         (unbounded by design), while R2T-MAC bounds it at the channel-switch threshold and keeps\n\
         the delivery ratio and tail delays flat."
    );
}

//! E08 — Event-channel QoS assessment and adaptation (§V-B, Fig. 5).
//!
//! Three event channels with different QoS requirements are announced over an
//! in-vehicle bus bridged to a wireless network.  The table shows the
//! admission decision at announcement time, the delivered quality, and how
//! the dynamic re-assessment reacts when the monitored wireless capability
//! degrades.

use karyon_middleware::{
    Admission, ContextFilter, EventBus, NetworkCapability, NetworkId, QosRequirement, Subject,
    SubscriberId,
};
use karyon_sim::table::{fmt3, fmt_pct};
use karyon_sim::{SimDuration, SimTime, Table};

fn qos(latency_ms: u64, ratio: f64, rate: f64) -> QosRequirement {
    QosRequirement {
        max_latency: SimDuration::from_millis(latency_ms),
        min_delivery_ratio: ratio,
        max_rate: rate,
    }
}

fn main() {
    let mut bus = EventBus::new(3);
    bus.attach_network(NetworkId(0), NetworkCapability::local_bus());
    bus.attach_network(NetworkId(1), NetworkCapability::wireless_nominal());

    let channels: Vec<(&str, Subject, NetworkId, QosRequirement)> = vec![
        (
            "brake-command (local, 2 ms)",
            Subject::from_name("vehicle/brake"),
            NetworkId(0),
            qos(2, 0.99, 100.0),
        ),
        (
            "lead-state (V2V, 60 ms)",
            Subject::from_name("platoon/lead-state"),
            NetworkId(1),
            qos(60, 0.9, 50.0),
        ),
        (
            "hazard-warning (V2V, 10 ms)",
            Subject::from_name("hazard/warning"),
            NetworkId(1),
            qos(10, 0.99, 20.0),
        ),
    ];

    // Subscribers: the brake command stays on the local bus; the V2V subjects
    // are consumed by a remote vehicle on the wireless segment.
    bus.subscribe(SubscriberId(1), NetworkId(0), channels[0].1, ContextFilter::accept_all());
    bus.subscribe(SubscriberId(2), NetworkId(1), channels[1].1, ContextFilter::accept_all());
    bus.subscribe(SubscriberId(2), NetworkId(1), channels[2].1, ContextFilter::accept_all());

    let mut table = Table::new(
        "E08 — event-channel QoS admission and delivered quality",
        &[
            "channel",
            "admission (nominal)",
            "delivered/published",
            "mean latency [ms]",
            "deadline misses",
            "admission (degraded)",
        ],
    );

    let mut admissions = Vec::new();
    for (_, subject, network, requirement) in &channels {
        admissions.push(bus.announce(*subject, *network, *requirement));
    }

    // Publish 500 events per channel under nominal conditions.
    for i in 0..500u64 {
        let now = SimTime::from_millis(i * 20);
        for (_, subject, _, _) in &channels {
            bus.publish_from(*subject, None, vec![0], now);
        }
    }

    // The monitoring layer then reports a degraded wireless network.
    let changed = bus.update_capability(NetworkId(1), NetworkCapability::wireless_degraded());

    for (i, (name, subject, _, _)) in channels.iter().enumerate() {
        let stats = bus.channel_stats(*subject).unwrap();
        table.add_row(&[
            name.to_string(),
            format!("{:?}", admissions[i]),
            fmt_pct(stats.delivered as f64 / stats.published.max(1) as f64),
            fmt3(stats.mean_latency_ms),
            stats.missed_deadline.to_string(),
            format!("{:?}", bus.admission(*subject).unwrap()),
        ]);
    }
    table.print();
    println!("Channels re-assessed after degradation: {}", changed.len());
    println!(
        "Expectation (paper §V-B): the strict hazard-warning channel cannot be guaranteed over the\n\
         wireless segment and is rejected at announcement time ({} of 3 admitted); the in-vehicle\n\
         channel keeps sub-millisecond latency; when the monitored capability degrades, the lead-state\n\
         channel loses its admission — the trigger the safety kernel uses to lower the LoS.",
        admissions.iter().filter(|a| **a == Admission::Admitted).count()
    );
}

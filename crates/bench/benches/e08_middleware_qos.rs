//! E08 — Event-channel QoS: admission, adaptation, and overload (§V-B, Fig. 5).
//!
//! Part 1 (admission): three event channels with different QoS requirements
//! — an in-vehicle brake command, the V2V lead-state stream and a strict V2V
//! hazard warning — are three campaign entries over the `middleware-qos`
//! family, whose QoS contract (network segment, latency deadline,
//! delivery-ratio floor) is parameterised.  The `degrade` axis shows the
//! dynamic re-assessment reacting when the monitored wireless capability
//! degrades mid-run.
//!
//! Part 2 (overload): the question the paper never ran — what happens at 10×
//! (and 20×) the rated traffic — swept over the `middleware-overload` family.
//! The table reports per-QoS-class delivery ratio and P99 delivery latency:
//! the Realtime class must hold its 60 ms latency bound at every offered
//! load (it sheds instead of queueing), while Batched degrades gracefully —
//! delivery ratio falls towards rated-capacity ÷ offered-load but tail
//! latency stays bounded by its mailbox.
//!
//! Quick mode (`E08_QUICK=1`, used by CI) shrinks run durations ~10×.

use karyon_bench::{quick_mode, run_campaign};
use karyon_sim::table::{fmt3, fmt_pct};
use karyon_sim::Table;

const QOS_SPEC: &str = r#"{
  "name": "e08-middleware-qos", "seed": 3,
  "entries": [
    {"scenario": "middleware-qos", "replications": 3, "duration_secs": 10,
     "grid": {"network": ["local"], "max_latency_ms": [2],
              "min_delivery_ratio": [0.99], "rate_hz": [50.0],
              "degrade": [false, true]}},
    {"scenario": "middleware-qos", "replications": 3, "duration_secs": 10,
     "grid": {"network": ["wireless"], "max_latency_ms": [60],
              "min_delivery_ratio": [0.9], "rate_hz": [50.0],
              "degrade": [false, true]}},
    {"scenario": "middleware-qos", "replications": 3, "duration_secs": 10,
     "grid": {"network": ["wireless"], "max_latency_ms": [10],
              "min_delivery_ratio": [0.99], "rate_hz": [20.0],
              "degrade": [false, true]}}
  ]
}"#;

const OVERLOAD_SPEC: &str = r#"{
  "name": "e08-middleware-overload", "seed": 17,
  "entries": [
    {"scenario": "middleware-overload", "replications": 3, "duration_secs": DURATION,
     "grid": {"load_x": [1.0, 2.0, 10.0, 20.0], "qos_mix": ["mixed"],
              "backlog_threshold": [1024], "strategy": ["class-default"]}}
  ]
}"#;

/// The Realtime latency bound the overload table is scored against (the
/// `max_latency` of the announced channel in the family).
const REALTIME_BOUND_MS: f64 = 60.0;

fn channel_label(network: &str, latency: i64) -> &'static str {
    match (network, latency) {
        ("local", _) => "brake-command (local, 2 ms)",
        (_, 60) => "lead-state (V2V, 60 ms)",
        _ => "hazard-warning (V2V, 10 ms)",
    }
}

fn qos_admission_campaign() {
    let (report, _, _) = run_campaign(QOS_SPEC);
    assert_eq!(report.suspect_runs(), 0, "the publish loop never schedules into the past");
    let mut table = Table::new(
        "E08a — event-channel QoS admission and delivered quality (10 s, 3 seeds)",
        &[
            "channel",
            "degraded mid-run",
            "admitted",
            "delivered/published",
            "mean latency [ms]",
            "deadline misses",
            "admitted after",
        ],
    );
    for point in &report.points {
        let network = point.params["network"].as_str().unwrap();
        let latency = point.params["max_latency_ms"].as_i64().unwrap();
        table.add_row(&[
            channel_label(network, latency).to_string(),
            point.params["degrade"].to_string(),
            fmt_pct(point.metrics["admitted"].mean),
            fmt_pct(point.metrics["delivery_ratio"].mean),
            fmt3(point.metrics["mean_latency_ms"].mean),
            fmt3(point.metrics["missed_deadlines"].mean),
            fmt_pct(point.metrics["admitted_after"].mean),
        ]);
        // Consistency with the pre-refactor harness: the strict
        // hazard-warning channel is rejected over the wireless segment at
        // announcement time; the others are admitted.
        let expected_admission = if network == "wireless" && latency == 10 { 0.0 } else { 1.0 };
        assert_eq!(
            point.metrics["admitted"].mean,
            expected_admission,
            "admission decision changed for {}",
            point.params_label()
        );
    }
    table.print();
    println!(
        "Expectation (paper §V-B): the strict hazard-warning channel cannot be guaranteed over the\n\
         wireless segment and is rejected at announcement time; the in-vehicle channel keeps\n\
         sub-millisecond latency; when the monitored capability degrades, the lead-state channel\n\
         loses its admission — the trigger the safety kernel uses to lower the LoS.\n"
    );
}

fn overload_campaign(quick: bool) {
    let duration = if quick { "6" } else { "30" };
    let spec = OVERLOAD_SPEC.replace("DURATION", duration);
    let (report, _, _) = run_campaign(&spec);
    assert_eq!(report.suspect_runs(), 0, "the overload loops never schedule into the past");
    let mut table = Table::new(
        &format!(
            "E08b — EventBus v2 under overload: delivery ratio and P99 latency per QoS class \
             ({duration} s, 3 seeds, rated 100 Hz)"
        ),
        &[
            "offered load",
            "realtime del.",
            "realtime P99 [ms]",
            "batched del.",
            "batched P99 [ms]",
            "background del.",
            "background P99 [ms]",
        ],
    );
    let mut prev_batched_ratio = f64::INFINITY;
    for point in &report.points {
        let load = point.params["load_x"].as_f64().unwrap();
        let rt_ratio = point.metrics["realtime_delivery_ratio"].mean;
        let rt_p99 = point.metrics["realtime_p99_ms"].mean;
        let batched_ratio = point.metrics["batched_delivery_ratio"].mean;
        let batched_p99 = point.metrics["batched_p99_ms"].mean;
        table.add_row(&[
            format!("{load}x"),
            fmt_pct(rt_ratio),
            fmt3(rt_p99),
            fmt_pct(batched_ratio),
            fmt3(batched_p99),
            fmt_pct(point.metrics["background_delivery_ratio"].mean),
            fmt3(point.metrics["background_p99_ms"].mean),
        ]);
        // The headline acceptance contract: Realtime holds its latency bound
        // at every offered load — including 10× and 20× rated — because it
        // sheds under pressure instead of queueing.
        assert!(
            rt_p99 <= REALTIME_BOUND_MS,
            "realtime P99 {rt_p99} ms broke the {REALTIME_BOUND_MS} ms bound at {load}x load"
        );
        // Batched degrades gracefully: its delivery ratio falls monotonically
        // with offered load (towards rated ÷ offered), and its tail latency
        // stays bounded by the mailbox instead of growing without limit.
        assert!(
            batched_ratio <= prev_batched_ratio + 0.05,
            "batched delivery ratio must fall (or hold) as load grows: \
             {batched_ratio} after {prev_batched_ratio} at {load}x"
        );
        assert!(
            batched_p99 < 2_000.0,
            "batched P99 {batched_p99} ms must stay mailbox-bounded at {load}x load"
        );
        prev_batched_ratio = batched_ratio;
    }
    table.print();
    println!(
        "Expectation (ROADMAP item 3): at 10× rated traffic the Realtime class still meets its\n\
         {REALTIME_BOUND_MS} ms P99 bound by shedding load (drop-on-pressure), Batched keeps a \
         rated-capacity\ntrickle with mailbox-bounded tail latency (drop-oldest), and the large \
         Background mailbox\nabsorbs the bursts between bulk drains."
    );
}

fn main() {
    let quick = quick_mode("E08_QUICK");
    qos_admission_campaign();
    overload_campaign(quick);
}

//! E08 — Event-channel QoS assessment and adaptation (§V-B, Fig. 5).
//!
//! Three event channels with different QoS requirements — an in-vehicle
//! brake command, the V2V lead-state stream and a strict V2V hazard warning
//! — are three campaign entries over the `middleware-qos` family, whose QoS
//! contract (network segment, latency deadline, delivery-ratio floor) is
//! parameterised.  The `degrade` axis shows the dynamic re-assessment
//! reacting when the monitored wireless capability degrades mid-run.

use karyon_bench::run_campaign;
use karyon_sim::table::{fmt3, fmt_pct};
use karyon_sim::Table;

const SPEC: &str = r#"{
  "name": "e08-middleware-qos", "seed": 3,
  "entries": [
    {"scenario": "middleware-qos", "replications": 3, "duration_secs": 10,
     "grid": {"network": ["local"], "max_latency_ms": [2],
              "min_delivery_ratio": [0.99], "rate_hz": [50.0],
              "degrade": [false, true]}},
    {"scenario": "middleware-qos", "replications": 3, "duration_secs": 10,
     "grid": {"network": ["wireless"], "max_latency_ms": [60],
              "min_delivery_ratio": [0.9], "rate_hz": [50.0],
              "degrade": [false, true]}},
    {"scenario": "middleware-qos", "replications": 3, "duration_secs": 10,
     "grid": {"network": ["wireless"], "max_latency_ms": [10],
              "min_delivery_ratio": [0.99], "rate_hz": [20.0],
              "degrade": [false, true]}}
  ]
}"#;

fn channel_label(network: &str, latency: i64) -> &'static str {
    match (network, latency) {
        ("local", _) => "brake-command (local, 2 ms)",
        (_, 60) => "lead-state (V2V, 60 ms)",
        _ => "hazard-warning (V2V, 10 ms)",
    }
}

fn main() {
    let (report, _, _) = run_campaign(SPEC);
    assert_eq!(report.suspect_runs(), 0, "the publish loop never schedules into the past");
    let mut table = Table::new(
        "E08 — event-channel QoS admission and delivered quality (10 s, 3 seeds)",
        &[
            "channel",
            "degraded mid-run",
            "admitted",
            "delivered/published",
            "mean latency [ms]",
            "deadline misses",
            "admitted after",
        ],
    );
    for point in &report.points {
        let network = point.params["network"].as_str().unwrap();
        let latency = point.params["max_latency_ms"].as_i64().unwrap();
        table.add_row(&[
            channel_label(network, latency).to_string(),
            point.params["degrade"].to_string(),
            fmt_pct(point.metrics["admitted"].mean),
            fmt_pct(point.metrics["delivery_ratio"].mean),
            fmt3(point.metrics["mean_latency_ms"].mean),
            fmt3(point.metrics["missed_deadlines"].mean),
            fmt_pct(point.metrics["admitted_after"].mean),
        ]);
        // Consistency with the pre-refactor harness: the strict
        // hazard-warning channel is rejected over the wireless segment at
        // announcement time; the others are admitted.
        let expected_admission = if network == "wireless" && latency == 10 { 0.0 } else { 1.0 };
        assert_eq!(
            point.metrics["admitted"].mean,
            expected_admission,
            "admission decision changed for {}",
            point.params_label()
        );
    }
    table.print();
    println!(
        "Expectation (paper §V-B): the strict hazard-warning channel cannot be guaranteed over the\n\
         wireless segment and is rejected at announcement time; the in-vehicle channel keeps\n\
         sub-millisecond latency; when the monitored capability degrades, the lead-state channel\n\
         loses its admission — the trigger the safety kernel uses to lower the LoS."
    );
}

//! E07 — Self-stabilizing end-to-end FIFO delivery (§V-A2).
//!
//! 200 messages are pushed through a bounded-capacity channel that omits,
//! duplicates and reorders packets, from both a clean and a corrupted initial
//! configuration.  The error-rate/capacity pairs of the seed harness are
//! campaign entries over the `end-to-end` family; the harness renders
//! overhead (rounds per delivered message), the eventual-FIFO verdict and
//! how much garbage the corrupted state produced.

use karyon_bench::run_campaign;
use karyon_sim::table::fmt3;
use karyon_sim::Table;

const SPEC: &str = r#"{
  "name": "e07-end-to-end", "seed": 77,
  "entries": [
    {"scenario": "end-to-end", "replications": 3,
     "grid": {"omission": [0.0], "duplication": [0.0], "capacity": [4],
              "corrupt": [false, true], "messages": [200]}},
    {"scenario": "end-to-end", "replications": 3,
     "grid": {"omission": [0.1], "duplication": [0.1], "capacity": [8],
              "corrupt": [false, true], "messages": [200]}},
    {"scenario": "end-to-end", "replications": 3,
     "grid": {"omission": [0.3], "duplication": [0.3], "capacity": [8],
              "corrupt": [false, true], "messages": [200]}},
    {"scenario": "end-to-end", "replications": 3,
     "grid": {"omission": [0.3], "duplication": [0.3], "capacity": [16],
              "corrupt": [false, true], "messages": [200]}}
  ]
}"#;

fn main() {
    let (report, _, _) = run_campaign(SPEC);
    let mut table = Table::new(
        "E07 — self-stabilizing end-to-end FIFO over an omitting/duplicating/reordering channel (200 msgs, 3 seeds)",
        &[
            "omission",
            "duplication",
            "capacity",
            "initial state",
            "rounds/message",
            "eventual FIFO ok",
            "garbage delivered",
            "lost prefix",
        ],
    );
    for point in &report.points {
        let corrupt = point.params["corrupt"].as_bool().unwrap();
        table.add_row(&[
            fmt3(point.params["omission"].as_f64().unwrap()),
            fmt3(point.params["duplication"].as_f64().unwrap()),
            point.params["capacity"].to_string(),
            if corrupt { "corrupted" } else { "clean" }.to_string(),
            fmt3(point.metrics["rounds_per_message"].mean),
            (point.metrics["eventual_fifo"].mean == 1.0).to_string(),
            fmt3(point.metrics["garbage_delivered"].mean),
            fmt3(point.metrics["lost_prefix"].mean),
        ]);
        // Consistency with the pre-refactor harness: eventual FIFO holds in
        // every configuration, and a clean start delivers zero garbage.
        assert_eq!(
            point.metrics["eventual_fifo"].mean,
            1.0,
            "eventual FIFO broke for {}",
            point.params_label()
        );
        if !corrupt {
            assert_eq!(
                point.metrics["garbage_delivered"].mean,
                0.0,
                "a clean start delivered garbage for {}",
                point.params_label()
            );
        }
    }
    table.print();
    println!(
        "Expectation (paper §V-A2): eventual FIFO delivery without omission or duplication holds in\n\
         every configuration; a corrupted initial channel state costs at most a bounded garbage\n\
         prefix; overhead grows with the error rates and the channel capacity (the acknowledgement\n\
         threshold scales with the capacity)."
    );
}

//! E07 — Self-stabilizing end-to-end FIFO delivery (§V-A2).
//!
//! 200 messages are pushed through a bounded-capacity channel that omits,
//! duplicates and reorders packets, from both a clean and a corrupted initial
//! configuration.  The table reports overhead (rounds per delivered message),
//! whether eventual FIFO/no-omission/no-duplication held, and how much
//! garbage the corrupted state produced.

use karyon_net::end_to_end::{eventually_fifo, E2EConfig, EndToEndSession};
use karyon_sim::table::fmt3;
use karyon_sim::Table;

fn run(config: &E2EConfig, corrupt: bool, seed: u64) -> (f64, bool, usize, usize) {
    let mut session = EndToEndSession::new(config, seed);
    if corrupt {
        session.corrupt_initial_state(1_000_000);
    }
    let sent: Vec<u64> = (1..=200).collect();
    for &m in &sent {
        session.sender.enqueue(m);
    }
    session.run_until_drained(10_000_000);
    let delivered = session.receiver.delivered().to_vec();
    let garbage = delivered.iter().filter(|p| !sent.contains(p)).count();
    let real: Vec<u64> = delivered.iter().copied().filter(|p| sent.contains(p)).collect();
    let lost_prefix = sent.len().saturating_sub(real.len());
    (
        session.rounds() as f64 / sent.len() as f64,
        eventually_fifo(&sent, &delivered, 3),
        garbage,
        lost_prefix,
    )
}

fn main() {
    let mut table = Table::new(
        "E07 — self-stabilizing end-to-end FIFO over an omitting/duplicating/reordering channel (200 msgs)",
        &[
            "omission",
            "duplication",
            "capacity",
            "initial state",
            "rounds/message",
            "eventual FIFO ok",
            "garbage delivered",
            "lost prefix",
        ],
    );
    let sweeps = vec![(0.0, 0.0, 4usize), (0.1, 0.1, 8), (0.3, 0.3, 8), (0.3, 0.3, 16)];
    for (omission, duplication, capacity) in sweeps {
        for corrupt in [false, true] {
            let config = E2EConfig { capacity, omission, duplication, reorder: true };
            let (rounds, fifo_ok, garbage, lost) = run(&config, corrupt, 77);
            table.add_row(&[
                fmt3(omission),
                fmt3(duplication),
                capacity.to_string(),
                if corrupt { "corrupted" } else { "clean" }.to_string(),
                fmt3(rounds),
                fifo_ok.to_string(),
                garbage.to_string(),
                lost.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "Expectation (paper §V-A2): eventual FIFO delivery without omission or duplication holds in\n\
         every configuration; a corrupted initial channel state costs at most a bounded garbage\n\
         prefix; overhead grows with the error rates and the channel capacity (the acknowledgement\n\
         threshold scales with the capacity)."
    );
}

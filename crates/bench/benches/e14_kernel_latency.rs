//! E14 — Safety-kernel cycle latency and the bounded LoS-switch argument (§III).
//!
//! Measures the wall-clock cost of one safety-manager evaluation cycle as the
//! rule set grows, and reports the design-time worst-case reaction bound
//! (cycle period + switch bound) against the tightest hazard reaction bound.
//!
//! The model quantities come from the `kernel-latency` scenario family,
//! executed through the runner; the wall-clock cycle cost is measured
//! *around* the campaigns — never inside the family, which stays
//! deterministic so campaign reports remain bit-identical for any worker
//! count.  Per rule-set size two campaigns run (full and one-tenth cycle
//! counts) and the cost per cycle is the elapsed-time difference over the
//! cycle difference, cancelling the runner's fixed per-campaign overhead.  `E14_QUICK=1` (or `--quick`) runs 10× fewer cycles;
//! the design-time bound figures are identical in both modes and are
//! asserted against the pre-refactor seed numbers (150 ms reaction vs the
//! 500 ms hazard bound).

use karyon_bench::{quick_mode, run_campaign};
use karyon_sim::table::fmt3;
use karyon_sim::Table;

fn spec(rules_per_level: usize, cycles: u64) -> String {
    format!(
        r#"{{
  "name": "e14-kernel-latency-{rules_per_level}", "seed": 1,
  "entries": [
    {{"scenario": "kernel-latency", "replications": 1,
     "grid": {{"rules_per_level": [{rules_per_level}], "cycles": [{cycles}],
              "cycle_period_ms": [100], "validity_threshold": [0.6],
              "hazard_bound_ms": [500], "levels": [2]}}}}
  ]
}}"#
    )
}

fn main() {
    let cycles: u64 = if quick_mode("E14_QUICK") { 200 } else { 2_000 };
    let mut table = Table::new(
        "E14 — safety-kernel evaluation cost and reaction bound (cycle period 100 ms)",
        &[
            "rules per level",
            "data items",
            "mean cycle cost [us]",
            "worst-case reaction [ms]",
            "tightest hazard bound [ms]",
            "bound satisfied",
        ],
    );
    let baseline_cycles = (cycles / 10).max(1);
    for &rules in &[2usize, 8, 32, 128] {
        let (report, _, elapsed) = run_campaign(&spec(rules, cycles));
        let point = &report.points[0];
        // A whole-campaign wall clock includes fixed overhead (spec parse,
        // registry build, worker spawn, aggregation) that would inflate the
        // per-cycle figure at small rule counts.  Differential measurement
        // cancels it: run the same campaign at a tenth of the cycles and
        // divide the elapsed-time difference by the cycle difference.
        let (_, _, baseline_elapsed) = run_campaign(&spec(rules, baseline_cycles));
        let delta_s = (elapsed.as_secs_f64() - baseline_elapsed.as_secs_f64()).max(0.0);
        let mean_us = delta_s * 1e6 / (cycles - baseline_cycles).max(1) as f64;
        let reaction_ms = point.metrics["worst_case_reaction_ms"].mean;
        let tightest_ms = point.metrics["tightest_hazard_bound_ms"].mean;
        let satisfied = point.metrics["bound_satisfied"].mean == 1.0;
        table.add_row(&[
            rules.to_string(),
            rules.to_string(),
            fmt3(mean_us),
            fmt3(reaction_ms),
            fmt3(tightest_ms),
            satisfied.to_string(),
        ]);
        // Consistency with the pre-refactor harness (seed numbers): a
        // 100 ms cycle period + 50 ms switch bound give a 150 ms worst-case
        // reaction, far below the 500 ms hazard bound, for every rule-set
        // size and in quick mode too.
        assert_eq!(reaction_ms, 150.0, "worst-case reaction changed for {rules} rules/level");
        assert_eq!(tightest_ms, 500.0, "hazard bound changed for {rules} rules/level");
        assert!(satisfied, "the safety argument's bound check failed for {rules} rules/level");
        assert_eq!(point.metrics["evaluations"].mean, cycles as f64);
    }
    table.print();
    println!(
        "Expectation (paper §III): the evaluation cycle is microseconds even for large rule sets —\n\
         orders of magnitude below the cycle period — so the worst-case reaction (one cycle period\n\
         plus the bounded switch time) stays far below the tightest hazard reaction bound, which is\n\
         the property the safety argument rests on."
    );
}

//! E14 — Safety-kernel cycle latency and the bounded LoS-switch argument (§III).
//!
//! Measures the wall-clock cost of one safety-manager evaluation cycle as the
//! rule set grows, and reports the design-time worst-case reaction bound
//! (cycle period + switch bound) against the tightest hazard reaction bound.

use std::time::Instant;

use karyon_core::los::Asil;
use karyon_core::{
    Condition, DesignTimeSafetyInfo, Hazard, HazardAnalysis, LevelOfService, LosSpec, SafetyKernel,
    SafetyRule,
};
use karyon_sensors::Validity;
use karyon_sim::table::fmt3;
use karyon_sim::{SimDuration, SimTime, Table};

fn design_with_rules(rules_per_level: usize) -> DesignTimeSafetyInfo {
    let mut hazards = HazardAnalysis::new();
    hazards.add(Hazard::new("H1", "generic hazard", Asil::C, SimDuration::from_millis(500)));
    let mut levels = vec![LosSpec {
        level: LevelOfService(0),
        description: "fallback".into(),
        rules: vec![],
        asil: Asil::QM,
        performance_index: 1.0,
    }];
    for level in 1u8..=2 {
        let rules: Vec<SafetyRule> = (0..rules_per_level)
            .map(|i| {
                SafetyRule::new(
                    &format!("R{level}-{i}"),
                    Condition::All(vec![
                        Condition::MinValidity { item: format!("item-{i}"), threshold: 0.6 },
                        Condition::MaxAge {
                            item: format!("item-{i}"),
                            bound: SimDuration::from_millis(500),
                        },
                        Condition::ComponentHealthy { component: format!("component-{i}") },
                    ]),
                )
            })
            .collect();
        levels.push(LosSpec {
            level: LevelOfService(level),
            description: format!("level {level}"),
            rules,
            asil: Asil::B,
            performance_index: level as f64 + 1.0,
        });
    }
    DesignTimeSafetyInfo::new("bench", levels, hazards, SimDuration::from_millis(50))
}

fn main() {
    let mut table = Table::new(
        "E14 — safety-kernel evaluation cost and reaction bound (cycle period 100 ms)",
        &[
            "rules per level",
            "data items",
            "mean cycle cost [us]",
            "worst-case reaction [ms]",
            "tightest hazard bound [ms]",
            "bound satisfied",
        ],
    );
    for &rules in &[2usize, 8, 32, 128] {
        let design = design_with_rules(rules);
        let tightest = design.hazards().tightest_reaction_bound().unwrap();
        let mut kernel = SafetyKernel::new(design, SimDuration::from_millis(100));
        // Populate the runtime store.
        for i in 0..rules {
            kernel.info_mut().update_data(
                &format!("item-{i}"),
                1.0,
                Validity::new(0.9),
                SimTime::from_millis(1),
            );
            kernel.info_mut().update_health(
                &format!("component-{i}"),
                true,
                SimTime::from_millis(1),
            );
        }
        let iterations = 2_000u64;
        let start = Instant::now();
        for i in 0..iterations {
            kernel.run_cycle(SimTime::from_millis(10 + i));
        }
        let mean_us = start.elapsed().as_secs_f64() * 1e6 / iterations as f64;
        let reaction = kernel.worst_case_reaction();
        table.add_row(&[
            rules.to_string(),
            rules.to_string(),
            fmt3(mean_us),
            fmt3(reaction.as_secs_f64() * 1e3),
            fmt3(tightest.as_secs_f64() * 1e3),
            (reaction <= tightest).to_string(),
        ]);
    }
    table.print();
    println!(
        "Expectation (paper §III): the evaluation cycle is microseconds even for large rule sets —\n\
         orders of magnitude below the cycle period — so the worst-case reaction (one cycle period\n\
         plus the bounded switch time) stays far below the tightest hazard reaction bound, which is\n\
         the property the safety argument rests on."
    );
}

//! E05 — Self-stabilizing TDMA slot allocation (§V-A2).
//!
//! Measures how many TDMA frames the allocation needs to converge to a
//! collision-free schedule, starting from empty claims, from an adversarial
//! all-claim-slot-0 configuration, and after churn (a node joining a
//! converged network), for several network sizes.  The sweep is a campaign
//! spec over the `tdma` family (1 ms slots: the 5 s duration budgets ~300
//! frames, matching the seed harness's hunt limit).

use karyon_bench::run_campaign;
use karyon_sim::table::fmt3;
use karyon_sim::Table;

const SPEC: &str = r#"{
  "name": "e05-selfstab-tdma", "seed": 40,
  "entries": [
    {"scenario": "tdma", "replications": 5, "duration_secs": 5,
     "grid": {"nodes": [4, 8, 12], "adversarial": [false, true],
              "slots_per_frame": [16], "churn": [false]}},
    {"scenario": "tdma", "replications": 5, "duration_secs": 5,
     "grid": {"nodes": [8], "adversarial": [false],
              "slots_per_frame": [16], "churn": [true]}}
  ]
}"#;

fn main() {
    let (report, _, _) = run_campaign(SPEC);
    let mut table = Table::new(
        "E05 — self-stabilizing TDMA convergence (16 slots/frame, no external time source, 5 seeds)",
        &[
            "nodes",
            "initial state",
            "frames to converge (mean)",
            "reselections (mean)",
            "collisions after convergence (10 frames)",
        ],
    );
    for point in &report.points {
        let churn = point.params["churn"].as_bool().unwrap();
        let label = if churn {
            "converged, then join"
        } else if point.params["adversarial"].as_bool().unwrap() {
            "all claim slot 0"
        } else {
            "empty claims"
        };
        let frames = if churn {
            fmt3(point.metrics["frames_to_converge_after_join"].mean)
        } else {
            fmt3(point.metrics["frames_to_converge"].mean)
        };
        let nodes = if churn {
            format!("{}+1 (join)", point.params["nodes"])
        } else {
            point.params["nodes"].to_string()
        };
        // The reselection/collision metrics cover the pre-join network only,
        // so the churn row shows "-" there, exactly like the seed harness.
        let (reselections, post_collisions) = if churn {
            ("-".into(), "-".into())
        } else {
            (
                fmt3(point.metrics["reselections"].mean),
                fmt3(point.metrics["post_convergence_collisions"].mean),
            )
        };
        table.add_row(&[nodes, label.to_string(), frames, reselections, post_collisions]);
        // Consistency with the pre-refactor harness: every configuration
        // converges within the frame budget (the joined network included)
        // and stays silent afterwards.
        assert_eq!(
            point.metrics["converged"].mean,
            1.0,
            "convergence regressed for {}",
            point.params_label()
        );
        if churn {
            assert_eq!(
                point.metrics["reconverged_after_join"].mean,
                1.0,
                "the network failed to re-stabilize after churn for {}",
                point.params_label()
            );
        } else {
            assert_eq!(
                point.metrics["post_convergence_collisions"].mean,
                0.0,
                "post-convergence collisions appeared for {}",
                point.params_label()
            );
        }
    }
    table.print();
    println!(
        "Expectation (paper §V-A2): convergence within a small number of frames from any initial\n\
         configuration (including adversarial ones and after churn), and zero collisions once\n\
         converged — without GPS or any other common time source."
    );
}

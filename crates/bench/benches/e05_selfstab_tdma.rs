//! E05 — Self-stabilizing TDMA slot allocation (§V-A2).
//!
//! Measures how many TDMA frames the allocation needs to converge to a
//! collision-free schedule, starting from empty claims, from an adversarial
//! all-claim-slot-0 configuration, and after churn (a node joining a
//! converged network), for several network sizes.

use karyon_net::mac::selfstab_tdma::allocation_is_collision_free;
use karyon_net::mac::{MacSimConfig, MacSimulation};
use karyon_net::{MediumConfig, NodeId, SelfStabTdmaMac, WirelessMedium};
use karyon_sim::{SimDuration, Table, Vec2};

const SLOTS_PER_FRAME: u16 = 16;
const MAX_FRAMES: u64 = 300;

fn build(nodes: u32, seed: u64, adversarial: bool) -> MacSimulation<SelfStabTdmaMac> {
    let medium =
        WirelessMedium::new(MediumConfig { range: 1_000.0, loss_probability: 0.0, channels: 1 });
    let mut sim = MacSimulation::new(
        medium,
        MacSimConfig {
            slot_duration: SimDuration::from_millis(1),
            slots_per_frame: SLOTS_PER_FRAME,
        },
        seed,
    );
    for i in 0..nodes {
        let mac = if adversarial {
            SelfStabTdmaMac::with_initial_claim(0)
        } else {
            SelfStabTdmaMac::new()
        };
        sim.add_node(NodeId(i), mac, Vec2::new(i as f64 * 10.0, 0.0));
    }
    sim
}

fn converged(sim: &MacSimulation<SelfStabTdmaMac>) -> bool {
    let claims: Vec<(NodeId, Option<u16>)> =
        sim.node_ids().iter().map(|id| (*id, sim.mac(*id).unwrap().claimed_slot())).collect();
    allocation_is_collision_free(&claims, |a, b| sim.medium().in_range(a, b))
}

/// Runs frames until the allocation is collision-free; returns frames used.
fn frames_to_converge(sim: &mut MacSimulation<SelfStabTdmaMac>) -> u64 {
    for frame in 1..=MAX_FRAMES {
        sim.run_slots(SLOTS_PER_FRAME as u64);
        if converged(sim) {
            return frame;
        }
    }
    MAX_FRAMES
}

fn main() {
    let mut table = Table::new(
        "E05 — self-stabilizing TDMA convergence (16 slots/frame, no external time source)",
        &[
            "nodes",
            "initial state",
            "frames to converge",
            "reselections (total)",
            "collisions after convergence (10 frames)",
        ],
    );

    for &nodes in &[4u32, 8, 12] {
        for &(label, adversarial) in &[("empty claims", false), ("all claim slot 0", true)] {
            let mut sim = build(nodes, 40 + nodes as u64, adversarial);
            let frames = frames_to_converge(&mut sim);
            let reselections: u64 =
                sim.node_ids().iter().map(|id| sim.mac(*id).unwrap().reselections()).sum();
            let before = sim.metrics().collisions;
            sim.run_slots(SLOTS_PER_FRAME as u64 * 10);
            let post = sim.metrics().collisions - before;
            table.add_row(&[
                nodes.to_string(),
                label.to_string(),
                frames.to_string(),
                reselections.to_string(),
                post.to_string(),
            ]);
        }
    }

    // Churn: a converged 8-node network joined by a new node.
    let mut sim = build(8, 99, false);
    let _ = frames_to_converge(&mut sim);
    sim.add_node(NodeId(100), SelfStabTdmaMac::new(), Vec2::new(35.0, 0.0));
    let frames_after_join = frames_to_converge(&mut sim);
    table.add_row(&[
        "8+1 (join)".into(),
        "converged, then join".into(),
        frames_after_join.to_string(),
        "-".into(),
        "0".into(),
    ]);

    table.print();
    println!(
        "Expectation (paper §V-A2): convergence within a small number of frames from any initial\n\
         configuration (including adversarial ones and after churn), and zero collisions once\n\
         converged — without GPS or any other common time source."
    );
}

//! Criterion micro-benchmarks for the hot paths of the KARYON reproduction:
//! the safety-manager evaluation cycle, validity combination, Marzullo
//! fusion, self-stabilizing TDMA slot handling and event-channel publication.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use karyon_core::los::Asil;
use karyon_core::{
    Condition, DesignTimeSafetyInfo, HazardAnalysis, LevelOfService, LosSpec, SafetyKernel,
    SafetyRule,
};
use karyon_middleware::{
    EventBus, NetworkCapability, NetworkId, Payload, QosClass, QosRequirement,
};
use karyon_net::mac::{MacSimConfig, MacSimulation};
use karyon_net::{MediumConfig, NodeId, SelfStabTdmaMac, WirelessMedium};
use karyon_sensors::abstract_sensor::combine_outcomes;
use karyon_sensors::detectors::{DetectionOutcome, DetectorClass};
use karyon_sensors::{marzullo_fuse, Interval, Validity};
use karyon_sim::{SimDuration, SimTime, Vec2};

fn kernel_for_bench() -> SafetyKernel {
    let levels = vec![
        LosSpec {
            level: LevelOfService(0),
            description: "fallback".into(),
            rules: vec![],
            asil: Asil::QM,
            performance_index: 1.0,
        },
        LosSpec {
            level: LevelOfService(1),
            description: "cooperative".into(),
            rules: (0..16)
                .map(|i| {
                    SafetyRule::new(
                        &format!("R{i}"),
                        Condition::MinValidity { item: format!("item-{i}"), threshold: 0.5 },
                    )
                })
                .collect(),
            asil: Asil::B,
            performance_index: 2.0,
        },
    ];
    let design = DesignTimeSafetyInfo::new(
        "bench",
        levels,
        HazardAnalysis::new(),
        SimDuration::from_millis(50),
    );
    let mut kernel = SafetyKernel::new(design, SimDuration::from_millis(100));
    for i in 0..16 {
        kernel.info_mut().update_data(&format!("item-{i}"), 1.0, Validity::new(0.8), SimTime::ZERO);
    }
    kernel
}

fn bench_safety_cycle(c: &mut Criterion) {
    let mut kernel = kernel_for_bench();
    let mut t = 0u64;
    c.bench_function("safety_kernel_cycle_16_rules", |b| {
        b.iter(|| {
            t += 1;
            black_box(kernel.run_cycle(SimTime::from_millis(t)));
        })
    });
}

fn bench_validity_combination(c: &mut Criterion) {
    let outcomes: Vec<DetectionOutcome> = (0..8)
        .map(|i| DetectionOutcome::graded(Validity::new(1.0 - i as f64 * 0.05)))
        .chain(std::iter::once(DetectionOutcome::pass(DetectorClass::Dominant)))
        .collect();
    c.bench_function("combine_9_detector_outcomes", |b| {
        b.iter(|| black_box(combine_outcomes(black_box(&outcomes))))
    });
}

fn bench_marzullo(c: &mut Criterion) {
    let intervals: Vec<Interval> =
        (0..9).map(|i| Interval::new(10.0 + i as f64 * 0.1, 12.0 + i as f64 * 0.1)).collect();
    c.bench_function("marzullo_fuse_9_intervals_f2", |b| {
        b.iter(|| black_box(marzullo_fuse(black_box(&intervals), 2)))
    });
}

fn bench_tdma_frame(c: &mut Criterion) {
    c.bench_function("selfstab_tdma_frame_8_nodes", |b| {
        b.iter_batched(
            || {
                let medium = WirelessMedium::new(MediumConfig {
                    range: 1_000.0,
                    loss_probability: 0.0,
                    channels: 1,
                });
                let mut sim = MacSimulation::new(
                    medium,
                    MacSimConfig {
                        slot_duration: SimDuration::from_millis(1),
                        slots_per_frame: 16,
                    },
                    7,
                );
                for i in 0..8 {
                    sim.add_node(
                        NodeId(i),
                        SelfStabTdmaMac::new(),
                        Vec2::new(i as f64 * 10.0, 0.0),
                    );
                }
                sim
            },
            |mut sim| {
                sim.run_slots(16);
                black_box(sim.metrics().collisions)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_event_publish(c: &mut Criterion) {
    // Steady-state v2 hot path: 16 batched mailboxes at capacity, so every
    // publish routes through the cached topic route and the displace-push
    // overload path — zero allocation per iteration.
    let mut bus = EventBus::new(5);
    bus.attach_network(NetworkId(0), NetworkCapability::local_bus());
    for _ in 0..16 {
        bus.topic("bench.topic").subscribe(QosClass::Batched);
    }
    let publisher = bus.topic("bench.topic").announce(QosRequirement::best_effort());
    let mut t = 0u64;
    c.bench_function("event_bus_publish_16_subscribers", |b| {
        b.iter(|| {
            t += 1;
            black_box(bus.publish(&publisher, Payload::tagged(t), SimTime::from_millis(t)))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_safety_cycle, bench_validity_combination, bench_marzullo, bench_tdma_frame, bench_event_publish
}
criterion_main!(benches);

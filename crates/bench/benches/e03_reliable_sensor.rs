//! E03 — The abstract reliable sensor vs. a single abstract sensor (§IV-B, Fig. 3).
//!
//! A triplicated range sensor fused with Marzullo intersection + analytical
//! redundancy is compared against a single sensor while one replica suffers
//! each fault class.  The sweep is a campaign spec over the
//! `reliable-sensor` family (fault on replica 0 from t=10 s); the harness
//! only renders the aggregates.

use karyon_bench::run_campaign;
use karyon_sim::table::{fmt3, fmt_pct};
use karyon_sim::Table;

const SPEC: &str = r#"{
  "name": "e03-reliable-sensor", "seed": 11,
  "entries": [
    {"scenario": "reliable-sensor", "replications": 3, "duration_secs": 150,
     "grid": {"fault": ["none", "permanent", "stochastic", "stuck"],
              "config": ["single", "reliable"],
              "offset": [25.0], "std_dev": [10.0]}}
  ]
}"#;

fn fault_label(fault: &str) -> &'static str {
    match fault {
        "none" => "no fault",
        "permanent" => "permanent offset 25 m",
        "stochastic" => "stochastic offset sigma=10 m",
        "stuck" => "stuck-at",
        _ => "?",
    }
}

fn main() {
    let (report, _, _) = run_campaign(SPEC);
    let mut table = Table::new(
        "E03 — single abstract sensor vs. abstract reliable sensor (fault on one replica from t=10 s)",
        &["fault on replica", "config", "mean |error| [m]", "max |error| [m]", "availability"],
    );
    for point in &report.points {
        let config = match point.params["config"].as_str().unwrap() {
            "single" => "single sensor",
            _ => "reliable (3 replicas)",
        };
        table.add_row(&[
            fault_label(point.params["fault"].as_str().unwrap()).to_string(),
            config.to_string(),
            fmt3(point.metrics["mean_abs_error_m"].mean),
            fmt3(point.metrics["max_abs_error_m"].mean),
            fmt_pct(point.metrics["availability"].mean),
        ]);
    }
    table.print();
    println!(
        "Expectation (paper §IV-B): component + analytical + temporal redundancy masks any single\n\
         faulty replica — the reliable sensor's error stays near the fault-free level and its\n\
         availability near 100%, while the single sensor degrades or becomes unavailable."
    );
}

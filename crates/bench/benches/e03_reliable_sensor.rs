//! E03 — The abstract reliable sensor vs. a single abstract sensor (§IV-B, Fig. 3).
//!
//! A triplicated range sensor fused with Marzullo intersection + analytical
//! redundancy is compared against a single sensor while one replica suffers
//! each fault class.  Expectation: the reliable sensor masks a single faulty
//! replica (small error, near-full availability) where the single sensor
//! either fails or reports large errors.

use karyon_sensors::faults::FaultSchedule;
use karyon_sensors::reliable::ReliableSensorConfig;
use karyon_sensors::{
    AbstractSensor, RangeCheckDetector, RangeSensor, RateOfChangeDetector, ReliableSensor,
    SensorFault, StuckAtDetector,
};
use karyon_sim::table::{fmt3, fmt_pct};
use karyon_sim::{SimTime, Table};

fn replica(seed: u64) -> AbstractSensor {
    let mut s = AbstractSensor::new(
        "range-replica",
        Box::new(RangeSensor { noise_std: 0.4, max_range: 300.0, dropout_probability: 0.0 }),
        seed,
    );
    s.add_detector(Box::new(RangeCheckDetector::new(0.0, 300.0)));
    s.add_detector(Box::new(RateOfChangeDetector::new(40.0)));
    s.add_detector(Box::new(StuckAtDetector::new(1e-6, 8)));
    s
}

fn truth(i: u64) -> f64 {
    80.0 + 15.0 * (i as f64 * 0.02).sin()
}

fn run_single(fault: Option<SensorFault>, seed: u64) -> (f64, f64, f64) {
    let mut s = replica(seed);
    if let Some(f) = fault {
        s.injector_mut().inject(f, FaultSchedule::from(SimTime::from_secs(10)));
    }
    let mut err_sum = 0.0;
    let mut err_max: f64 = 0.0;
    let mut available = 0u64;
    let n = 1_500u64;
    for i in 0..n {
        let now = SimTime::from_millis(i * 100);
        let r = s.acquire(truth(i), now);
        if !r.is_invalid() {
            available += 1;
            let e = (r.measurement.value - truth(i)).abs();
            err_sum += e;
            err_max = err_max.max(e);
        }
    }
    (err_sum / available.max(1) as f64, err_max, available as f64 / n as f64)
}

fn run_reliable(fault: Option<SensorFault>, seed: u64) -> (f64, f64, f64) {
    let replicas = vec![replica(seed), replica(seed + 100), replica(seed + 200)];
    let mut rs = ReliableSensor::new(replicas, ReliableSensorConfig::default());
    if let Some(f) = fault {
        rs.replica_mut(0).injector_mut().inject(f, FaultSchedule::from(SimTime::from_secs(10)));
    }
    let mut err_sum = 0.0;
    let mut err_max: f64 = 0.0;
    let mut available = 0u64;
    let n = 1_500u64;
    for i in 0..n {
        let now = SimTime::from_millis(i * 100);
        let r = rs.acquire(truth(i), now);
        if !r.is_invalid() {
            available += 1;
            let e = (r.measurement.value - truth(i)).abs();
            err_sum += e;
            err_max = err_max.max(e);
        }
    }
    (err_sum / available.max(1) as f64, err_max, available as f64 / n as f64)
}

fn main() {
    let faults: Vec<(&str, Option<SensorFault>)> = vec![
        ("no fault", None),
        ("permanent offset 25 m", Some(SensorFault::PermanentOffset { offset: 25.0 })),
        ("stochastic offset sigma=10 m", Some(SensorFault::StochasticOffset { std_dev: 10.0 })),
        ("stuck-at", Some(SensorFault::StuckAt { stuck_value: None })),
    ];
    let mut table = Table::new(
        "E03 — single abstract sensor vs. abstract reliable sensor (fault on one replica from t=10 s)",
        &["fault on replica", "config", "mean |error| [m]", "max |error| [m]", "availability"],
    );
    for (name, fault) in faults {
        let (mean_s, max_s, avail_s) = run_single(fault, 11);
        let (mean_r, max_r, avail_r) = run_reliable(fault, 11);
        table.add_row(&[
            name.to_string(),
            "single sensor".into(),
            fmt3(mean_s),
            fmt3(max_s),
            fmt_pct(avail_s),
        ]);
        table.add_row(&[
            name.to_string(),
            "reliable (3 replicas)".into(),
            fmt3(mean_r),
            fmt3(max_r),
            fmt_pct(avail_r),
        ]);
    }
    table.print();
    println!(
        "Expectation (paper §IV-B): component + analytical + temporal redundancy masks any single\n\
         faulty replica — the reliable sensor's error stays near the fault-free level and its\n\
         availability near 100%, while the single sensor degrades or becomes unavailable."
    );
}

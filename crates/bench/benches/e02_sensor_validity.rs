//! E02 — Validity estimation under the five sensor-fault classes (§IV-A, Fig. 2).
//!
//! Injects each of the five KARYON fault classes into an abstract range
//! sensor and reports how the combined validity attribute responds:
//! dominant-detector faults (stuck-at, long delay) must drive the validity to
//! zero, graded faults must lower it, and the fault-free baseline must stay
//! near 100 %.

use karyon_sensors::faults::FaultSchedule;
use karyon_sensors::{
    AbstractSensor, RangeCheckDetector, RangeSensor, RateOfChangeDetector, SensorFault,
    StuckAtDetector, TimeoutDetector,
};
use karyon_sim::table::fmt_pct;
use karyon_sim::{SimDuration, SimTime, Table};

fn sensor(seed: u64) -> AbstractSensor {
    let mut s = AbstractSensor::new(
        "front-range",
        Box::new(RangeSensor { noise_std: 0.3, max_range: 200.0, dropout_probability: 0.0 }),
        seed,
    );
    s.add_detector(Box::new(RangeCheckDetector::new(0.0, 200.0)));
    s.add_detector(Box::new(TimeoutDetector::new(SimDuration::from_millis(400))));
    s.add_detector(Box::new(RateOfChangeDetector::new(40.0)));
    s.add_detector(Box::new(StuckAtDetector::new(1e-6, 8)));
    s
}

fn run(fault: Option<SensorFault>, seed: u64) -> (f64, f64, f64) {
    let mut s = sensor(seed);
    if let Some(f) = fault {
        s.injector_mut().inject(f, FaultSchedule::from(SimTime::from_secs(20)));
    }
    let mut sum_validity = 0.0;
    let mut invalid = 0u64;
    let mut degraded = 0u64;
    let mut samples = 0u64;
    for i in 0..2_000u64 {
        let now = SimTime::from_millis(i * 100);
        let truth = 60.0 + 10.0 * (i as f64 * 0.01).sin();
        let reading = s.acquire(truth, now);
        if now >= SimTime::from_secs(20) {
            samples += 1;
            sum_validity += reading.validity.fraction();
            if reading.is_invalid() {
                invalid += 1;
            }
            if reading.validity.fraction() < 0.5 {
                degraded += 1;
            }
        }
    }
    (
        sum_validity / samples as f64,
        invalid as f64 / samples as f64,
        degraded as f64 / samples as f64,
    )
}

fn main() {
    let cases: Vec<(&str, Option<SensorFault>)> = vec![
        ("no fault (baseline)", None),
        ("delay 1 s", Some(SensorFault::Delay { delay: SimDuration::from_secs(1) })),
        (
            "sporadic offset (p=0.2, 30 m)",
            Some(SensorFault::SporadicOffset { probability: 0.2, magnitude: 30.0 }),
        ),
        ("permanent offset 15 m", Some(SensorFault::PermanentOffset { offset: 15.0 })),
        ("stochastic offset sigma=8 m", Some(SensorFault::StochasticOffset { std_dev: 8.0 })),
        ("stuck-at", Some(SensorFault::StuckAt { stuck_value: None })),
    ];
    let mut table = Table::new(
        "E02 — data validity under the five KARYON sensor-fault classes (fault active from t=20 s)",
        &["fault class", "mean validity", "fraction invalid (0%)", "fraction validity<50%"],
    );
    for (name, fault) in cases {
        let (mean_validity, invalid, degraded) = run(fault, 7);
        table.add_row(&[
            name.to_string(),
            fmt_pct(mean_validity),
            fmt_pct(invalid),
            fmt_pct(degraded),
        ]);
    }
    table.print();
    println!(
        "Expectation (paper §IV): the fault-free sensor keeps ~100% validity; stuck-at and large\n\
         delay faults are rendered invalid by dominant detectors; offset faults lower the validity\n\
         gradually, shifting the accept/reject decision to the consumer."
    );
}

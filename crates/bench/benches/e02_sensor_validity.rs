//! E02 — Validity estimation under the five sensor-fault classes (§IV-A, Fig. 2).
//!
//! Injects each of the five KARYON fault classes into an abstract range
//! sensor and reports how the combined validity attribute responds.  The
//! sweep is a campaign spec over the `sensor-validity` family (fault active
//! from t=20 s, 10 Hz sampling, fault magnitudes at their defaults); the
//! harness only renders the aggregates.

use karyon_bench::run_campaign;
use karyon_sim::table::fmt_pct;
use karyon_sim::Table;

const SPEC: &str = r#"{
  "name": "e02-sensor-validity", "seed": 7,
  "entries": [
    {"scenario": "sensor-validity", "replications": 3, "duration_secs": 200,
     "grid": {"fault": ["none", "delay", "sporadic", "permanent", "stochastic", "stuck"]}}
  ]
}"#;

fn fault_label(fault: &str) -> &'static str {
    match fault {
        "none" => "no fault (baseline)",
        "delay" => "delay 1 s",
        "sporadic" => "sporadic offset (p=0.2, 30 m)",
        "permanent" => "permanent offset 15 m",
        "stochastic" => "stochastic offset sigma=8 m",
        "stuck" => "stuck-at",
        _ => "?",
    }
}

fn main() {
    let (report, _, _) = run_campaign(SPEC);
    let mut table = Table::new(
        "E02 — data validity under the five KARYON sensor-fault classes (fault active from t=20 s)",
        &["fault class", "mean validity", "fraction invalid (0%)", "fraction validity<50%"],
    );
    for point in &report.points {
        table.add_row(&[
            fault_label(point.params["fault"].as_str().unwrap()).to_string(),
            fmt_pct(point.metrics["mean_validity"].mean),
            fmt_pct(point.metrics["invalid_fraction"].mean),
            fmt_pct(point.metrics["degraded_fraction"].mean),
        ]);
    }
    table.print();
    println!(
        "Expectation (paper §IV): the fault-free sensor keeps ~100% validity; stuck-at and large\n\
         delay faults are rendered invalid by dominant detectors; offset faults lower the validity\n\
         gradually, shifting the accept/reject decision to the consumer."
    );
}

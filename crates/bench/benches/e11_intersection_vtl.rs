//! E11 — Intersection crossing with traffic-light failure and the virtual
//! traffic light fallback (§VI-A2).
//!
//! The arrival-rate × failure-handling sweep is a campaign spec over the
//! `intersection` family (the light failure covers the middle third of the
//! 10-minute run); the harness only renders the aggregates.

use karyon_bench::run_campaign;
use karyon_sim::table::{fmt3, fmt_pct};
use karyon_sim::Table;

const SPEC: &str = r#"{
  "name": "e11-intersection-vtl", "seed": 17,
  "entries": [
    {"scenario": "intersection", "replications": 3, "duration_secs": 600,
     "grid": {"arrivals_per_minute": [6.0, 12.0, 20.0], "light_fail": [false],
              "fallback": ["vtl"]}},
    {"scenario": "intersection", "replications": 3, "duration_secs": 600,
     "grid": {"arrivals_per_minute": [6.0, 12.0, 20.0], "light_fail": [true],
              "fallback": ["vtl", "uncoordinated"]}}
  ]
}"#;

fn main() {
    let (report, _, _) = run_campaign(SPEC);
    let mut table = Table::new(
        "E11 — intersection crossing (10 min, light fails for the middle third, 3 seeds, means)",
        &[
            "arrivals [veh/min/approach]",
            "failure handling",
            "conflicts",
            "throughput [veh/min]",
            "mean wait [s]",
            "max wait [s]",
            "uncontrolled time",
        ],
    );
    for point in &report.points {
        let label = if !point.params["light_fail"].as_bool().unwrap() {
            "no failure (infrastructure)"
        } else if point.params["fallback"].as_str().unwrap() == "vtl" {
            "failure + virtual traffic light"
        } else {
            "failure + uncoordinated drivers"
        };
        table.add_row(&[
            format!("{:.0}", point.params["arrivals_per_minute"].as_f64().unwrap()),
            label.to_string(),
            fmt3(point.metrics["conflicts"].mean),
            fmt3(point.metrics["throughput_vpm"].mean),
            fmt3(point.metrics["mean_wait_s"].mean),
            fmt3(point.metrics["max_wait_s"].mean),
            fmt_pct(point.metrics["uncontrolled_fraction"].mean),
        ]);
    }
    table.print();
    println!(
        "Expectation (paper §VI-A2): the virtual traffic light keeps the crossing conflict-free\n\
         during the infrastructure failure at a throughput comparable to the real light, while\n\
         uncoordinated crossing produces conflicts that grow with the arrival rate."
    );
}

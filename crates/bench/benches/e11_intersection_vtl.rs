//! E11 — Intersection crossing with traffic-light failure and the virtual
//! traffic light fallback (§VI-A2).

use karyon_sim::table::{fmt3, fmt_pct};
use karyon_sim::{SimDuration, SimTime, Table};
use karyon_vehicles::{run_intersection, FallbackMode, IntersectionConfig};

type Case = (&'static str, Option<(SimTime, SimTime)>, FallbackMode);

fn main() {
    let mut table = Table::new(
        "E11 — intersection crossing (10 min, infrastructure light fails from 120 s to 480 s)",
        &[
            "arrivals [veh/min/approach]",
            "failure handling",
            "conflicts",
            "throughput [veh/min]",
            "mean wait [s]",
            "max wait [s]",
            "uncontrolled time",
        ],
    );
    for &rate in &[6.0, 12.0, 20.0] {
        let cases: Vec<Case> = vec![
            ("no failure (infrastructure)", None, FallbackMode::VirtualTrafficLight),
            (
                "failure + virtual traffic light",
                Some((SimTime::from_secs(120), SimTime::from_secs(480))),
                FallbackMode::VirtualTrafficLight,
            ),
            (
                "failure + uncoordinated drivers",
                Some((SimTime::from_secs(120), SimTime::from_secs(480))),
                FallbackMode::Uncoordinated,
            ),
        ];
        for (name, failure, fallback) in cases {
            let result = run_intersection(&IntersectionConfig {
                arrivals_per_minute: rate,
                duration: SimDuration::from_secs(600),
                light_failure: failure,
                fallback,
                seed: 17,
            });
            table.add_row(&[
                format!("{rate:.0}"),
                name.to_string(),
                result.conflicts.to_string(),
                fmt3(result.throughput_per_minute),
                fmt3(result.mean_wait),
                fmt3(result.max_wait),
                fmt_pct(result.uncontrolled_fraction),
            ]);
        }
    }
    table.print();
    println!(
        "Expectation (paper §VI-A2): the virtual traffic light keeps the crossing conflict-free\n\
         during the infrastructure failure at a throughput comparable to the real light, while\n\
         uncoordinated crossing produces conflicts that grow with the arrival rate."
    );
}

//! E16 — campaign throughput and event-core benchmark.
//!
//! The KARYON safety argument is built on huge fault-injection sweeps (§VI),
//! so the experiment pipeline's own throughput is a tracked quantity from
//! this experiment onward.  Five measurements, written to
//! `BENCH_campaign.json` for CI to archive:
//!
//! 1. **Event core** — the calendar-queue [`EventQueue`] against the
//!    [`HeapEventQueue`] baseline on a hold-model workload (pop the earliest
//!    event, schedule one a random delay ahead) at several resident queue
//!    sizes.  The acceptance bar is a ≥2× speedup.
//! 2. **Volume campaign** — a million-run (quick mode: 100k) echo-style
//!    campaign through the chunked runner, with a streaming sink attached:
//!    runs/sec, serial-vs-parallel bit-identity, and the peak number of
//!    resident records, which must be bounded by `chunk size × in-flight
//!    window`, never by the run count.
//! 3. **Checkpoint overhead** — the volume campaign re-run with crash-safe
//!    checkpointing at every canonical chunk (the most aggressive cadence):
//!    runs/sec against the uncheckpointed baseline plus the manifest size,
//!    quantifying what resumability costs on a worst-case (near-zero-work)
//!    scenario.
//! 4. **Mixed campaign** — a multi-family sweep exercising the net stack
//!    (`tdma`, `inaccessibility`), the middleware QoS channel and the
//!    vehicle platoon, i.e. real simulation work per run.
//! 5. **Telemetry overhead** — the volume campaign re-run through the
//!    instrumented entry point with telemetry *detached*
//!    ([`CampaignTelemetry::none`]) and again with a trace sink + metrics
//!    registry attached.  The detached rate must sit within noise of the
//!    plain baseline (telemetry-off is the same code path, so this is the
//!    regression guard — asserted even in quick mode), and every variant's
//!    report must be bit-identical.
//!
//! Quick mode (`E16_QUICK=1`, used by CI) shrinks the workloads ~10×.

use std::time::Instant;

use karyon_scenario::json::ObjectWriter;
use karyon_scenario::{
    builtin_registry, Campaign, CampaignEntry, CampaignOutcome, CampaignTelemetry, Checkpointer,
    ParamGrid, RunRecord, RunSink, Scenario, ScenarioSpec,
};
use karyon_sim::table::fmt3;
use karyon_sim::{splitmix64, EventQueue, HeapEventQueue, Rng, SimDuration, SimTime, Table};
use karyon_telemetry::{JsonlTraceWriter, MetricsRegistry};

/// A deliberately cheap scenario: metrics are arithmetic over the seed, so
/// the volume measurement isolates the runner (seed derivation, chunking,
/// aggregation, sink) rather than any model.
struct EchoScenario;

impl Scenario for EchoScenario {
    fn name(&self) -> &str {
        "echo"
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "uniform" => Some((0.0, 1.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let mut state = spec.seed;
        let draw = splitmix64(&mut state);
        let mut record = RunRecord::new();
        record.set("uniform", (draw >> 11) as f64 / (1u64 << 53) as f64);
        record.set("seed_lo", (spec.seed % 1_000) as f64);
        record
    }
}

/// Hold-model event-queue throughput: `ops` pop-one/schedule-one cycles over
/// a queue holding `resident` events with delays up to 100 ms.
fn queue_ops_per_sec<Q>(
    mut schedule: impl FnMut(&mut Q, SimTime, u64),
    mut pop: impl FnMut(&mut Q) -> Option<(SimTime, u64)>,
    queue: &mut Q,
    resident: usize,
    ops: u64,
) -> f64 {
    let mut rng = Rng::seed_from(0xE16);
    for i in 0..resident {
        schedule(queue, SimTime::from_micros(rng.range_u64(0, 100_000)), i as u64);
    }
    let start = Instant::now();
    for i in 0..ops {
        let (t, _) = pop(queue).expect("hold model never drains");
        schedule(queue, t + SimDuration::from_micros(rng.range_u64(1, 100_000)), i);
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

/// A sink that counts runs without retaining them (the cheapest consumer the
/// canonical-order restoration still has to buffer chunks for).
struct CountingSink {
    runs: u64,
}

impl RunSink for CountingSink {
    fn on_run(&mut self, meta: &karyon_scenario::RunMeta<'_>, _record: &RunRecord) {
        assert_eq!(meta.run_index, self.runs, "sink runs must arrive in canonical order");
        self.runs += 1;
    }
}

fn volume_campaign(runs_per_point: u64) -> Campaign {
    Campaign::new("e16-volume", 4_242).entry(
        CampaignEntry::new("echo")
            .grid(ParamGrid::new().axis("shard", [0, 1, 2, 3]))
            .replications(runs_per_point),
    )
}

fn mixed_campaign(replications: u64) -> Campaign {
    Campaign::new("e16-mixed", 1_113)
        .entry(
            CampaignEntry::new("tdma")
                .grid(ParamGrid::new().axis("adversarial", [false, true]))
                .replications(replications)
                .duration_secs(10),
        )
        .entry(
            CampaignEntry::new("inaccessibility")
                .grid(ParamGrid::new().axis("mac", ["csma", "r2t"]))
                .replications(replications)
                .duration_secs(10),
        )
        .entry(
            CampaignEntry::new("middleware-qos")
                .grid(ParamGrid::new().axis("degrade", [false, true]))
                .replications(replications)
                .duration_secs(20),
        )
        .entry(
            CampaignEntry::new("platoon")
                .grid(ParamGrid::new().axis("mode", ["kernel", "los0"]))
                .replications(replications)
                .duration_secs(30),
        )
}

fn main() {
    let quick = karyon_bench::quick_mode("E16_QUICK");
    let registry = {
        let mut r = builtin_registry();
        r.register(std::sync::Arc::new(EchoScenario));
        r
    };

    // ----- 1. Event core: calendar queue vs BinaryHeap baseline. ---------
    let ops: u64 = if quick { 1_000_000 } else { 2_000_000 };
    let mut queue_table = Table::new(
        "E16a — event-queue throughput, hold model (pop + schedule ≤100 ms ahead)",
        &["resident events", "heap [Mops/s]", "calendar [Mops/s]", "speedup"],
    );
    let mut workloads = Vec::new();
    let mut worst_speedup = f64::INFINITY;
    for &resident in &[1_024usize, 16_384, 131_072] {
        let mut heap = HeapEventQueue::new();
        let heap_rate =
            queue_ops_per_sec(|q, t, p| q.schedule(t, p), |q| q.pop(), &mut heap, resident, ops);
        let mut calendar = EventQueue::new();
        let calendar_rate = queue_ops_per_sec(
            |q, t, p| q.schedule(t, p),
            |q| q.pop(),
            &mut calendar,
            resident,
            ops,
        );
        let speedup = calendar_rate / heap_rate;
        worst_speedup = worst_speedup.min(speedup);
        queue_table.add_row(&[
            resident.to_string(),
            fmt3(heap_rate / 1e6),
            fmt3(calendar_rate / 1e6),
            format!("{speedup:.2}x"),
        ]);
        let mut w = ObjectWriter::new();
        w.u64("resident", resident as u64)
            .f64("heap_ops_per_sec", heap_rate)
            .f64("calendar_ops_per_sec", calendar_rate)
            .f64("speedup", speedup);
        workloads.push(w.finish());
    }
    queue_table.print();

    // ----- 2. Volume campaign: chunked aggregation at scale. -------------
    let runs_per_point: u64 = if quick { 25_000 } else { 250_000 };
    let campaign = volume_campaign(runs_per_point);
    let total_runs = campaign.run_count();

    let serial_start = Instant::now();
    let serial = campaign.clone().with_threads(1).run(&registry).expect("echo is registered");
    let serial_elapsed = serial_start.elapsed();

    // At least two workers so the windowed claim/merge machinery is always
    // exercised, even on single-core CI runners.
    let parallel_threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(2);
    let mut sink = CountingSink { runs: 0 };
    let parallel_start = Instant::now();
    let (parallel, stats) = campaign
        .clone()
        .with_threads(parallel_threads)
        .run_instrumented(&registry, Some(&mut sink))
        .expect("echo is registered");
    let parallel_elapsed = parallel_start.elapsed();

    assert_eq!(serial, parallel, "volume campaign must be bit-identical for 1 vs N threads");
    assert_eq!(sink.runs, total_runs, "the sink must see every run exactly once");
    assert_eq!(parallel.suspect_runs(), 0, "echo never schedules into the past");
    let resident_bound = (campaign.chunk_size() * stats.workers * 2) as u64;
    assert!(
        stats.peak_resident_records <= resident_bound,
        "peak resident records {} must be bounded by chunk × window {} (runs: {})",
        stats.peak_resident_records,
        resident_bound,
        total_runs
    );

    let serial_rate = total_runs as f64 / serial_elapsed.as_secs_f64();
    let parallel_rate = total_runs as f64 / parallel_elapsed.as_secs_f64();
    let mut volume_table = Table::new(
        "E16b — volume campaign (echo scenario through the chunked runner)",
        &["runs", "threads", "runs/s", "peak resident records", "bound (chunk × window)"],
    );
    volume_table.add_row(&[
        total_runs.to_string(),
        "1".into(),
        format!("{serial_rate:.0}"),
        "0 (no sink)".into(),
        resident_bound.to_string(),
    ]);
    volume_table.add_row(&[
        total_runs.to_string(),
        stats.workers.to_string(),
        format!("{parallel_rate:.0}"),
        stats.peak_resident_records.to_string(),
        resident_bound.to_string(),
    ]);
    volume_table.print();
    println!(
        "bit-identity: 1-thread and {}-thread reports are identical across {} runs\n",
        stats.workers, total_runs
    );

    // ----- 3. Checkpoint overhead on the volume campaign. ----------------
    // Worst case by construction: the echo scenario does near-zero work per
    // run, so every microsecond of manifest serialisation shows up in the
    // rate.  Real campaigns (measurement 4) amortise it into noise.
    let ckpt_path =
        std::env::temp_dir().join(format!("karyon-e16-ckpt-{}.json", std::process::id()));
    let mut checkpointer = Checkpointer::new(&ckpt_path).every_chunks(1);
    // Same sink as the plain parallel run, so the delta is checkpointing
    // alone (serialisation + atomic write), not sink bookkeeping.
    let mut ckpt_sink = CountingSink { runs: 0 };
    let ckpt_start = Instant::now();
    let (ckpt_outcome, ckpt_stats) = campaign
        .clone()
        .with_threads(parallel_threads)
        .run_checkpointed(&registry, &mut checkpointer, Some(&mut ckpt_sink))
        .expect("echo is registered");
    let ckpt_elapsed = ckpt_start.elapsed();
    let CampaignOutcome::Complete(ckpt_report) = ckpt_outcome else {
        panic!("an unbounded checkpointed session completes");
    };
    assert_eq!(ckpt_report, parallel, "checkpointing must not perturb the report in any bit");
    let manifest_bytes = std::fs::metadata(&ckpt_path).map(|m| m.len()).unwrap_or(0);
    std::fs::remove_file(&ckpt_path).ok();
    let ckpt_rate = total_runs as f64 / ckpt_elapsed.as_secs_f64();
    let ckpt_relative = ckpt_rate / parallel_rate;
    let mut ckpt_table = Table::new(
        "E16c — checkpoint overhead (manifest every canonical chunk, worst case)",
        &[
            "runs",
            "checkpoints",
            "runs/s plain",
            "runs/s checkpointed",
            "relative",
            "manifest bytes",
        ],
    );
    ckpt_table.add_row(&[
        total_runs.to_string(),
        ckpt_stats.chunks.to_string(),
        format!("{parallel_rate:.0}"),
        format!("{ckpt_rate:.0}"),
        format!("{ckpt_relative:.2}x"),
        manifest_bytes.to_string(),
    ]);
    ckpt_table.print();

    // ----- 4. Mixed campaign: real per-run simulation work. --------------
    let replications: u64 = if quick { 3 } else { 15 };
    let mixed = mixed_campaign(replications);
    let mixed_runs = mixed.run_count();
    let mixed_start = Instant::now();
    let mixed_report = mixed.run(&registry).expect("builtin families");
    let mixed_elapsed = mixed_start.elapsed();
    let mixed_rate = mixed_runs as f64 / mixed_elapsed.as_secs_f64();
    println!(
        "E16d — mixed campaign: {} runs over {} families in {:.2?} ({:.1} runs/s)",
        mixed_runs, 4, mixed_elapsed, mixed_rate
    );
    assert_eq!(mixed_report.total_runs, mixed_runs);

    // ----- 5. Telemetry overhead on the volume campaign. -----------------
    // Detached telemetry is the same code path as the plain run (one branch
    // per chunk), so its rate is the regression guard: if the telemetry
    // plumbing ever leaks cost into untraced campaigns, this ratio drops.
    let detached_start = Instant::now();
    let (detached_report, _) = campaign
        .clone()
        .with_threads(parallel_threads)
        .run_instrumented_with(&registry, None, CampaignTelemetry::none())
        .expect("echo is registered");
    let detached_elapsed = detached_start.elapsed();
    assert_eq!(detached_report, parallel, "detached telemetry must not perturb the report");
    let detached_rate = total_runs as f64 / detached_elapsed.as_secs_f64();
    let detached_relative = detached_rate / parallel_rate;

    let mut trace_writer = JsonlTraceWriter::new(Vec::new());
    let mut metrics = MetricsRegistry::new();
    let traced_start = Instant::now();
    let (traced_report, _) = campaign
        .clone()
        .with_threads(parallel_threads)
        .run_instrumented_with(
            &registry,
            None,
            CampaignTelemetry::none().with_trace(&mut trace_writer).with_metrics(&mut metrics),
        )
        .expect("echo is registered");
    let traced_elapsed = traced_start.elapsed();
    assert_eq!(traced_report, parallel, "attached telemetry must not perturb the report");
    assert_eq!(metrics.counter("campaign.runs"), total_runs);
    let trace_bytes = trace_writer.into_inner().expect("Vec sink never errors").len() as u64;
    let traced_rate = total_runs as f64 / traced_elapsed.as_secs_f64();
    let traced_relative = traced_rate / parallel_rate;

    let mut telemetry_table = Table::new(
        "E16e — telemetry overhead (volume campaign, detached vs attached)",
        &["variant", "runs/s", "relative", "trace bytes"],
    );
    telemetry_table.add_row(&[
        "plain".into(),
        format!("{parallel_rate:.0}"),
        "1.00x".into(),
        "-".into(),
    ]);
    telemetry_table.add_row(&[
        "telemetry off".into(),
        format!("{detached_rate:.0}"),
        format!("{detached_relative:.2}x"),
        "-".into(),
    ]);
    telemetry_table.add_row(&[
        "trace + metrics".into(),
        format!("{traced_rate:.0}"),
        format!("{traced_relative:.2}x"),
        trace_bytes.to_string(),
    ]);
    telemetry_table.print();
    // The guard holds in quick mode too: same code path, so only scheduler
    // noise separates the rates.  The band is generous (2x either way) to
    // keep shared CI machines from flapping; a real leak (per-run TLS work,
    // per-record cloning) costs an order of magnitude on this near-zero-work
    // scenario and lands far outside it.
    assert!(
        detached_relative > 0.5,
        "telemetry-off campaign rate fell outside noise: {detached_relative:.2}x of baseline"
    );

    // ----- BENCH_campaign.json ------------------------------------------
    let mut queue_json = ObjectWriter::new();
    queue_json
        .u64("ops_per_workload", ops)
        .f64("worst_speedup", worst_speedup)
        .raw("workloads", &karyon_scenario::json::array(&workloads));
    let mut volume_json = ObjectWriter::new();
    volume_json
        .u64("runs", total_runs)
        .u64("chunk_size", campaign.chunk_size() as u64)
        .u64("workers", stats.workers as u64)
        .u64("chunks", stats.chunks)
        .f64("serial_runs_per_sec", serial_rate)
        .f64("parallel_runs_per_sec", parallel_rate)
        .u64("peak_resident_records", stats.peak_resident_records)
        .u64("resident_bound", resident_bound)
        .u64("peak_pending_chunks", stats.peak_pending_chunks as u64)
        .bool("bit_identical", true)
        .u64("suspect_runs", parallel.suspect_runs());
    let mut ckpt_json = ObjectWriter::new();
    ckpt_json
        .u64("runs", total_runs)
        .u64("checkpoints_written", ckpt_stats.chunks)
        .f64("runs_per_sec", ckpt_rate)
        .f64("relative_to_plain", ckpt_relative)
        .u64("manifest_bytes", manifest_bytes)
        .bool("bit_identical", true);
    let mut mixed_json = ObjectWriter::new();
    mixed_json
        .u64("runs", mixed_runs)
        .u64("families", 4)
        .f64("runs_per_sec", mixed_rate)
        .u64("suspect_runs", mixed_report.suspect_runs());
    let mut telemetry_json = ObjectWriter::new();
    telemetry_json
        .u64("runs", total_runs)
        .f64("detached_runs_per_sec", detached_rate)
        .f64("detached_relative_to_plain", detached_relative)
        .f64("traced_runs_per_sec", traced_rate)
        .f64("traced_relative_to_plain", traced_relative)
        .u64("trace_bytes", trace_bytes)
        .bool("bit_identical", true);
    let mut root = ObjectWriter::new();
    root.string("bench", "e16_campaign_throughput")
        .bool("quick", quick)
        .raw("event_queue", &queue_json.finish())
        .raw("volume_campaign", &volume_json.finish())
        .raw("checkpointing", &ckpt_json.finish())
        .raw("mixed_campaign", &mixed_json.finish())
        .raw("telemetry", &telemetry_json.finish());
    let json = root.finish();
    // Anchor at the workspace root regardless of the bench's working
    // directory (cargo runs benches from the package directory).
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_campaign.json");
    std::fs::write(&out, format!("{json}\n")).expect("write BENCH_campaign.json");
    println!("\nwrote {} ({} bytes)", out.display(), json.len() + 1);

    println!(
        "\nExpectation: the calendar queue sustains ≥2x the BinaryHeap baseline's hold-model\n\
         throughput at every resident size, and the chunked runner completes the volume\n\
         campaign with peak resident records bounded by chunk size x in-flight window —\n\
         independent of the run count — while 1-thread and N-thread reports stay bit-identical."
    );
    // The ≥2× bar is enforced only in full (local/perf-tracking) runs:
    // quick mode runs on shared CI machines where wall-clock ratios are
    // noisy, and BENCH_campaign.json already records the signal.
    if quick {
        if worst_speedup < 2.0 {
            println!("note: quick-mode speedup {worst_speedup:.2}x below the 2x full-run bar");
        }
    } else {
        assert!(worst_speedup >= 2.0, "calendar queue speedup regressed: {worst_speedup:.2}x");
    }
}

//! E16 — campaign throughput and event-core benchmark.
//!
//! The KARYON safety argument is built on huge fault-injection sweeps (§VI),
//! so the experiment pipeline's own throughput is a tracked quantity from
//! this experiment onward.  Six measurements, written to
//! `BENCH_campaign.json` for CI to archive:
//!
//! 1. **Event core** — the calendar-queue [`EventQueue`] against the
//!    [`HeapEventQueue`] baseline on a hold-model workload (pop the earliest
//!    event, schedule one a random delay ahead) at several resident queue
//!    sizes.  The acceptance bar is a ≥2× speedup.
//! 2. **Periodic trains** — the fixed-period fast path, three ways: 16
//!    staggered periodic tasks run as self-rescheduling one-shots on the
//!    heap, as self-rescheduling one-shots on the calendar queue, and as
//!    [`EventQueue::schedule_periodic`] trains (pop-only — the train
//!    regenerates itself).  The property suite pins all three
//!    order-identical; this measurement prices them.  The acceptance bar is
//!    the fast path at ≥2× the calendar one-shot rate.
//! 3. **Volume campaign** — a million-run (quick mode: 100k) echo-style
//!    campaign through the chunked runner: serial and parallel rates, with
//!    and without a streaming sink, at the default and a large chunk size;
//!    serial-vs-parallel bit-identity; and the peak number of resident
//!    records, which must be bounded by `chunk size × in-flight window`,
//!    never by the run count.
//! 4. **Checkpoint overhead** — the volume campaign re-run with crash-safe
//!    checkpointing at every canonical chunk (the most aggressive cadence).
//! 5. **Mixed campaign** — a multi-family sweep exercising the net stack
//!    (`tdma`, `inaccessibility`), the middleware QoS channel and the
//!    vehicle platoon, i.e. real simulation work per run.
//! 6. **Telemetry overhead** — the volume campaign re-run through the
//!    instrumented entry point with telemetry *detached*
//!    ([`CampaignTelemetry::none`]) and again with a trace sink + metrics
//!    registry attached.  The detached rate must sit within noise of the
//!    plain baseline (telemetry-off is the same code path), and every
//!    variant's report must be bit-identical.
//!
//! Every rate is a **median of three timed samples after a discarded warmup
//! pass** (see [`median_of_3`]), so quick-mode numbers on shared CI machines
//! are trustworthy enough to guard on: a single scheduler hiccup or cold
//! cache can no longer report nonsense like telemetry-off running 2.6×
//! *faster* than the identical plain code path.  Guarded *ratios* (the
//! hold-model speedup, the train fast-path multiples) additionally
//! interleave their two sides within each sample and take the median of the
//! per-sample ratios (see [`median_paired`]): a frequency dip that spans one
//! side's samples cancels out instead of manufacturing a regression.  Each `BENCH_campaign.json`
//! object records its `ops_per_workload` and `samples` so consumers know
//! what was measured.
//!
//! Quick mode (`E16_QUICK=1`, used by CI) shrinks the workloads ~10×.

use std::time::Instant;

use karyon_scenario::json::ObjectWriter;
use karyon_scenario::{
    builtin_registry, Campaign, CampaignEntry, CampaignOutcome, CampaignTelemetry, Checkpointer,
    ParamGrid, RunRecord, RunSink, Scenario, ScenarioSpec,
};
use karyon_sim::table::fmt3;
use karyon_sim::{splitmix64, EventQueue, HeapEventQueue, Rng, SimDuration, SimTime, Table};
use karyon_telemetry::{JsonlTraceWriter, MetricsRegistry};

/// Number of timed samples per measurement (after one discarded warmup).
const SAMPLES: u64 = 3;

/// Median of three rates: robust to one bad sample in either direction,
/// which is the failure mode of wall-clock benchmarking on shared CI
/// machines.
fn median3(mut rates: [f64; 3]) -> f64 {
    rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    rates[1]
}

/// Runs `sample` once as a discarded warmup (first-touch page faults, cold
/// caches, lazy allocations), then three times, and returns the median rate.
fn median_of_3(mut sample: impl FnMut() -> f64) -> f64 {
    let _warmup = sample();
    median3([sample(), sample(), sample()])
}

/// Like [`median_of_3`], but for a *guarded ratio* between two measurements:
/// runs the sides back-to-back within each sample and returns
/// `(median_a, median_b, median of per-sample b/a)`.  Dividing two
/// independently-taken medians is not robust — a multi-second frequency dip
/// or noisy neighbor that spans one side's three samples manufactures a
/// fake regression.  Pairing the sides puts any machine-wide slowdown on
/// both ends of each ratio, so the ratio median stays stable even when the
/// absolute rates wobble.
fn median_paired(mut a: impl FnMut() -> f64, mut b: impl FnMut() -> f64) -> (f64, f64, f64) {
    let (_, _) = (a(), b());
    let mut ra = [0.0; 3];
    let mut rb = [0.0; 3];
    let mut ratio = [0.0; 3];
    for k in 0..3 {
        ra[k] = a();
        rb[k] = b();
        ratio[k] = rb[k] / ra[k];
    }
    (median3(ra), median3(rb), median3(ratio))
}

/// A deliberately cheap scenario: metrics are arithmetic over the seed, so
/// the volume measurement isolates the runner (seed derivation, chunking,
/// aggregation, sink) rather than any model.
struct EchoScenario;

impl Scenario for EchoScenario {
    fn name(&self) -> &str {
        "echo"
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "uniform" => Some((0.0, 1.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let mut state = spec.seed;
        let draw = splitmix64(&mut state);
        // One trace event per run (a no-op unless a collection scope is
        // active), so the traced-campaign measurement serializes real bytes.
        karyon_telemetry::trace::event(
            "echo.run",
            SimTime::from_micros(draw % 1_000),
            &[("seed", karyon_telemetry::AttrValue::U64(spec.seed))],
        );
        let mut record = RunRecord::new();
        record.set("uniform", (draw >> 11) as f64 / (1u64 << 53) as f64);
        record.set("seed_lo", (spec.seed % 1_000) as f64);
        record
    }
}

/// Hold-model event-queue throughput: `ops` pop-one/schedule-one cycles over
/// a queue holding `resident` events with delays up to 100 ms.
fn queue_ops_per_sec<Q>(
    mut schedule: impl FnMut(&mut Q, SimTime, u64),
    mut pop: impl FnMut(&mut Q) -> Option<(SimTime, u64)>,
    queue: &mut Q,
    resident: usize,
    ops: u64,
) -> f64 {
    let mut rng = Rng::seed_from(0xE16);
    for i in 0..resident {
        schedule(queue, SimTime::from_micros(rng.range_u64(0, 100_000)), i as u64);
    }
    let start = Instant::now();
    for i in 0..ops {
        let (t, _) = pop(queue).expect("hold model never drains");
        schedule(queue, t + SimDuration::from_micros(rng.range_u64(1, 100_000)), i);
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

/// Periodic-task workload as self-rescheduling one-shots: every pop of task
/// `i` schedules its next tick one period ahead — the pre-train idiom every
/// scenario family used, paying full schedule+pop cost per tick.
fn periodic_oneshot_rate<Q>(
    mut schedule: impl FnMut(&mut Q, SimTime, u64),
    mut pop: impl FnMut(&mut Q) -> Option<(SimTime, u64)>,
    queue: &mut Q,
    periods: &[SimDuration],
    ops: u64,
) -> f64 {
    for (i, _) in periods.iter().enumerate() {
        schedule(queue, SimTime::from_micros(i as u64), i as u64);
    }
    let start = Instant::now();
    for _ in 0..ops {
        let (t, task) = pop(queue).expect("periodic tasks never drain");
        schedule(queue, t + periods[task as usize], task);
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

/// A sink that counts runs without retaining them (the cheapest consumer the
/// canonical-order restoration still has to buffer chunks for).
struct CountingSink {
    runs: u64,
}

impl RunSink for CountingSink {
    fn on_run(&mut self, meta: &karyon_scenario::RunMeta<'_>, _record: &RunRecord) {
        assert_eq!(meta.run_index, self.runs, "sink runs must arrive in canonical order");
        self.runs += 1;
    }
}

fn volume_campaign(runs_per_point: u64) -> Campaign {
    Campaign::new("e16-volume", 4_242).entry(
        CampaignEntry::new("echo")
            .grid(ParamGrid::new().axis("shard", [0, 1, 2, 3]))
            .replications(runs_per_point),
    )
}

fn mixed_campaign(replications: u64) -> Campaign {
    Campaign::new("e16-mixed", 1_113)
        .entry(
            CampaignEntry::new("tdma")
                .grid(ParamGrid::new().axis("adversarial", [false, true]))
                .replications(replications)
                .duration_secs(10),
        )
        .entry(
            CampaignEntry::new("inaccessibility")
                .grid(ParamGrid::new().axis("mac", ["csma", "r2t"]))
                .replications(replications)
                .duration_secs(10),
        )
        .entry(
            CampaignEntry::new("middleware-qos")
                .grid(ParamGrid::new().axis("degrade", [false, true]))
                .replications(replications)
                .duration_secs(20),
        )
        .entry(
            CampaignEntry::new("platoon")
                .grid(ParamGrid::new().axis("mode", ["kernel", "los0"]))
                .replications(replications)
                .duration_secs(30),
        )
}

fn main() {
    let quick = karyon_bench::quick_mode("E16_QUICK");
    let registry = {
        let mut r = builtin_registry();
        r.register(std::sync::Arc::new(EchoScenario));
        r
    };

    // ----- 1. Event core: calendar queue vs BinaryHeap baseline. ---------
    let ops: u64 = if quick { 1_000_000 } else { 2_000_000 };
    let mut queue_table = Table::new(
        "E16a — event-queue throughput, hold model (pop + schedule ≤100 ms ahead)",
        &["resident events", "heap [Mops/s]", "calendar [Mops/s]", "speedup"],
    );
    let mut workloads = Vec::new();
    let mut worst_speedup = f64::INFINITY;
    for &resident in &[1_024usize, 16_384, 131_072] {
        let (heap_rate, calendar_rate, speedup) = median_paired(
            || {
                let mut q = HeapEventQueue::new();
                queue_ops_per_sec(|q, t, p| q.schedule(t, p), |q| q.pop(), &mut q, resident, ops)
            },
            || {
                let mut q = EventQueue::new();
                queue_ops_per_sec(|q, t, p| q.schedule(t, p), |q| q.pop(), &mut q, resident, ops)
            },
        );
        worst_speedup = worst_speedup.min(speedup);
        queue_table.add_row(&[
            resident.to_string(),
            fmt3(heap_rate / 1e6),
            fmt3(calendar_rate / 1e6),
            format!("{speedup:.2}x"),
        ]);
        let mut w = ObjectWriter::new();
        w.u64("resident", resident as u64)
            .f64("heap_ops_per_sec", heap_rate)
            .f64("calendar_ops_per_sec", calendar_rate)
            .f64("speedup", speedup);
        workloads.push(w.finish());
    }
    queue_table.print();

    // ----- 2. Periodic trains: the fixed-period fast path, three ways. ----
    // 16 tasks with staggered starts and coprime-ish periods (50, 57, 64, …
    // µs) — a caricature of the TDMA slot clocks, pulse-sync rounds and
    // middleware publish loops that dominate the paper's workloads.
    let train_ops: u64 = if quick { 2_000_000 } else { 8_000_000 };
    let periods: Vec<SimDuration> =
        (0..16u64).map(|i| SimDuration::from_micros(50 + 7 * i)).collect();
    let heap_side = || {
        let mut q = HeapEventQueue::new();
        periodic_oneshot_rate(|q, t, p| q.schedule(t, p), |q| q.pop(), &mut q, &periods, train_ops)
    };
    let calendar_side = || {
        let mut q = EventQueue::new();
        periodic_oneshot_rate(|q, t, p| q.schedule(t, p), |q| q.pop(), &mut q, &periods, train_ops)
    };
    let fastpath_side = || {
        let mut q: EventQueue<u64> = EventQueue::new();
        for (i, period) in periods.iter().enumerate() {
            q.schedule_periodic(SimTime::from_micros(i as u64), *period, i as u64);
        }
        let start = Instant::now();
        let mut last = SimTime::ZERO;
        for _ in 0..train_ops {
            let (t, _) = q.pop().expect("trains never drain");
            assert!(t >= last, "train ticks must be time-ordered");
            last = t;
        }
        train_ops as f64 / start.elapsed().as_secs_f64()
    };
    // Interleave all three representations within each sample (same pairing
    // rationale as [`median_paired`]) and guard on per-sample ratio medians.
    let (_, _, _) = (heap_side(), calendar_side(), fastpath_side());
    let mut heap_samples = [0.0; 3];
    let mut calendar_samples = [0.0; 3];
    let mut fastpath_samples = [0.0; 3];
    let mut vs_calendar = [0.0; 3];
    let mut vs_heap = [0.0; 3];
    for k in 0..3 {
        heap_samples[k] = heap_side();
        calendar_samples[k] = calendar_side();
        fastpath_samples[k] = fastpath_side();
        vs_calendar[k] = fastpath_samples[k] / calendar_samples[k];
        vs_heap[k] = fastpath_samples[k] / heap_samples[k];
    }
    let train_heap_rate = median3(heap_samples);
    let train_calendar_rate = median3(calendar_samples);
    let fastpath_rate = median3(fastpath_samples);
    let fastpath_vs_calendar = median3(vs_calendar);
    let fastpath_vs_heap = median3(vs_heap);
    let mut train_table = Table::new(
        "E16b — periodic trains: 16 fixed-period tasks, three representations",
        &["representation", "ticks/s [M]", "vs calendar one-shots"],
    );
    train_table.add_row(&["heap one-shots".into(), fmt3(train_heap_rate / 1e6), {
        format!("{:.2}x", train_heap_rate / train_calendar_rate)
    }]);
    train_table.add_row(&["calendar one-shots".into(), fmt3(train_calendar_rate / 1e6), {
        "1.00x".into()
    }]);
    train_table.add_row(&[
        "calendar trains (fast path)".into(),
        fmt3(fastpath_rate / 1e6),
        format!("{fastpath_vs_calendar:.2}x"),
    ]);
    train_table.print();

    // ----- 3. Volume campaign: chunked aggregation at scale. -------------
    let runs_per_point: u64 = if quick { 25_000 } else { 250_000 };
    let campaign = volume_campaign(runs_per_point);
    let total_runs = campaign.run_count();

    // Reference report + full invariants once; the timed samples then only
    // re-assert report identity.
    let serial = campaign.clone().with_threads(1).run(&registry).expect("echo is registered");
    let serial_rate = median_of_3(|| {
        let start = Instant::now();
        let report = campaign.clone().with_threads(1).run(&registry).expect("echo is registered");
        let rate = total_runs as f64 / start.elapsed().as_secs_f64();
        assert_eq!(report, serial, "serial echo campaign must be deterministic");
        rate
    });

    // At least two workers so the windowed claim/merge machinery is always
    // exercised, even on single-core CI runners.
    let parallel_threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(2);
    let mut sink = CountingSink { runs: 0 };
    let (parallel, stats) = campaign
        .clone()
        .with_threads(parallel_threads)
        .run_instrumented(&registry, Some(&mut sink))
        .expect("echo is registered");
    assert_eq!(serial, parallel, "volume campaign must be bit-identical for 1 vs N threads");
    assert_eq!(sink.runs, total_runs, "the sink must see every run exactly once");
    assert_eq!(parallel.suspect_runs(), 0, "echo never schedules into the past");
    let resident_bound = (campaign.chunk_size() * stats.workers * 2) as u64;
    assert!(
        stats.peak_resident_records <= resident_bound,
        "peak resident records {} must be bounded by chunk × window {} (runs: {})",
        stats.peak_resident_records,
        resident_bound,
        total_runs
    );

    // Why four parallel rates?  The historical "anomaly" — parallel at 2.3M
    // runs/s vs serial at 6.2M — conflated three effects: (a) the serial
    // number was measured sink-less while the parallel one paid the sink's
    // canonical-order chunk buffering, (b) echo runs are near-zero work, so
    // the per-chunk machinery (claim/merge gate, channel hop, worker wakeup)
    // is the *entire* cost and more workers only add contention, and (c) at
    // the default 4096-run chunk the quick-mode campaign is just 25 chunks —
    // too few to amortise anything.  The grid below separates the effects:
    // parallel-no-sink is the apples-to-apples comparand for `serial`, and
    // the large-chunk variant amortises the per-chunk overhead.  The honest
    // headline: for sub-microsecond runs the chunked runner crosses over to
    // a win only once per-run work dwarfs the ~µs per-chunk toll — real
    // families (measurement 5) are 3–6 orders of magnitude past that.
    let parallel_sink_rate = median_of_3(|| {
        let mut sink = CountingSink { runs: 0 };
        let start = Instant::now();
        let (report, _) = campaign
            .clone()
            .with_threads(parallel_threads)
            .run_instrumented(&registry, Some(&mut sink))
            .expect("echo is registered");
        let rate = total_runs as f64 / start.elapsed().as_secs_f64();
        assert_eq!(report, serial, "sinked parallel report must stay bit-identical");
        rate
    });
    let parallel_nosink_rate = median_of_3(|| {
        let start = Instant::now();
        let report = campaign
            .clone()
            .with_threads(parallel_threads)
            .run(&registry)
            .expect("echo is registered");
        let rate = total_runs as f64 / start.elapsed().as_secs_f64();
        assert_eq!(report, serial, "sink-less parallel report must stay bit-identical");
        rate
    });
    // Bit-identity is *per chunk size*: the chunk is the unit of metric
    // aggregation, so changing it reorders floating-point summation and the
    // report differs in final ulps.  Thread count never does — the canonical
    // merge replays chunks in serial order — so each chunk size gets its own
    // serial reference.
    let large_chunk: usize = 16_384;
    let large_serial = campaign
        .clone()
        .with_threads(1)
        .with_chunk_size(large_chunk)
        .run(&registry)
        .expect("echo is registered");
    let large_chunk_rate = median_of_3(|| {
        let start = Instant::now();
        let report = campaign
            .clone()
            .with_threads(parallel_threads)
            .with_chunk_size(large_chunk)
            .run(&registry)
            .expect("echo is registered");
        let rate = total_runs as f64 / start.elapsed().as_secs_f64();
        assert_eq!(report, large_serial, "large-chunk runs must match their serial reference");
        rate
    });

    let mut volume_table = Table::new(
        "E16c — volume campaign (echo scenario through the chunked runner)",
        &["variant", "threads", "chunk", "runs/s", "vs serial"],
    );
    volume_table.add_row(&[
        "serial, no sink".into(),
        "1".into(),
        campaign.chunk_size().to_string(),
        format!("{serial_rate:.0}"),
        "1.00x".into(),
    ]);
    volume_table.add_row(&[
        "parallel, no sink".into(),
        parallel_threads.to_string(),
        campaign.chunk_size().to_string(),
        format!("{parallel_nosink_rate:.0}"),
        format!("{:.2}x", parallel_nosink_rate / serial_rate),
    ]);
    volume_table.add_row(&[
        "parallel, counting sink".into(),
        parallel_threads.to_string(),
        campaign.chunk_size().to_string(),
        format!("{parallel_sink_rate:.0}"),
        format!("{:.2}x", parallel_sink_rate / serial_rate),
    ]);
    volume_table.add_row(&[
        "parallel, no sink".into(),
        parallel_threads.to_string(),
        large_chunk.to_string(),
        format!("{large_chunk_rate:.0}"),
        format!("{:.2}x", large_chunk_rate / serial_rate),
    ]);
    volume_table.print();
    println!(
        "bit-identity: 1-thread and {}-thread reports are identical across {} runs\n\
         (echo runs are near-zero work: the chunked runner's per-chunk toll only pays\n\
         off once per-run work exceeds it — see the mixed campaign for real families)\n",
        stats.workers, total_runs
    );

    // ----- 4. Checkpoint overhead on the volume campaign. ----------------
    // Worst case by construction: the echo scenario does near-zero work per
    // run, so every microsecond of manifest serialisation shows up in the
    // rate.  Real campaigns (measurement 5) amortise it into noise.
    let ckpt_path =
        std::env::temp_dir().join(format!("karyon-e16-ckpt-{}.json", std::process::id()));
    let mut ckpt_chunks = 0u64;
    let mut manifest_bytes = 0u64;
    let ckpt_rate = median_of_3(|| {
        // A leftover manifest would make the next sample resume (and skip
        // all the work), so every sample starts from scratch.
        std::fs::remove_file(&ckpt_path).ok();
        let mut checkpointer = Checkpointer::new(&ckpt_path).every_chunks(1);
        let mut ckpt_sink = CountingSink { runs: 0 };
        let start = Instant::now();
        let (ckpt_outcome, ckpt_stats) = campaign
            .clone()
            .with_threads(parallel_threads)
            .run_checkpointed(&registry, &mut checkpointer, Some(&mut ckpt_sink))
            .expect("echo is registered");
        let rate = total_runs as f64 / start.elapsed().as_secs_f64();
        let CampaignOutcome::Complete(ckpt_report) = ckpt_outcome else {
            panic!("an unbounded checkpointed session completes");
        };
        assert_eq!(ckpt_report, serial, "checkpointing must not perturb the report in any bit");
        ckpt_chunks = ckpt_stats.chunks;
        manifest_bytes = std::fs::metadata(&ckpt_path).map(|m| m.len()).unwrap_or(0);
        rate
    });
    std::fs::remove_file(&ckpt_path).ok();
    let ckpt_relative = ckpt_rate / parallel_sink_rate;
    let mut ckpt_table = Table::new(
        "E16d — checkpoint overhead (manifest every canonical chunk, worst case)",
        &[
            "runs",
            "checkpoints",
            "runs/s plain",
            "runs/s checkpointed",
            "relative",
            "manifest bytes",
        ],
    );
    ckpt_table.add_row(&[
        total_runs.to_string(),
        ckpt_chunks.to_string(),
        format!("{parallel_sink_rate:.0}"),
        format!("{ckpt_rate:.0}"),
        format!("{ckpt_relative:.2}x"),
        manifest_bytes.to_string(),
    ]);
    ckpt_table.print();

    // ----- 5. Mixed campaign: real per-run simulation work. --------------
    let replications: u64 = if quick { 3 } else { 15 };
    let mixed = mixed_campaign(replications);
    let mixed_runs = mixed.run_count();
    let mixed_reference = mixed.run(&registry).expect("builtin families");
    let mixed_rate = median_of_3(|| {
        let start = Instant::now();
        let report = mixed.run(&registry).expect("builtin families");
        let rate = mixed_runs as f64 / start.elapsed().as_secs_f64();
        assert_eq!(report, mixed_reference, "mixed campaign must be deterministic");
        rate
    });
    println!(
        "E16e — mixed campaign: {} runs over {} families ({:.1} runs/s)",
        mixed_runs, 4, mixed_rate
    );
    assert_eq!(mixed_reference.total_runs, mixed_runs);
    assert_eq!(mixed_reference.suspect_runs(), 0, "engine-driven families stay causality-clean");

    // ----- 6. Telemetry overhead on the volume campaign. -----------------
    // Detached telemetry is the same code path as the plain run (one branch
    // per chunk), so its rate is the regression guard: if the telemetry
    // plumbing ever leaks cost into untraced campaigns, this ratio drops.
    let detached_rate = median_of_3(|| {
        let start = Instant::now();
        let (report, _) = campaign
            .clone()
            .with_threads(parallel_threads)
            .run_instrumented_with(&registry, None, CampaignTelemetry::none())
            .expect("echo is registered");
        let rate = total_runs as f64 / start.elapsed().as_secs_f64();
        assert_eq!(report, serial, "detached telemetry must not perturb the report");
        rate
    });
    let detached_relative = detached_rate / parallel_nosink_rate;

    let mut trace_bytes = 0u64;
    let traced_rate = median_of_3(|| {
        let mut trace_writer = JsonlTraceWriter::new(Vec::new());
        let mut metrics = MetricsRegistry::new();
        let start = Instant::now();
        let (report, _) = campaign
            .clone()
            .with_threads(parallel_threads)
            .run_instrumented_with(
                &registry,
                None,
                CampaignTelemetry::none().with_trace(&mut trace_writer).with_metrics(&mut metrics),
            )
            .expect("echo is registered");
        let rate = total_runs as f64 / start.elapsed().as_secs_f64();
        assert_eq!(report, serial, "attached telemetry must not perturb the report");
        assert_eq!(metrics.counter("campaign.runs"), total_runs);
        trace_bytes = trace_writer.into_inner().expect("Vec sink never errors").len() as u64;
        rate
    });
    let traced_relative = traced_rate / parallel_nosink_rate;

    let mut telemetry_table = Table::new(
        "E16f — telemetry overhead (volume campaign, detached vs attached)",
        &["variant", "runs/s", "relative", "trace bytes"],
    );
    telemetry_table.add_row(&[
        "plain".into(),
        format!("{parallel_nosink_rate:.0}"),
        "1.00x".into(),
        "-".into(),
    ]);
    telemetry_table.add_row(&[
        "telemetry off".into(),
        format!("{detached_rate:.0}"),
        format!("{detached_relative:.2}x"),
        "-".into(),
    ]);
    telemetry_table.add_row(&[
        "trace + metrics".into(),
        format!("{traced_rate:.0}"),
        format!("{traced_relative:.2}x"),
        trace_bytes.to_string(),
    ]);
    telemetry_table.print();
    // The guard holds in quick mode too, and with warmup + median-of-3 it
    // can tighten from the old "within 2x either way" to a real band: the
    // detached path is the plain path plus one branch per chunk, so its
    // median rate must sit within ±30% of plain.  A real leak (per-run TLS
    // work, per-record cloning) costs an order of magnitude on this
    // near-zero-work scenario and lands far outside the band.
    assert!(
        (0.7..=1.3).contains(&detached_relative),
        "telemetry-off campaign rate fell outside noise: {detached_relative:.2}x of baseline"
    );

    // ----- BENCH_campaign.json ------------------------------------------
    let mut queue_json = ObjectWriter::new();
    queue_json
        .u64("ops_per_workload", ops)
        .u64("samples", SAMPLES)
        .f64("worst_speedup", worst_speedup)
        .raw("workloads", &karyon_scenario::json::array(&workloads));
    let mut trains_json = ObjectWriter::new();
    trains_json
        .u64("trains", periods.len() as u64)
        .u64("ops_per_workload", train_ops)
        .u64("samples", SAMPLES)
        .f64("heap_ops_per_sec", train_heap_rate)
        .f64("calendar_ops_per_sec", train_calendar_rate)
        .f64("fastpath_ops_per_sec", fastpath_rate)
        .f64("fastpath_vs_calendar", fastpath_vs_calendar)
        .f64("fastpath_vs_heap", fastpath_vs_heap);
    let mut volume_json = ObjectWriter::new();
    volume_json
        .u64("runs", total_runs)
        .u64("ops_per_workload", total_runs)
        .u64("samples", SAMPLES)
        .u64("chunk_size", campaign.chunk_size() as u64)
        .u64("workers", stats.workers as u64)
        .u64("chunks", stats.chunks)
        .f64("serial_runs_per_sec", serial_rate)
        .f64("parallel_runs_per_sec", parallel_sink_rate)
        .f64("parallel_nosink_runs_per_sec", parallel_nosink_rate)
        .u64("large_chunk_size", large_chunk as u64)
        .f64("large_chunk_runs_per_sec", large_chunk_rate)
        .u64("peak_resident_records", stats.peak_resident_records)
        .u64("resident_bound", resident_bound)
        .u64("peak_pending_chunks", stats.peak_pending_chunks as u64)
        .bool("bit_identical", true)
        .u64("suspect_runs", parallel.suspect_runs());
    let mut ckpt_json = ObjectWriter::new();
    ckpt_json
        .u64("runs", total_runs)
        .u64("ops_per_workload", total_runs)
        .u64("samples", SAMPLES)
        .u64("checkpoints_written", ckpt_chunks)
        .f64("runs_per_sec", ckpt_rate)
        .f64("relative_to_plain", ckpt_relative)
        .u64("manifest_bytes", manifest_bytes)
        .bool("bit_identical", true);
    let mut mixed_json = ObjectWriter::new();
    mixed_json
        .u64("runs", mixed_runs)
        .u64("ops_per_workload", mixed_runs)
        .u64("samples", SAMPLES)
        .u64("families", 4)
        .f64("runs_per_sec", mixed_rate)
        .u64("suspect_runs", mixed_reference.suspect_runs());
    let mut telemetry_json = ObjectWriter::new();
    telemetry_json
        .u64("runs", total_runs)
        .u64("ops_per_workload", total_runs)
        .u64("samples", SAMPLES)
        .f64("detached_runs_per_sec", detached_rate)
        .f64("detached_relative_to_plain", detached_relative)
        .f64("traced_runs_per_sec", traced_rate)
        .f64("traced_relative_to_plain", traced_relative)
        .u64("trace_bytes", trace_bytes)
        .bool("bit_identical", true);
    let mut root = ObjectWriter::new();
    root.string("bench", "e16_campaign_throughput")
        .bool("quick", quick)
        .raw("event_queue", &queue_json.finish())
        .raw("periodic_trains", &trains_json.finish())
        .raw("volume_campaign", &volume_json.finish())
        .raw("checkpointing", &ckpt_json.finish())
        .raw("mixed_campaign", &mixed_json.finish())
        .raw("telemetry", &telemetry_json.finish());
    let json = root.finish();
    // Anchor at the workspace root regardless of the bench's working
    // directory (cargo runs benches from the package directory).
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_campaign.json");
    std::fs::write(&out, format!("{json}\n")).expect("write BENCH_campaign.json");
    println!("\nwrote {} ({} bytes)", out.display(), json.len() + 1);

    println!(
        "\nExpectation: the calendar queue sustains ≥2x the BinaryHeap baseline's hold-model\n\
         throughput at every resident size, periodic trains sustain ≥2x the calendar's\n\
         one-shot rate on the 16-task workload, and the chunked runner completes the volume\n\
         campaign with peak resident records bounded by chunk size x in-flight window —\n\
         independent of the run count — while 1-thread and N-thread reports stay bit-identical."
    );
    // With warmup + median-of-3 the perf bars hold in quick mode too (the
    // CI schema/perf guard re-checks them from BENCH_campaign.json); the
    // stricter in-process asserts still run only on full (perf-tracking)
    // runs to keep degraded shared machines from hard-failing the bench.
    if quick {
        if worst_speedup < 2.0 {
            println!("note: quick-mode speedup {worst_speedup:.2}x below the 2x full-run bar");
        }
        if fastpath_vs_calendar < 2.0 {
            println!(
                "note: quick-mode fast path {fastpath_vs_calendar:.2}x below the 2x full-run bar"
            );
        }
    } else {
        assert!(worst_speedup >= 2.0, "calendar queue speedup regressed: {worst_speedup:.2}x");
        assert!(
            fastpath_vs_calendar >= 2.0,
            "periodic-train fast path regressed: {fastpath_vs_calendar:.2}x vs calendar one-shots"
        );
    }
}

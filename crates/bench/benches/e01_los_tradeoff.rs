//! E01 — The performance–safety trade-off (paper Fig. 1 / §III).
//!
//! Compares the safety-kernel-controlled platoon against the two homogeneous
//! baselines (always cooperative, always conservative) under increasingly
//! degraded V2V conditions.  Expectation: the kernel matches the cooperative
//! baseline's throughput when conditions are good and matches the
//! conservative baseline's safety when they are not.

use karyon_core::LevelOfService;
use karyon_sim::table::{fmt3, fmt_pct};
use karyon_sim::{SimDuration, SimTime, Table};
use karyon_vehicles::{run_platoon, ControlMode, PlatoonConfig, V2VModel};

fn config(mode: ControlMode, v2v: V2VModel, seed: u64) -> PlatoonConfig {
    PlatoonConfig {
        vehicles: 6,
        duration: SimDuration::from_secs(150),
        mode,
        v2v,
        lead_braking: 5.0,
        seed,
        ..Default::default()
    }
}

fn main() {
    let conditions: Vec<(&str, V2VModel)> = vec![
        ("healthy V2V", V2VModel { loss: 0.05, ..Default::default() }),
        ("lossy V2V (30%)", V2VModel { loss: 0.30, ..Default::default() }),
        (
            "V2V outage 40-100 s",
            V2VModel {
                loss: 0.05,
                outages: vec![(SimTime::from_secs(40), SimTime::from_secs(100))],
                ..Default::default()
            },
        ),
    ];
    let modes: Vec<(&str, ControlMode)> = vec![
        ("KARYON safety kernel", ControlMode::SafetyKernel),
        ("always cooperative (LoS2)", ControlMode::FixedLos(LevelOfService(2))),
        ("always conservative (LoS0)", ControlMode::FixedLos(LevelOfService(0))),
    ];

    let mut table = Table::new(
        "E01 — performance–safety trade-off (6-vehicle platoon, 150 s, hard braking events)",
        &[
            "V2V condition",
            "control",
            "collisions",
            "hazard steps",
            "min time gap [s]",
            "throughput [veh/h]",
            "time at LoS2",
        ],
    );
    for (cond_name, v2v) in &conditions {
        for (mode_name, mode) in &modes {
            let result = run_platoon(&config(*mode, v2v.clone(), 42));
            table.add_row(&[
                cond_name.to_string(),
                mode_name.to_string(),
                result.collisions.to_string(),
                result.hazard_steps.to_string(),
                fmt3(result.min_time_gap),
                format!("{:.0}", result.throughput_veh_per_hour),
                fmt_pct(result.los_time_fraction[2]),
            ]);
        }
    }
    table.print();
    println!(
        "Expectation (paper §III): the safety kernel keeps the hazard/collision figures of the\n\
         conservative baseline while retaining most of the cooperative baseline's throughput; the\n\
         homogeneous cooperative baseline degrades unsafely when V2V degrades."
    );
}

//! E01 — The performance–safety trade-off (paper Fig. 1 / §III) and the
//! per-LoS ACC/platooning table (§VI-A1, formerly harness e10).
//!
//! Compares the safety-kernel-controlled platoon against the homogeneous
//! baselines (always cooperative, always conservative) under increasingly
//! degraded V2V conditions, and reproduces the use-case A1 table where each
//! fixed Level of Service trades the time margin between vehicles against
//! road throughput.  Both sweeps are declared as campaign specs over the
//! `platoon` scenario family and executed by the campaign runner; the
//! harness only renders the aggregates.

use karyon_bench::run_campaign;
use karyon_core::LevelOfService;
use karyon_sim::table::{fmt3, fmt_pct};
use karyon_sim::Table;
use karyon_vehicles::time_margin_for_los;

/// The three V2V conditions of the trade-off experiment: healthy, lossy and
/// a mid-run outage (the `platoon` family places the outage across the
/// middle third of the run), each swept over the three control strategies.
const TRADEOFF_SPEC: &str = r#"{
  "name": "e01-los-tradeoff", "seed": 42,
  "entries": [
    {"scenario": "platoon", "replications": 5, "duration_secs": 150,
     "grid": {"v2v_loss": [0.05], "outage": [false],
              "mode": ["kernel", "los2", "los0"],
              "vehicles": [6], "lead_braking": [5.0]}},
    {"scenario": "platoon", "replications": 5, "duration_secs": 150,
     "grid": {"v2v_loss": [0.3], "outage": [false],
              "mode": ["kernel", "los2", "los0"],
              "vehicles": [6], "lead_braking": [5.0]}},
    {"scenario": "platoon", "replications": 5, "duration_secs": 150,
     "grid": {"v2v_loss": [0.05], "outage": [true],
              "mode": ["kernel", "los2", "los0"],
              "vehicles": [6], "lead_braking": [5.0]}}
  ]
}"#;

/// The per-LoS table (the former e10 harness): 8 vehicles, every fixed LoS
/// plus the adaptive kernel, with and without a V2V outage.
const PER_LOS_SPEC: &str = r#"{
  "name": "e01-acc-platoon-per-los", "seed": 21,
  "entries": [
    {"scenario": "platoon", "replications": 5, "duration_secs": 180,
     "grid": {"outage": [false, true],
              "mode": ["los0", "los1", "los2", "kernel"],
              "vehicles": [8]}}
  ]
}"#;

fn mode_label(mode: &str) -> &'static str {
    match mode {
        "kernel" => "KARYON safety kernel",
        "los2" => "always cooperative (LoS2)",
        "los1" => "fixed LoS1",
        "los0" => "always conservative (LoS0)",
        _ => "?",
    }
}

fn condition_label(loss: f64, outage: bool) -> &'static str {
    match (loss, outage) {
        (_, true) => "V2V outage (middle third)",
        (l, _) if l > 0.1 => "lossy V2V (30%)",
        _ => "healthy V2V",
    }
}

fn main() {
    let (tradeoff, stats, elapsed) = run_campaign(TRADEOFF_SPEC);
    let mut table = Table::new(
        "E01 — performance–safety trade-off (6-vehicle platoon, 150 s, 5 seeds per cell, means)",
        &[
            "V2V condition",
            "control",
            "collisions",
            "hazard steps",
            "min time gap [s]",
            "throughput [veh/h]",
            "time at LoS2",
        ],
    );
    for point in &tradeoff.points {
        let loss = point.params["v2v_loss"].as_f64().unwrap();
        let outage = point.params["outage"].as_bool().unwrap();
        table.add_row(&[
            condition_label(loss, outage).to_string(),
            mode_label(point.params["mode"].as_str().unwrap()).to_string(),
            fmt3(point.metrics["collisions"].mean),
            fmt3(point.metrics["hazard_steps"].mean),
            fmt3(point.metrics["min_time_gap_s"].mean),
            format!("{:.0}", point.metrics["throughput_vph"].mean),
            fmt_pct(point.metrics["los2_fraction"].mean),
        ]);
    }
    table.print();
    eprintln!("({} runs, {} workers, {:.2?})\n", tradeoff.total_runs, stats.workers, elapsed);

    let (per_los, _, _) = run_campaign(PER_LOS_SPEC);
    let mut table = Table::new(
        "E01b — ACC/platooning per Level of Service (8 vehicles, 180 s, 5 seeds, formerly e10)",
        &[
            "condition",
            "control",
            "design time margin [s]",
            "mean time gap [s]",
            "min time gap [s]",
            "hazard steps",
            "collisions",
            "throughput [veh/h]",
            "time at LoS2",
        ],
    );
    for point in &per_los.points {
        let mode = point.params["mode"].as_str().unwrap();
        let margin = match mode {
            "los0" => fmt3(time_margin_for_los(LevelOfService(0))),
            "los1" => fmt3(time_margin_for_los(LevelOfService(1))),
            "los2" => fmt3(time_margin_for_los(LevelOfService(2))),
            _ => "adaptive".into(),
        };
        let condition = if point.params["outage"].as_bool().unwrap() {
            "V2V outage (middle third)"
        } else {
            "healthy V2V"
        };
        table.add_row(&[
            condition.to_string(),
            mode_label(mode).to_string(),
            margin,
            fmt3(point.metrics["mean_time_gap_s"].mean),
            fmt3(point.metrics["min_time_gap_s"].mean),
            fmt3(point.metrics["hazard_steps"].mean),
            fmt3(point.metrics["collisions"].mean),
            format!("{:.0}", point.metrics["throughput_vph"].mean),
            fmt_pct(point.metrics["los2_fraction"].mean),
        ]);
    }
    table.print();
    println!(
        "Expectation (paper §III, §VI-A1): the safety kernel keeps the hazard/collision figures\n\
         of the conservative baseline while retaining most of the cooperative baseline's\n\
         throughput; higher LoS ⇒ smaller time margin ⇒ higher throughput; under a V2V outage\n\
         the fixed high-LoS platoon accumulates hazard steps while the kernel adapts."
    );
}

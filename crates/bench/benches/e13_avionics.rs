//! E13 — Avionics separation assurance (§VI-B, Figs. 6–7): the three aerial
//! encounter scenarios with collaborative vs. non-collaborative traffic,
//! with and without conflict resolution.
//!
//! The full encounter × traffic × resolution cross product is one campaign
//! entry over the `avionics-rpv` family; the harness only renders the
//! aggregates.

use karyon_bench::run_campaign;
use karyon_sim::table::{fmt3, fmt_pct};
use karyon_sim::Table;
use karyon_vehicles::{HORIZONTAL_MINIMUM, VERTICAL_MINIMUM};

const SPEC: &str = r#"{
  "name": "e13-avionics", "seed": 31,
  "entries": [
    {"scenario": "avionics-rpv", "replications": 3, "duration_secs": 900,
     "grid": {"encounter": ["same-direction", "crossing", "level-change"],
              "traffic": ["collaborative", "non-collaborative"],
              "resolution": [true, false]}}
  ]
}"#;

fn encounter_label(encounter: &str) -> &'static str {
    match encounter {
        "same-direction" => "common trajectory, same direction",
        "crossing" => "leveled crossing trajectories",
        _ => "flight-level change",
    }
}

fn main() {
    println!(
        "Separation minima: horizontal {HORIZONTAL_MINIMUM:.0} m (5 NM), vertical {VERTICAL_MINIMUM:.0} m.\n"
    );
    let (report, _, _) = run_campaign(SPEC);
    let mut table = Table::new(
        "E13 — aerial encounter scenarios (900 s each, 3 seeds, means)",
        &[
            "scenario",
            "traffic",
            "resolution",
            "detected",
            "min horiz sep [km]",
            "min vert sep [m]",
            "violation [s]",
        ],
    );
    for point in &report.points {
        let resolution = point.params["resolution"].as_bool().unwrap();
        let min_h = point.metrics["min_horizontal_sep_m"].mean;
        let min_v = point.metrics["min_vertical_sep_m"].mean;
        table.add_row(&[
            encounter_label(point.params["encounter"].as_str().unwrap()).to_string(),
            point.params["traffic"].as_str().unwrap().to_string(),
            if resolution { "on" } else { "off (baseline)" }.to_string(),
            // Detection is seed-dependent, so replications may disagree:
            // report the detection rate with the mean time of the runs that
            // did detect, and "never" only when none did.
            match point.metrics["detected"].mean {
                rate if rate > 0.0 => format!(
                    "{} at {:.0} s",
                    fmt_pct(rate),
                    point.metrics.get("detected_at_s").map(|m| m.mean).unwrap_or(f64::NAN)
                ),
                _ => "never".into(),
            },
            // f64::MAX means "never in surveillance range" (and averages to
            // ±inf over replications) — render it as "-" like the seed did.
            if min_h < 1e9 { fmt3(min_h / 1_000.0) } else { "-".into() },
            if min_v < 1e9 { fmt3(min_v) } else { "-".into() },
            format!("{:.0}", point.metrics["violation_seconds"].mean),
        ]);
        // Consistency with the pre-refactor harness: without resolution the
        // encounters violate the separation minima.
        if !resolution {
            assert!(
                point.metrics["violation_seconds"].mean > 0.0,
                "the no-resolution baseline stopped violating for {}",
                point.params_label()
            );
        }
    }
    table.print();
    println!(
        "Expectation (paper §VI-B): without resolution every scenario violates the separation\n\
         minima; with resolution and collaborative (ADS-B grade) surveillance all three scenarios\n\
         stay separated; non-collaborative traffic is detected later and with smaller margins —\n\
         the reason collaborative position dissemination is a prerequisite for RPV integration."
    );
}

//! E13 — Avionics separation assurance (§VI-B, Figs. 6–7): the three aerial
//! encounter scenarios with collaborative vs. non-collaborative traffic.

use karyon_sim::table::fmt3;
use karyon_sim::Table;
use karyon_vehicles::{
    run_encounter, AerialScenario, AvionicsConfig, TrafficType, HORIZONTAL_MINIMUM,
    VERTICAL_MINIMUM,
};

fn main() {
    println!(
        "Separation minima: horizontal {HORIZONTAL_MINIMUM:.0} m (5 NM), vertical {VERTICAL_MINIMUM:.0} m.\n"
    );
    let mut table = Table::new(
        "E13 — aerial encounter scenarios (900 s each)",
        &[
            "scenario",
            "traffic",
            "resolution",
            "detected at [s]",
            "min horiz sep [km]",
            "min vert sep [m]",
            "violation [s]",
        ],
    );
    let scenarios = [
        ("common trajectory, same direction", AerialScenario::SameDirection),
        ("leveled crossing trajectories", AerialScenario::LeveledCrossing),
        ("flight-level change", AerialScenario::FlightLevelChange),
    ];
    for (name, scenario) in scenarios {
        for (traffic_name, traffic) in [
            ("collaborative", TrafficType::Collaborative),
            ("non-collaborative", TrafficType::NonCollaborative),
        ] {
            for resolution in [true, false] {
                let result = run_encounter(&AvionicsConfig {
                    scenario,
                    traffic,
                    resolution_enabled: resolution,
                    seed: 31,
                    ..Default::default()
                });
                let min_h = if result.min_horizontal_separation == f64::MAX {
                    "-".to_string()
                } else {
                    fmt3(result.min_horizontal_separation / 1_000.0)
                };
                let min_v = if result.min_vertical_separation == f64::MAX {
                    "-".to_string()
                } else {
                    fmt3(result.min_vertical_separation)
                };
                table.add_row(&[
                    name.to_string(),
                    traffic_name.to_string(),
                    if resolution { "on" } else { "off (baseline)" }.to_string(),
                    result.detected_at.map(|t| format!("{t:.0}")).unwrap_or_else(|| "never".into()),
                    min_h,
                    min_v,
                    format!("{:.0}", result.violation_seconds),
                ]);
            }
        }
    }
    table.print();
    println!(
        "Expectation (paper §VI-B): without resolution every scenario violates the separation\n\
         minima; with resolution and collaborative (ADS-B grade) surveillance all three scenarios\n\
         stay separated; non-collaborative traffic is detected later and with smaller margins —\n\
         the reason collaborative position dissemination is a prerequisite for RPV integration."
    );
}

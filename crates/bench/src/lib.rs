//! # karyon-bench — experiment harnesses for the KARYON reproduction
//!
//! Every table/figure-level experiment of DESIGN.md §4 is a `harness = false`
//! bench target in `benches/`; running `cargo bench --workspace` executes all
//! of them and prints their result tables, which EXPERIMENTS.md records.
//! `benches/micro.rs` contains the Criterion micro-benchmarks (safety-kernel
//! cycle, validity combination, fusion, TDMA slot handling, event publication)
//! and `benches/e16_campaign_throughput.rs` tracks the experiment pipeline's
//! own throughput (calendar-queue event core, chunked campaign runner,
//! checkpoint overhead), emitting `BENCH_campaign.json` at the workspace
//! root.
//!
//! Harnesses honour a "quick mode" (~10× smaller workloads) so CI smoke jobs
//! stay fast; [`quick_mode`] is the shared switch:
//!
//! ```
//! std::env::set_var("DOCTEST_QUICK", "1");
//! assert!(karyon_bench::quick_mode("DOCTEST_QUICK"));
//! std::env::set_var("DOCTEST_QUICK", "0");
//! assert!(!karyon_bench::quick_mode("DOCTEST_QUICK"));
//! std::env::remove_var("DOCTEST_QUICK");
//! assert!(!karyon_bench::quick_mode("DOCTEST_QUICK"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// True when the harness should run its ~10× smaller "quick" workload:
/// either `env_var` is set to anything but `"0"` (how CI invokes the
/// benches, e.g. `E16_QUICK=1`) or `--quick` was passed on the command line.
pub fn quick_mode(env_var: &str) -> bool {
    std::env::var(env_var).is_ok_and(|v| v != "0") || std::env::args().any(|a| a == "--quick")
}

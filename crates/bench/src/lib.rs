//! # karyon-bench — experiment harnesses for the KARYON reproduction
//!
//! Every table/figure-level experiment of DESIGN.md §4 is a `harness = false`
//! bench target in `benches/`; running `cargo bench --workspace` executes all
//! of them and prints their result tables, which EXPERIMENTS.md records.
//!
//! Each experiment harness is a **thin campaign driver**: it embeds its
//! sweep as a JSON campaign spec over the builtin scenario registry (the
//! same format `karyon-campaign run` accepts), executes it via
//! [`run_campaign`], and renders the aggregated points — the measurement
//! loop, seed derivation, parallel execution and aggregation all live in
//! `karyon-scenario`, so grid sweeps, checkpoint/resume and bounded-memory
//! aggregation apply to the whole paper evaluation.
//! `benches/micro.rs` contains the Criterion micro-benchmarks (safety-kernel
//! cycle, validity combination, fusion, TDMA slot handling, event publication)
//! and `benches/e16_campaign_throughput.rs` tracks the experiment pipeline's
//! own throughput (calendar-queue event core, chunked campaign runner,
//! checkpoint overhead), emitting `BENCH_campaign.json` at the workspace
//! root.
//!
//! Harnesses honour a "quick mode" (~10× smaller workloads) so CI smoke jobs
//! stay fast; [`quick_mode`] is the shared switch:
//!
//! ```
//! std::env::set_var("DOCTEST_QUICK", "1");
//! assert!(karyon_bench::quick_mode("DOCTEST_QUICK"));
//! std::env::set_var("DOCTEST_QUICK", "0");
//! assert!(!karyon_bench::quick_mode("DOCTEST_QUICK"));
//! std::env::remove_var("DOCTEST_QUICK");
//! assert!(!karyon_bench::quick_mode("DOCTEST_QUICK"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// True when the harness should run its ~10× smaller "quick" workload:
/// either `env_var` is set to anything but `"0"` (how CI invokes the
/// benches, e.g. `E16_QUICK=1`) or `--quick` was passed on the command line.
pub fn quick_mode(env_var: &str) -> bool {
    std::env::var(env_var).is_ok_and(|v| v != "0") || std::env::args().any(|a| a == "--quick")
}

/// Parses a JSON campaign spec, executes it on the builtin scenario registry
/// through [`Campaign::run_instrumented`](karyon_scenario::Campaign::run_instrumented),
/// and returns the report together with the runner statistics and the
/// wall-clock time of the execution.
///
/// This is the entire "measurement loop" of the e01–e15 experiment
/// harnesses: each harness declares its sweep as a spec (the same format
/// `karyon-campaign run` accepts), and grid expansion, deterministic per-run
/// seed derivation, parallel chunked execution and canonical aggregation all
/// come from the campaign runner — reports are bit-identical for any worker
/// count.
///
/// # Panics
/// Panics when the spec does not parse or names an unknown scenario family:
/// a harness with a broken spec must fail loudly, not measure nothing.
pub fn run_campaign(
    spec_json: &str,
) -> (karyon_scenario::CampaignReport, karyon_scenario::RunnerStats, std::time::Duration) {
    use karyon_scenario::{builtin_registry, Campaign};
    let campaign = Campaign::from_json_str(spec_json).expect("harness spec must be well-formed");
    let registry = builtin_registry();
    let started = std::time::Instant::now();
    let (report, stats) =
        campaign.run_instrumented(&registry, None).expect("harness families are builtin");
    (report, stats, started.elapsed())
}

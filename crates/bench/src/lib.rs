//! # karyon-bench — experiment harnesses for the KARYON reproduction
//!
//! Every table/figure-level experiment of DESIGN.md §4 is a `harness = false`
//! bench target in `benches/`; running `cargo bench --workspace` executes all
//! of them and prints their result tables, which EXPERIMENTS.md records.
//! `benches/micro.rs` contains the Criterion micro-benchmarks (safety-kernel
//! cycle, validity combination, fusion, TDMA slot handling, event publication).

#![forbid(unsafe_code)]

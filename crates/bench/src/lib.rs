//! # karyon-bench — experiment harnesses for the KARYON reproduction
//!
//! Every table/figure-level experiment of DESIGN.md §4 is a `harness = false`
//! bench target in `benches/`; running `cargo bench --workspace` executes all
//! of them and prints their result tables, which EXPERIMENTS.md records.
//! `benches/micro.rs` contains the Criterion micro-benchmarks (safety-kernel
//! cycle, validity combination, fusion, TDMA slot handling, event publication)
//! and `benches/e16_campaign_throughput.rs` tracks the experiment pipeline's
//! own throughput (calendar-queue event core, chunked campaign runner),
//! emitting `BENCH_campaign.json` at the workspace root.

#![forbid(unsafe_code)]

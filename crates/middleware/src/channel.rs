//! Event channels, QoS assessment and the dissemination bus.
//!
//! "An event channel provides a unidirectional communication channel
//! connecting multiple publishers to multiple subscribers.  Before a
//! publisher can disseminate an event, it has to announce the respective
//! event channel … The notion of an event channel allows specifying and
//! enforcing QoS attributes. … In a system-of-systems in which spontaneous
//! communication is needed, the information about the underlying network
//! properties have to be acquired dynamically during run-time" (paper §V-B).

use std::collections::BTreeMap;

use karyon_sim::{Histogram, Rng, SimDuration, SimTime};

use crate::event::{Context, ContextFilter, Event, QosRequirement, Subject};

/// The dynamically assessed properties of one underlying network
/// (the output of the monitoring mechanisms of §V-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkCapability {
    /// Expected dissemination latency.
    pub expected_latency: SimDuration,
    /// Expected delivery ratio in `[0, 1]`.
    pub expected_delivery_ratio: f64,
    /// Events per second the network can sustain.
    pub capacity_rate: f64,
}

impl NetworkCapability {
    /// A wired in-vehicle network: fast and reliable.
    pub fn local_bus() -> Self {
        NetworkCapability {
            expected_latency: SimDuration::from_micros(500),
            expected_delivery_ratio: 0.999,
            capacity_rate: 10_000.0,
        }
    }

    /// A healthy vehicular wireless network.
    pub fn wireless_nominal() -> Self {
        NetworkCapability {
            expected_latency: SimDuration::from_millis(20),
            expected_delivery_ratio: 0.95,
            capacity_rate: 500.0,
        }
    }

    /// A degraded wireless network (interference, congestion).
    pub fn wireless_degraded() -> Self {
        NetworkCapability {
            expected_latency: SimDuration::from_millis(150),
            expected_delivery_ratio: 0.6,
            capacity_rate: 100.0,
        }
    }

    /// True when this capability satisfies the requirement, given the
    /// aggregate rate already admitted on the network.
    pub fn satisfies(&self, requirement: &QosRequirement, admitted_rate: f64) -> bool {
        self.expected_latency <= requirement.max_latency
            && self.expected_delivery_ratio >= requirement.min_delivery_ratio
            && admitted_rate + requirement.max_rate <= self.capacity_rate
    }

    /// The pairwise-worse combination of two capabilities (a channel crossing
    /// a gateway between two networks gets the weaker guarantees of both).
    pub fn combine_worst(&self, other: &NetworkCapability) -> NetworkCapability {
        NetworkCapability {
            expected_latency: self.expected_latency.max(other.expected_latency),
            expected_delivery_ratio: self
                .expected_delivery_ratio
                .min(other.expected_delivery_ratio),
            capacity_rate: self.capacity_rate.min(other.capacity_rate),
        }
    }
}

/// Identifier of an attached network segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetworkId(pub u32);

/// Identifier of a subscriber endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriberId(pub u32);

/// The result of announcing an event channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The requested QoS can currently be guaranteed.
    Admitted,
    /// The requested QoS cannot be guaranteed; the channel operates (or is
    /// refused) as best effort.
    Rejected,
}

/// A published event delivered to one subscriber, with its delivery latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The receiving subscriber.
    pub subscriber: SubscriberId,
    /// The delivered event.
    pub event: Event,
    /// When it was delivered.
    pub delivered_at: SimTime,
    /// Dissemination latency.
    pub latency: SimDuration,
}

/// Accumulated delivery statistics of one announced event channel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChannelStats {
    /// Events published on the channel.
    pub published: u64,
    /// Deliveries made to matching subscribers (one event can be delivered to
    /// several subscribers).
    pub delivered: u64,
    /// Deliveries whose latency exceeded the channel's QoS deadline.
    pub missed_deadline: u64,
    /// Mean delivery latency in milliseconds (0 while nothing was delivered).
    pub mean_latency_ms: f64,
}

#[derive(Debug, Clone)]
struct ChannelState {
    qos: QosRequirement,
    admission: Admission,
    publisher_network: NetworkId,
    published: u64,
    delivered: u64,
    missed_deadline: u64,
    latencies_ms: Histogram,
}

#[derive(Debug, Clone)]
struct Subscription {
    subscriber: SubscriberId,
    subject: Subject,
    filter: ContextFilter,
    network: NetworkId,
}

/// The event-dissemination bus: networks, subscriptions, announced channels
/// and QoS accounting.  One bus models the system-of-systems a vehicle
/// participates in (in-vehicle bus + one or more wireless networks, bridged
/// by gateways).
#[derive(Debug)]
pub struct EventBus {
    networks: BTreeMap<NetworkId, NetworkCapability>,
    channels: BTreeMap<Subject, ChannelState>,
    subscriptions: Vec<Subscription>,
    rng: Rng,
}

impl EventBus {
    /// Creates a bus with no networks attached.
    pub fn new(seed: u64) -> Self {
        EventBus {
            networks: BTreeMap::new(),
            channels: BTreeMap::new(),
            subscriptions: Vec::new(),
            rng: Rng::seed_from(seed),
        }
    }

    /// Attaches (or re-assesses) a network segment.
    pub fn attach_network(&mut self, id: NetworkId, capability: NetworkCapability) {
        self.networks.insert(id, capability);
    }

    /// Updates the dynamically monitored capability of a network and
    /// re-assesses every channel publishing through it.  Returns the subjects
    /// whose admission status changed (the adaptation hook the safety kernel
    /// listens to).
    pub fn update_capability(
        &mut self,
        id: NetworkId,
        capability: NetworkCapability,
    ) -> Vec<Subject> {
        self.networks.insert(id, capability);
        let mut changed = Vec::new();
        let subjects: Vec<Subject> = self.channels.keys().copied().collect();
        for subject in subjects {
            let admitted_rate = self.admitted_rate_excluding(subject);
            let channel = self.channels.get(&subject).expect("channel exists");
            let effective = self.effective_capability(subject, channel.publisher_network);
            let new_admission =
                if effective.map(|c| c.satisfies(&channel.qos, admitted_rate)).unwrap_or(false) {
                    Admission::Admitted
                } else {
                    Admission::Rejected
                };
            let channel = self.channels.get_mut(&subject).expect("channel exists");
            if new_admission != channel.admission {
                channel.admission = new_admission;
                changed.push(subject);
            }
        }
        changed
    }

    /// Subscribes an endpoint on a network to a subject with a context filter.
    pub fn subscribe(
        &mut self,
        subscriber: SubscriberId,
        network: NetworkId,
        subject: Subject,
        filter: ContextFilter,
    ) {
        self.subscriptions.push(Subscription { subscriber, subject, filter, network });
    }

    /// Number of active subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    fn admitted_rate_excluding(&self, except: Subject) -> f64 {
        self.channels
            .iter()
            .filter(|(s, c)| **s != except && c.admission == Admission::Admitted)
            .map(|(_, c)| c.qos.max_rate)
            .sum()
    }

    /// The worst-case capability over the publisher's network and every
    /// subscriber network for the subject (gateway-crossing channels are only
    /// as good as their weakest segment).
    fn effective_capability(
        &self,
        subject: Subject,
        publisher_network: NetworkId,
    ) -> Option<NetworkCapability> {
        let mut capability = *self.networks.get(&publisher_network)?;
        for sub in self.subscriptions.iter().filter(|s| s.subject == subject) {
            if let Some(remote) = self.networks.get(&sub.network) {
                capability = capability.combine_worst(remote);
            }
        }
        Some(capability)
    }

    /// Announces an event channel for `subject` published from
    /// `publisher_network` with the given QoS requirement; performs the
    /// dynamic assessment against the current network capabilities.
    pub fn announce(
        &mut self,
        subject: Subject,
        publisher_network: NetworkId,
        qos: QosRequirement,
    ) -> Admission {
        let admitted_rate = self.admitted_rate_excluding(subject);
        let admission = match self.effective_capability(subject, publisher_network) {
            Some(capability) if capability.satisfies(&qos, admitted_rate) => Admission::Admitted,
            _ => Admission::Rejected,
        };
        self.channels.insert(
            subject,
            ChannelState {
                qos,
                admission,
                publisher_network,
                published: 0,
                delivered: 0,
                missed_deadline: 0,
                latencies_ms: Histogram::new(),
            },
        );
        admission
    }

    /// The admission status of an announced channel.
    pub fn admission(&self, subject: Subject) -> Option<Admission> {
        self.channels.get(&subject).map(|c| c.admission)
    }

    /// Publishes an event on its (announced) channel; returns the deliveries
    /// made to matching subscribers.  Events on unannounced channels are
    /// dropped (the announcement is mandatory in FAMOUSO).
    pub fn publish(&mut self, event: Event, now: SimTime) -> Vec<Delivery> {
        let Some(channel) = self.channels.get(&event.subject) else {
            return Vec::new();
        };
        let publisher_network = channel.publisher_network;
        let qos = channel.qos;
        let mut deliveries = Vec::new();
        let mut delivered_count = 0u64;
        let mut missed = 0u64;
        let mut latencies: Vec<f64> = Vec::new();

        for sub in self.subscriptions.iter().filter(|s| s.subject == event.subject) {
            let Some(pub_cap) = self.networks.get(&publisher_network) else { continue };
            let Some(sub_cap) = self.networks.get(&sub.network) else { continue };
            let capability = pub_cap.combine_worst(sub_cap);
            // Loss.
            if !self.rng.chance(capability.expected_delivery_ratio) {
                continue;
            }
            // Latency: exponential around the expected value.
            let latency = SimDuration::from_secs_f64(
                self.rng.exponential(capability.expected_latency.as_secs_f64().max(1e-6)),
            );
            let delivered_at = now + latency;
            if !sub.filter.matches(&event.context, delivered_at) {
                continue;
            }
            if latency > qos.max_latency {
                missed += 1;
            }
            delivered_count += 1;
            latencies.push(latency.as_secs_f64() * 1e3);
            deliveries.push(Delivery {
                subscriber: sub.subscriber,
                event: event.clone(),
                delivered_at,
                latency,
            });
        }

        let channel = self.channels.get_mut(&event.subject).expect("channel exists");
        channel.published += 1;
        channel.delivered += delivered_count;
        channel.missed_deadline += missed;
        for l in latencies {
            channel.latencies_ms.record(l);
        }
        deliveries
    }

    /// Per-channel delivery and deadline statistics, or `None` for a subject
    /// that was never announced.
    pub fn channel_stats(&self, subject: Subject) -> Option<ChannelStats> {
        self.channels.get(&subject).map(|c| ChannelStats {
            published: c.published,
            delivered: c.delivered,
            missed_deadline: c.missed_deadline,
            mean_latency_ms: c.latencies_ms.mean(),
        })
    }

    /// Convenience: publish with a fresh context built from position/time.
    pub fn publish_from(
        &mut self,
        subject: Subject,
        position: Option<karyon_sim::Vec2>,
        content: Vec<u8>,
        now: SimTime,
    ) -> Vec<Delivery> {
        let event = Event::new(subject, Context { position, timestamp: now }, content);
        self.publish(event, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karyon_sim::Vec2;

    fn bus() -> EventBus {
        let mut bus = EventBus::new(7);
        bus.attach_network(NetworkId(0), NetworkCapability::local_bus());
        bus.attach_network(NetworkId(1), NetworkCapability::wireless_nominal());
        bus
    }

    #[test]
    fn capability_satisfaction_and_combination() {
        let local = NetworkCapability::local_bus();
        let wireless = NetworkCapability::wireless_nominal();
        let strict = QosRequirement {
            max_latency: SimDuration::from_millis(1),
            min_delivery_ratio: 0.99,
            max_rate: 10.0,
        };
        assert!(local.satisfies(&strict, 0.0));
        assert!(!wireless.satisfies(&strict, 0.0));
        assert!(!local.satisfies(&strict, 9_995.0), "capacity exhausted");
        let combined = local.combine_worst(&wireless);
        assert_eq!(combined.expected_latency, wireless.expected_latency);
        assert_eq!(combined.capacity_rate, wireless.capacity_rate);
    }

    #[test]
    fn announcement_assesses_qos_against_subscriber_networks() {
        let mut bus = bus();
        let subject = Subject::from_name("vehicle/heading");
        // Local-only subscription: strict latency is admitted.
        bus.subscribe(SubscriberId(1), NetworkId(0), subject, ContextFilter::accept_all());
        let strict = QosRequirement {
            max_latency: SimDuration::from_millis(2),
            min_delivery_ratio: 0.99,
            max_rate: 10.0,
        };
        assert_eq!(bus.announce(subject, NetworkId(0), strict), Admission::Admitted);
        // Adding a wireless subscriber makes the same requirement unsatisfiable.
        bus.subscribe(SubscriberId(2), NetworkId(1), subject, ContextFilter::accept_all());
        assert_eq!(bus.announce(subject, NetworkId(0), strict), Admission::Rejected);
        assert_eq!(bus.admission(subject), Some(Admission::Rejected));
        // A relaxed requirement is admitted.
        let relaxed = QosRequirement {
            max_latency: SimDuration::from_millis(100),
            min_delivery_ratio: 0.9,
            max_rate: 10.0,
        };
        assert_eq!(bus.announce(subject, NetworkId(0), relaxed), Admission::Admitted);
    }

    #[test]
    fn rate_admission_is_cumulative() {
        let mut bus = bus();
        let a = Subject::from_name("a");
        let b = Subject::from_name("b");
        bus.subscribe(SubscriberId(1), NetworkId(1), a, ContextFilter::accept_all());
        bus.subscribe(SubscriberId(1), NetworkId(1), b, ContextFilter::accept_all());
        let heavy = QosRequirement {
            max_latency: SimDuration::from_secs(1),
            min_delivery_ratio: 0.5,
            max_rate: 300.0,
        };
        assert_eq!(bus.announce(a, NetworkId(1), heavy), Admission::Admitted);
        // The wireless network sustains 500 events/s: a second 300 events/s
        // channel does not fit.
        assert_eq!(bus.announce(b, NetworkId(1), heavy), Admission::Rejected);
    }

    #[test]
    fn publish_routes_to_matching_subscribers_only() {
        let mut bus = bus();
        let subject = Subject::from_name("hazard/warning");
        bus.subscribe(
            SubscriberId(1),
            NetworkId(0),
            subject,
            ContextFilter::within(Vec2::ZERO, 100.0),
        );
        bus.subscribe(
            SubscriberId(2),
            NetworkId(0),
            subject,
            ContextFilter::within(Vec2::new(10_000.0, 0.0), 100.0),
        );
        bus.subscribe(
            SubscriberId(3),
            NetworkId(0),
            Subject::from_name("other"),
            ContextFilter::accept_all(),
        );
        bus.announce(subject, NetworkId(0), QosRequirement::best_effort());
        let deliveries =
            bus.publish_from(subject, Some(Vec2::new(5.0, 5.0)), vec![1], SimTime::from_millis(10));
        let receivers: Vec<u32> = deliveries.iter().map(|d| d.subscriber.0).collect();
        assert_eq!(receivers, vec![1]);
        let stats = bus.channel_stats(subject).unwrap();
        assert_eq!(stats.published, 1);
        assert_eq!(stats.delivered, 1);
    }

    #[test]
    fn unannounced_channels_drop_events() {
        let mut bus = bus();
        let subject = Subject::from_name("unannounced");
        bus.subscribe(SubscriberId(1), NetworkId(0), subject, ContextFilter::accept_all());
        let deliveries = bus.publish_from(subject, None, vec![], SimTime::ZERO);
        assert!(deliveries.is_empty());
        assert!(bus.channel_stats(subject).is_none());
    }

    #[test]
    fn capability_degradation_changes_admission() {
        let mut bus = bus();
        let subject = Subject::from_name("v2v/state");
        bus.subscribe(SubscriberId(1), NetworkId(1), subject, ContextFilter::accept_all());
        let qos = QosRequirement {
            max_latency: SimDuration::from_millis(50),
            min_delivery_ratio: 0.9,
            max_rate: 10.0,
        };
        assert_eq!(bus.announce(subject, NetworkId(1), qos), Admission::Admitted);
        // The monitoring layer reports degradation: the channel loses its admission.
        let changed = bus.update_capability(NetworkId(1), NetworkCapability::wireless_degraded());
        assert_eq!(changed, vec![subject]);
        assert_eq!(bus.admission(subject), Some(Admission::Rejected));
        // Recovery restores it.
        let changed = bus.update_capability(NetworkId(1), NetworkCapability::wireless_nominal());
        assert_eq!(changed, vec![subject]);
        assert_eq!(bus.admission(subject), Some(Admission::Admitted));
        // Re-asserting the same capability changes nothing.
        assert!(bus
            .update_capability(NetworkId(1), NetworkCapability::wireless_nominal())
            .is_empty());
    }

    #[test]
    fn delivery_latency_statistics_accumulate() {
        let mut bus = bus();
        let subject = Subject::from_name("platoon/lead-state");
        bus.subscribe(SubscriberId(1), NetworkId(1), subject, ContextFilter::accept_all());
        bus.announce(
            subject,
            NetworkId(1),
            QosRequirement {
                max_latency: SimDuration::from_millis(60),
                min_delivery_ratio: 0.5,
                max_rate: 10.0,
            },
        );
        for i in 0..200u64 {
            bus.publish_from(subject, None, vec![], SimTime::from_millis(i * 10));
        }
        let stats = bus.channel_stats(subject).unwrap();
        assert_eq!(stats.published, 200);
        assert!(stats.delivered > 150, "delivered {}", stats.delivered);
        assert!(
            stats.mean_latency_ms > 1.0 && stats.mean_latency_ms < 100.0,
            "mean latency {}",
            stats.mean_latency_ms
        );
        assert_eq!(bus.subscription_count(), 1);
    }
}

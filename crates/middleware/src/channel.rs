//! Network capabilities, QoS assessment and channel-level types (paper §V-B).
//!
//! "An event channel provides a unidirectional communication channel
//! connecting multiple publishers to multiple subscribers.  Before a
//! publisher can disseminate an event, it has to announce the respective
//! event channel … The notion of an event channel allows specifying and
//! enforcing QoS attributes. … In a system-of-systems in which spontaneous
//! communication is needed, the information about the underlying network
//! properties have to be acquired dynamically during run-time" (paper §V-B).
//!
//! The bus itself — topic routing, mailboxes, overload handling — lives in
//! [`bus`](crate::bus); this module holds the assessment-side vocabulary it
//! builds on: [`NetworkCapability`] (what the monitoring layer reports),
//! [`Admission`] (what announcement-time assessment decides), and the legacy
//! delivery/stats types kept for the deprecated v1 surface.

use karyon_sim::{SimDuration, SimTime};

use crate::event::{Event, QosRequirement};

/// The dynamically assessed properties of one underlying network
/// (the output of the monitoring mechanisms of §V-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkCapability {
    /// Expected dissemination latency.
    pub expected_latency: SimDuration,
    /// Expected delivery ratio in `[0, 1]`.
    pub expected_delivery_ratio: f64,
    /// Events per second the network can sustain.
    pub capacity_rate: f64,
}

impl NetworkCapability {
    /// A wired in-vehicle network: fast and reliable.
    pub fn local_bus() -> Self {
        NetworkCapability {
            expected_latency: SimDuration::from_micros(500),
            expected_delivery_ratio: 0.999,
            capacity_rate: 10_000.0,
        }
    }

    /// A healthy vehicular wireless network.
    pub fn wireless_nominal() -> Self {
        NetworkCapability {
            expected_latency: SimDuration::from_millis(20),
            expected_delivery_ratio: 0.95,
            capacity_rate: 500.0,
        }
    }

    /// A degraded wireless network (interference, congestion).
    pub fn wireless_degraded() -> Self {
        NetworkCapability {
            expected_latency: SimDuration::from_millis(150),
            expected_delivery_ratio: 0.6,
            capacity_rate: 100.0,
        }
    }

    /// True when this capability satisfies the requirement, given the
    /// aggregate rate already admitted on the network.
    pub fn satisfies(&self, requirement: &QosRequirement, admitted_rate: f64) -> bool {
        self.expected_latency <= requirement.max_latency
            && self.expected_delivery_ratio >= requirement.min_delivery_ratio
            && admitted_rate + requirement.max_rate <= self.capacity_rate
    }

    /// The pairwise-worse combination of two capabilities (a channel crossing
    /// a gateway between two networks gets the weaker guarantees of both).
    pub fn combine_worst(&self, other: &NetworkCapability) -> NetworkCapability {
        NetworkCapability {
            expected_latency: self.expected_latency.max(other.expected_latency),
            expected_delivery_ratio: self
                .expected_delivery_ratio
                .min(other.expected_delivery_ratio),
            capacity_rate: self.capacity_rate.min(other.capacity_rate),
        }
    }
}

/// Identifier of an attached network segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetworkId(pub u32);

/// Identifier of a subscriber endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriberId(pub u32);

/// The result of announcing an event channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The requested QoS can currently be guaranteed.
    Admitted,
    /// The requested QoS cannot be guaranteed; the channel operates (or is
    /// refused) as best effort.
    Rejected,
}

/// A published event delivered to one subscriber, with its delivery latency
/// (the synchronous-delivery record of the deprecated v1 publish surface).
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The receiving subscriber.
    pub subscriber: SubscriberId,
    /// The delivered event.
    pub event: Event,
    /// When it was delivered.
    pub delivered_at: SimTime,
    /// Dissemination latency.
    pub latency: SimDuration,
}

/// Accumulated delivery statistics of one announced event channel, summed
/// over every subscription of its subject.
///
/// New code should prefer the per-subscription
/// [`SubscriptionStats`](crate::SubscriptionStats), which additionally break
/// out drop causes, backlog and P50/P99 latency.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChannelStats {
    /// Events published on the channel.
    pub published: u64,
    /// Deliveries made to matching subscribers (one event can be delivered to
    /// several subscribers).
    pub delivered: u64,
    /// Deliveries whose latency exceeded the channel's QoS deadline.
    pub missed_deadline: u64,
    /// Mean delivery latency in milliseconds (0 while nothing was delivered).
    pub mean_latency_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_satisfaction_and_combination() {
        let local = NetworkCapability::local_bus();
        let wireless = NetworkCapability::wireless_nominal();
        let strict = QosRequirement::builder()
            .max_latency(SimDuration::from_millis(1))
            .min_delivery_ratio(0.99)
            .max_rate(10.0)
            .build();
        assert!(local.satisfies(&strict, 0.0));
        assert!(!wireless.satisfies(&strict, 0.0));
        assert!(!local.satisfies(&strict, 9_995.0), "capacity exhausted");
        let combined = local.combine_worst(&wireless);
        assert_eq!(combined.expected_latency, wireless.expected_latency);
        assert_eq!(combined.capacity_rate, wireless.capacity_rate);
    }
}

//! EventBus v2 — topic routing, QoS classes, bounded mailboxes and overload
//! strategies.
//!
//! The KARYON middleware promises QoS assessment *and maintenance* (paper
//! §V-B).  The [`channel`](crate::channel) module supplies the assessment
//! half — announcement-time admission against monitored
//! [`NetworkCapability`]s; this module supplies the maintenance half: what
//! the bus does when publishers outrun subscribers.
//!
//! * **Topics** — events route by hierarchical, dot-separated topic names
//!   (`"platoon.lead"`), with wildcard-prefix subscriptions (`"platoon.*"`
//!   matches every topic nested under `platoon.`).  Each topic also carries
//!   the FNV-derived [`Subject`] of its name, so the legacy subject-based
//!   API interoperates with topic-based code.
//! * **Mailboxes** — every subscription owns a bounded ring
//!   [`Mailbox`], sized by its [`QosClass`];
//!   subscribers drain it with [`EventBus::poll`] / [`EventBus::drain_with`].
//!   Publishing moves only `Copy` [`Payload`]s, so the hot path allocates
//!   nothing once routes are warm.
//! * **Backpressure** — when a mailbox is full, the subscription's
//!   [`OverloadStrategy`] decides (drop-newest / drop-oldest / sample /
//!   aggregate); when the bus-wide backlog exceeds
//!   [`EventBus::set_backlog_threshold`], realtime subscriptions shed
//!   incoming events outright to protect their latency bound.
//! * **Stats** — each subscription accumulates delivery/drop counters and a
//!   constant-memory latency histogram, reported as [`SubscriptionStats`]
//!   (P50/P99 delivery latency included).

use std::collections::BTreeMap;

use karyon_sim::{BucketHistogram, Rng, SimDuration, SimTime};

use crate::channel::{
    Admission, ChannelStats, Delivery, NetworkCapability, NetworkId, SubscriberId,
};
use crate::event::{Context, ContextFilter, Event, Payload, QosRequirement, Subject};
use crate::mailbox::Mailbox;
use crate::overload::{OverloadStrategy, QosClass};

/// Identifier of an interned topic (index into the bus's topic table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TopicId(pub u32);

/// Identifier of one subscription (stable across unsubscribes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriptionId(pub u32);

/// The range and resolution of the per-subscription delivery-latency
/// histograms: 1 ms buckets up to 2 s; later samples land in the overflow
/// bucket (quantiles then report the exact observed maximum).
const LATENCY_HIST_MS: (f64, f64, usize) = (0.0, 2_000.0, 2_000);

/// The publisher handle returned by [`TopicRef::announce`]: proof that the
/// channel was announced, carrying the admission decision taken at
/// announcement time.
///
/// All publishing goes through [`EventBus::publish`] with this handle; the
/// *current* admission (which [`EventBus::update_capability`] may have
/// changed since) is available via [`EventBus::admission`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Publisher {
    pub(crate) topic: TopicId,
    pub(crate) subject: Subject,
    pub(crate) admission: Admission,
}

impl Publisher {
    /// The topic this handle publishes on.
    pub fn topic(&self) -> TopicId {
        self.topic
    }

    /// The subject UID of the topic (for the legacy subject-based API).
    pub fn subject(&self) -> Subject {
        self.subject
    }

    /// The admission decision taken when the channel was announced.
    pub fn admission(&self) -> Admission {
        self.admission
    }

    /// True when the channel was admitted at announcement time.
    pub fn is_admitted(&self) -> bool {
        self.admission == Admission::Admitted
    }
}

/// What happened to one published event, per routing step.
///
/// `Copy` and allocation-free — the v2 counterpart of the legacy
/// `Vec<Delivery>` return.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PublishOutcome {
    /// Active subscriptions the topic routed to.
    pub matched: u32,
    /// Copies enqueued into a mailbox (including ones that displaced an
    /// older queued event).
    pub enqueued: u32,
    /// Copies shed by backpressure: realtime pressure drops, full-mailbox
    /// drop-newest, displaced queued events and sampled-out events.
    pub dropped_overload: u32,
    /// Copies coalesced into an already-queued event (aggregate strategy).
    pub aggregated: u32,
    /// Copies lost by the modeled network.
    pub dropped_loss: u32,
    /// Copies rejected by the subscription's context filter.
    pub filtered_out: u32,
}

/// One event handed to a subscriber by [`EventBus::poll`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveredEvent {
    /// The subscription it was delivered on.
    pub subscription: SubscriptionId,
    /// The topic it was published on (the concrete topic, also for wildcard
    /// subscriptions).
    pub topic: TopicId,
    /// The event body.
    pub payload: Payload,
    /// When the publisher produced it.
    pub produced_at: SimTime,
    /// When the network delivered it into the mailbox.
    pub arrived_at: SimTime,
    /// When the subscriber drained it (never before `arrived_at`).
    pub delivered_at: SimTime,
    /// End-to-end delivery latency: production → drain, queueing included.
    pub latency: SimDuration,
    /// Source events this delivery represents (> 1 after aggregation).
    pub represents: u32,
}

/// Accumulated statistics of one subscription — the per-subscription
/// replacement of the channel-aggregated legacy [`ChannelStats`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SubscriptionStats {
    /// Published events routed to this subscription.
    pub matched: u64,
    /// Events enqueued into the mailbox.
    pub enqueued: u64,
    /// Events drained by the subscriber.
    pub delivered: u64,
    /// Source events represented by the drained ones (≥ `delivered`; the
    /// difference is what aggregation coalesced).
    pub represented: u64,
    /// Realtime events shed because the bus-wide backlog exceeded the
    /// threshold.
    pub dropped_pressure: u64,
    /// Events shed because the mailbox was full (drop-newest strategy).
    pub dropped_capacity: u64,
    /// Queued events displaced by newer ones (drop-oldest / sample).
    pub displaced: u64,
    /// Events shed by the sampling strategy while the mailbox was full.
    pub sampled_out: u64,
    /// Events coalesced into an already-queued slot (aggregate strategy).
    pub aggregated_merged: u64,
    /// Events lost by the modeled network.
    pub dropped_loss: u64,
    /// Events rejected by the context filter.
    pub filtered_out: u64,
    /// Queued events discarded when the subscription was cancelled.
    pub discarded_on_unsubscribe: u64,
    /// Deliveries whose latency exceeded the channel's QoS deadline.
    pub missed_deadline: u64,
    /// Events currently queued.
    pub backlog: u64,
    /// Largest backlog ever observed.
    pub peak_backlog: u64,
    /// Mean delivery latency in milliseconds (0 while nothing was drained).
    pub mean_latency_ms: f64,
    /// Median delivery latency in milliseconds (1 ms resolution).
    pub p50_latency_ms: f64,
    /// 99th-percentile delivery latency in milliseconds (1 ms resolution).
    pub p99_latency_ms: f64,
}

impl SubscriptionStats {
    /// Fraction of matched events that were drained by the subscriber,
    /// counting aggregated representations (0 while nothing matched).
    pub fn delivery_ratio(&self) -> f64 {
        if self.matched == 0 {
            0.0
        } else {
            self.represented as f64 / self.matched as f64
        }
    }
}

/// One queued mailbox slot — `Copy`, so rings move no heap data.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct QueuedEvent {
    topic: TopicId,
    produced_at: SimTime,
    arrived_at: SimTime,
    deadline: SimDuration,
    payload: Payload,
    aggregated: u32,
}

impl Default for TopicId {
    fn default() -> Self {
        TopicId(u32::MAX)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct SubCounters {
    matched: u64,
    enqueued: u64,
    delivered: u64,
    represented: u64,
    dropped_pressure: u64,
    dropped_capacity: u64,
    displaced: u64,
    sampled_out: u64,
    aggregated_merged: u64,
    dropped_loss: u64,
    filtered_out: u64,
    discarded_on_unsubscribe: u64,
    missed_deadline: u64,
    peak_backlog: u64,
}

/// What a subscription listens to.
#[derive(Debug, Clone, PartialEq)]
enum Pattern {
    /// Exactly one topic.
    Exact(TopicId),
    /// Every topic whose name extends this prefix (stored with its trailing
    /// separator, e.g. `"platoon."`; the empty prefix matches every named
    /// topic).
    Prefix(String),
}

#[derive(Debug)]
struct SubscriptionEntry {
    subscriber: SubscriberId,
    network: NetworkId,
    pattern: Pattern,
    filter: ContextFilter,
    class: QosClass,
    strategy: OverloadStrategy,
    mailbox: Mailbox<QueuedEvent>,
    active: bool,
    sample_counter: u64,
    counters: SubCounters,
    latency_ms: BucketHistogram,
}

#[derive(Debug, Clone)]
struct TopicEntry {
    /// `None` for topics created through the legacy subject-only API (those
    /// can never wildcard-match).
    name: Option<String>,
    subject: Subject,
}

#[derive(Debug, Clone)]
struct ChannelState {
    qos: QosRequirement,
    admission: Admission,
    publisher_network: NetworkId,
    published: u64,
}

/// The event-dissemination bus: networks, topics, QoS-classed subscriptions
/// with bounded mailboxes, announced channels and QoS accounting.  One bus
/// models the system-of-systems a vehicle participates in (in-vehicle bus +
/// one or more wireless networks, bridged by gateways).
///
/// ```
/// use karyon_middleware::{
///     EventBus, NetworkCapability, NetworkId, Payload, QosClass, QosRequirement,
/// };
/// use karyon_sim::{SimDuration, SimTime};
///
/// let mut bus = EventBus::new(7);
/// bus.attach_network(NetworkId(0), NetworkCapability::local_bus());
/// let sub = bus.topic("platoon.*").subscribe(QosClass::Batched);
/// let lead = bus
///     .topic("platoon.lead")
///     .announce(QosRequirement::batched(SimDuration::from_millis(50), 100.0));
/// assert!(lead.is_admitted());
///
/// bus.publish(&lead, Payload::tagged(1), SimTime::ZERO);
/// let drained = bus.drain_with(sub, SimTime::from_millis(5), usize::MAX, |ev| {
///     assert_eq!(ev.payload.tag, 1);
/// });
/// assert!(drained <= 1, "the local network may lose the copy, never duplicate it");
/// ```
#[derive(Debug)]
pub struct EventBus {
    networks: BTreeMap<NetworkId, NetworkCapability>,
    topics: Vec<TopicEntry>,
    by_name: BTreeMap<String, TopicId>,
    by_subject: BTreeMap<Subject, TopicId>,
    channels: BTreeMap<TopicId, ChannelState>,
    subscriptions: Vec<SubscriptionEntry>,
    routes: BTreeMap<TopicId, Vec<u32>>,
    routes_dirty: bool,
    backlog: usize,
    backlog_threshold: usize,
    rng: Rng,
}

impl EventBus {
    /// The default bus-wide backlog threshold above which realtime
    /// subscriptions shed incoming events.
    pub const DEFAULT_BACKLOG_THRESHOLD: usize = 1024;

    /// Creates a bus with no networks attached.
    pub fn new(seed: u64) -> Self {
        EventBus {
            networks: BTreeMap::new(),
            topics: Vec::new(),
            by_name: BTreeMap::new(),
            by_subject: BTreeMap::new(),
            channels: BTreeMap::new(),
            subscriptions: Vec::new(),
            routes: BTreeMap::new(),
            routes_dirty: false,
            backlog: 0,
            backlog_threshold: Self::DEFAULT_BACKLOG_THRESHOLD,
            rng: Rng::seed_from(seed),
        }
    }

    /// Attaches (or re-assesses) a network segment.
    pub fn attach_network(&mut self, id: NetworkId, capability: NetworkCapability) {
        self.networks.insert(id, capability);
    }

    /// Sets the bus-wide backlog threshold: while the total number of queued
    /// events exceeds it, realtime subscriptions drop incoming events
    /// aggressively to protect their latency bound.
    pub fn set_backlog_threshold(&mut self, threshold: usize) {
        self.backlog_threshold = threshold;
    }

    /// The configured bus-wide backlog threshold.
    pub fn backlog_threshold(&self) -> usize {
        self.backlog_threshold
    }

    /// Total events currently queued across all mailboxes.
    pub fn backlog(&self) -> usize {
        self.backlog
    }

    /// Opens the builder for `name`: subscribe to it, or announce a channel
    /// publishing on it.
    ///
    /// Topic names are hierarchical, dot-separated paths (`"platoon.lead"`).
    /// A trailing `.*` segment makes the handle a wildcard pattern
    /// (`"platoon.*"` matches every topic nested under `platoon.`, any depth;
    /// a bare `"*"` matches every named topic) — patterns can subscribe but
    /// not announce.
    ///
    /// # Panics
    /// Panics on an empty topic name.
    pub fn topic<'a>(&'a mut self, name: &str) -> TopicRef<'a> {
        assert!(!name.is_empty(), "topic names must be non-empty");
        let target = if name == "*" {
            Target::Pattern(String::new())
        } else if let Some(prefix) = name.strip_suffix(".*") {
            assert!(!prefix.is_empty(), "wildcard patterns need a prefix before `.*`");
            Target::Pattern(format!("{prefix}."))
        } else {
            Target::Concrete(self.intern_topic(name))
        };
        TopicRef {
            bus: self,
            target,
            network: NetworkId(0),
            subscriber: None,
            filter: ContextFilter::accept_all(),
            capacity: None,
            strategy: None,
        }
    }

    /// The name of an interned topic (`None` for legacy subject-only topics).
    pub fn topic_name(&self, topic: TopicId) -> Option<&str> {
        self.topics.get(topic.0 as usize).and_then(|t| t.name.as_deref())
    }

    /// The subject UID of an interned topic.
    pub fn topic_subject(&self, topic: TopicId) -> Option<Subject> {
        self.topics.get(topic.0 as usize).map(|t| t.subject)
    }

    fn intern_topic(&mut self, name: &str) -> TopicId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let subject = Subject::from_name(name);
        let id = TopicId(self.topics.len() as u32);
        self.topics.push(TopicEntry { name: Some(name.to_string()), subject });
        self.by_name.insert(name.to_string(), id);
        self.by_subject.insert(subject, id);
        id
    }

    fn topic_for_subject(&mut self, subject: Subject) -> TopicId {
        if let Some(&id) = self.by_subject.get(&subject) {
            return id;
        }
        let id = TopicId(self.topics.len() as u32);
        self.topics.push(TopicEntry { name: None, subject });
        self.by_subject.insert(subject, id);
        id
    }

    // The private collection point for everything `TopicRef` gathered; the
    // public surface is the builder, so the arity stays internal.
    #[allow(clippy::too_many_arguments)]
    fn add_subscription(
        &mut self,
        pattern: Pattern,
        subscriber: Option<SubscriberId>,
        network: NetworkId,
        filter: ContextFilter,
        class: QosClass,
        capacity: Option<usize>,
        strategy: Option<OverloadStrategy>,
    ) -> SubscriptionId {
        let id = SubscriptionId(self.subscriptions.len() as u32);
        let (lo, hi, buckets) = LATENCY_HIST_MS;
        self.subscriptions.push(SubscriptionEntry {
            subscriber: subscriber.unwrap_or(SubscriberId(id.0)),
            network,
            pattern,
            filter,
            class,
            strategy: strategy.unwrap_or_else(|| class.default_strategy()),
            mailbox: Mailbox::new(capacity.unwrap_or_else(|| class.default_capacity())),
            active: true,
            sample_counter: 0,
            counters: SubCounters::default(),
            latency_ms: BucketHistogram::new(lo, hi, buckets),
        });
        self.routes_dirty = true;
        id
    }

    /// Cancels a subscription: its mailbox is discarded (nothing queued is
    /// ever delivered afterwards) and no future publish routes to it.  Its
    /// accumulated [`SubscriptionStats`] stay readable.  Returns `false`
    /// when the id is unknown or already cancelled.
    pub fn unsubscribe(&mut self, subscription: SubscriptionId) -> bool {
        let Some(sub) = self.subscriptions.get_mut(subscription.0 as usize) else {
            return false;
        };
        if !sub.active {
            return false;
        }
        sub.active = false;
        let discarded = sub.mailbox.clear();
        sub.counters.discarded_on_unsubscribe += discarded as u64;
        self.backlog -= discarded;
        self.routes_dirty = true;
        true
    }

    /// Number of active subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.iter().filter(|s| s.active).count()
    }

    /// The accumulated statistics of a subscription (also after it was
    /// cancelled), or `None` for an unknown id.
    pub fn subscription_stats(&self, subscription: SubscriptionId) -> Option<SubscriptionStats> {
        let sub = self.subscriptions.get(subscription.0 as usize)?;
        let c = &sub.counters;
        Some(SubscriptionStats {
            matched: c.matched,
            enqueued: c.enqueued,
            delivered: c.delivered,
            represented: c.represented,
            dropped_pressure: c.dropped_pressure,
            dropped_capacity: c.dropped_capacity,
            displaced: c.displaced,
            sampled_out: c.sampled_out,
            aggregated_merged: c.aggregated_merged,
            dropped_loss: c.dropped_loss,
            filtered_out: c.filtered_out,
            discarded_on_unsubscribe: c.discarded_on_unsubscribe,
            missed_deadline: c.missed_deadline,
            backlog: sub.mailbox.len() as u64,
            peak_backlog: c.peak_backlog,
            mean_latency_ms: sub.latency_ms.mean(),
            p50_latency_ms: sub.latency_ms.p50(),
            p99_latency_ms: sub.latency_ms.p99(),
        })
    }

    /// Exports the bus's accumulated accounting into a unified
    /// [`MetricsRegistry`](karyon_telemetry::MetricsRegistry) under `prefix`:
    ///
    /// * `<prefix>.published` — events published across every channel
    ///   (counter; additive over repeated exports and multiple buses);
    /// * `<prefix>.subscriptions` — current subscription count (gauge);
    /// * per [`QosClass`] (lowercase: `realtime`, `batched`, `background`),
    ///   summed over the class's subscriptions:
    ///   `<prefix>.<class>.{matched, delivered, dropped, missed_deadline}`
    ///   counters (`dropped` folds pressure/capacity/loss/sampling sheds
    ///   together) and a `<prefix>.<class>.latency_ms` timer merging the
    ///   class's queueing-delay histograms — every subscription shares one
    ///   bucket configuration precisely so this merge is exact.
    ///
    /// Cancelled subscriptions keep contributing their accumulated counters,
    /// matching [`EventBus::subscription_stats`].
    pub fn export_metrics(&self, prefix: &str, metrics: &mut karyon_telemetry::MetricsRegistry) {
        let published: u64 = self.channels.values().map(|c| c.published).sum();
        metrics.add(&format!("{prefix}.published"), published);
        metrics.set_gauge(&format!("{prefix}.subscriptions"), self.subscription_count() as f64);
        for (class, label) in [
            (QosClass::Realtime, "realtime"),
            (QosClass::Batched, "batched"),
            (QosClass::Background, "background"),
        ] {
            let mut matched = 0u64;
            let mut delivered = 0u64;
            let mut dropped = 0u64;
            let mut missed_deadline = 0u64;
            let (lo, hi, buckets) = LATENCY_HIST_MS;
            let mut latency = BucketHistogram::new(lo, hi, buckets);
            for sub in self.subscriptions.iter().filter(|s| s.class == class) {
                let c = &sub.counters;
                matched += c.matched;
                delivered += c.delivered;
                dropped += c.dropped_pressure + c.dropped_capacity + c.dropped_loss + c.sampled_out;
                missed_deadline += c.missed_deadline;
                latency.merge(&sub.latency_ms);
            }
            metrics.add(&format!("{prefix}.{label}.matched"), matched);
            metrics.add(&format!("{prefix}.{label}.delivered"), delivered);
            metrics.add(&format!("{prefix}.{label}.dropped"), dropped);
            metrics.add(&format!("{prefix}.{label}.missed_deadline"), missed_deadline);
            if !latency.is_empty() {
                metrics.merge_timer(&format!("{prefix}.{label}.latency_ms"), &latency);
            }
        }
    }

    fn admitted_rate_excluding(&self, except: TopicId) -> f64 {
        self.channels
            .iter()
            .filter(|(t, c)| **t != except && c.admission == Admission::Admitted)
            .map(|(_, c)| c.qos.max_rate)
            .sum()
    }

    fn subscription_matches(topics: &[TopicEntry], pattern: &Pattern, topic: TopicId) -> bool {
        match pattern {
            Pattern::Exact(t) => *t == topic,
            Pattern::Prefix(prefix) => topics[topic.0 as usize]
                .name
                .as_deref()
                .is_some_and(|name| name.len() > prefix.len() && name.starts_with(prefix.as_str())),
        }
    }

    fn build_route(
        topics: &[TopicEntry],
        subscriptions: &[SubscriptionEntry],
        topic: TopicId,
    ) -> Vec<u32> {
        subscriptions
            .iter()
            .enumerate()
            .filter(|(_, s)| s.active && Self::subscription_matches(topics, &s.pattern, topic))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// The worst-case capability over the publisher's network and every
    /// subscriber network for the topic (gateway-crossing channels are only
    /// as good as their weakest segment).
    fn effective_capability(
        &self,
        topic: TopicId,
        publisher_network: NetworkId,
    ) -> Option<NetworkCapability> {
        let mut capability = *self.networks.get(&publisher_network)?;
        for sub in self
            .subscriptions
            .iter()
            .filter(|s| s.active && Self::subscription_matches(&self.topics, &s.pattern, topic))
        {
            if let Some(remote) = self.networks.get(&sub.network) {
                capability = capability.combine_worst(remote);
            }
        }
        Some(capability)
    }

    fn announce_topic(
        &mut self,
        topic: TopicId,
        publisher_network: NetworkId,
        qos: QosRequirement,
    ) -> Publisher {
        let admitted_rate = self.admitted_rate_excluding(topic);
        let admission = match self.effective_capability(topic, publisher_network) {
            Some(capability) if capability.satisfies(&qos, admitted_rate) => Admission::Admitted,
            _ => Admission::Rejected,
        };
        self.channels
            .insert(topic, ChannelState { qos, admission, publisher_network, published: 0 });
        let subject = self.topics[topic.0 as usize].subject;
        Publisher { topic, subject, admission }
    }

    /// Updates the dynamically monitored capability of a network and
    /// re-assesses every channel publishing through it.  Returns the subjects
    /// whose admission status changed (the adaptation hook the safety kernel
    /// listens to).
    pub fn update_capability(
        &mut self,
        id: NetworkId,
        capability: NetworkCapability,
    ) -> Vec<Subject> {
        self.networks.insert(id, capability);
        let mut changed = Vec::new();
        let topics: Vec<TopicId> = self.channels.keys().copied().collect();
        for topic in topics {
            let admitted_rate = self.admitted_rate_excluding(topic);
            let channel = self.channels.get(&topic).expect("channel exists");
            let effective = self.effective_capability(topic, channel.publisher_network);
            let new_admission =
                if effective.map(|c| c.satisfies(&channel.qos, admitted_rate)).unwrap_or(false) {
                    Admission::Admitted
                } else {
                    Admission::Rejected
                };
            let channel = self.channels.get_mut(&topic).expect("channel exists");
            if new_admission != channel.admission {
                channel.admission = new_admission;
                changed.push(self.topics[topic.0 as usize].subject);
            }
        }
        changed
    }

    /// The current admission status of an announced channel.
    pub fn admission(&self, subject: Subject) -> Option<Admission> {
        let topic = self.by_subject.get(&subject)?;
        self.channels.get(topic).map(|c| c.admission)
    }

    /// Publishes one event on the publisher's channel and routes it to every
    /// matching subscription under its QoS policy.  The hot path: once
    /// routes are warm, no allocation happens here for any fan-out.
    ///
    /// The returned [`PublishOutcome`] says what happened to each routed
    /// copy; subscribers receive theirs when they [`poll`](EventBus::poll).
    pub fn publish(
        &mut self,
        publisher: &Publisher,
        payload: Payload,
        now: SimTime,
    ) -> PublishOutcome {
        self.publish_inner(publisher.topic, payload, now, now)
    }

    fn publish_inner(
        &mut self,
        topic: TopicId,
        payload: Payload,
        produced_at: SimTime,
        now: SimTime,
    ) -> PublishOutcome {
        let mut outcome = PublishOutcome::default();
        let EventBus {
            networks,
            topics,
            channels,
            subscriptions,
            routes,
            routes_dirty,
            backlog,
            backlog_threshold,
            rng,
            ..
        } = self;
        let Some(channel) = channels.get_mut(&topic) else {
            return outcome;
        };
        channel.published += 1;
        let deadline = channel.qos.max_latency;
        if *routes_dirty {
            routes.clear();
            *routes_dirty = false;
        }
        let slot =
            routes.entry(topic).or_insert_with(|| Self::build_route(topics, subscriptions, topic));
        let route = std::mem::take(slot);
        let Some(&pub_cap) = networks.get(&channel.publisher_network) else {
            *routes.get_mut(&topic).expect("route slot exists") = route;
            return outcome;
        };
        let context = Context { position: payload.position, timestamp: produced_at };

        for &idx in &route {
            outcome.matched += 1;
            let sub = &mut subscriptions[idx as usize];
            sub.counters.matched += 1;
            let Some(sub_cap) = networks.get(&sub.network) else {
                sub.counters.dropped_loss += 1;
                outcome.dropped_loss += 1;
                continue;
            };
            let capability = pub_cap.combine_worst(sub_cap);
            // Loss.
            if !rng.chance(capability.expected_delivery_ratio) {
                sub.counters.dropped_loss += 1;
                outcome.dropped_loss += 1;
                continue;
            }
            // Latency: exponential around the expected value.
            let latency = SimDuration::from_secs_f64(
                rng.exponential(capability.expected_latency.as_secs_f64().max(1e-6)),
            );
            let arrived_at = now + latency;
            if !sub.filter.matches(&context, arrived_at) {
                sub.counters.filtered_out += 1;
                outcome.filtered_out += 1;
                continue;
            }
            let queued =
                QueuedEvent { topic, produced_at, arrived_at, deadline, payload, aggregated: 1 };
            // Backpressure: realtime sheds under bus-wide pressure.
            if sub.class == QosClass::Realtime && *backlog >= *backlog_threshold {
                sub.counters.dropped_pressure += 1;
                outcome.dropped_overload += 1;
                continue;
            }
            if sub.mailbox.push(queued) {
                *backlog += 1;
                sub.counters.enqueued += 1;
                sub.counters.peak_backlog = sub.counters.peak_backlog.max(sub.mailbox.len() as u64);
                outcome.enqueued += 1;
                continue;
            }
            // Mailbox full: the subscription's overload strategy decides.
            match sub.strategy {
                OverloadStrategy::DropNewest => {
                    sub.counters.dropped_capacity += 1;
                    outcome.dropped_overload += 1;
                }
                OverloadStrategy::DropOldest => {
                    sub.mailbox.displace_push(queued);
                    sub.counters.displaced += 1;
                    sub.counters.enqueued += 1;
                    outcome.enqueued += 1;
                    outcome.dropped_overload += 1;
                }
                OverloadStrategy::Sample { keep_1_in } => {
                    sub.sample_counter += 1;
                    if sub.sample_counter % u64::from(keep_1_in.max(1)) == 0 {
                        sub.mailbox.displace_push(queued);
                        sub.counters.displaced += 1;
                        sub.counters.enqueued += 1;
                        outcome.enqueued += 1;
                    } else {
                        sub.counters.sampled_out += 1;
                    }
                    outcome.dropped_overload += 1;
                }
                OverloadStrategy::Aggregate => {
                    let newest = sub.mailbox.newest_mut().expect("full mailbox is non-empty");
                    newest.payload = queued.payload;
                    newest.aggregated += 1;
                    sub.counters.aggregated_merged += 1;
                    outcome.aggregated += 1;
                }
            }
        }

        *routes.get_mut(&topic).expect("route slot exists") = route;
        outcome
    }

    /// Drains one event from a subscription's mailbox, recording its
    /// delivery-latency and deadline statistics.  Returns `None` when the
    /// mailbox is empty or the subscription was cancelled.
    ///
    /// Queued events are handed out even when their modeled network arrival
    /// lies after `now`; `delivered_at` is then the arrival time, so latency
    /// accounting never runs backwards.
    pub fn poll(&mut self, subscription: SubscriptionId, now: SimTime) -> Option<DeliveredEvent> {
        let sub = self.subscriptions.get_mut(subscription.0 as usize)?;
        if !sub.active {
            return None;
        }
        let queued = sub.mailbox.pop()?;
        self.backlog -= 1;
        let delivered_at = if queued.arrived_at > now { queued.arrived_at } else { now };
        let latency = delivered_at.since(queued.produced_at);
        sub.counters.delivered += 1;
        sub.counters.represented += u64::from(queued.aggregated);
        if latency > queued.deadline {
            sub.counters.missed_deadline += 1;
        }
        sub.latency_ms.record(latency.as_secs_f64() * 1e3);
        Some(DeliveredEvent {
            subscription,
            topic: queued.topic,
            payload: queued.payload,
            produced_at: queued.produced_at,
            arrived_at: queued.arrived_at,
            delivered_at,
            latency,
            represents: queued.aggregated,
        })
    }

    /// Drains up to `max` events from a subscription's mailbox into the
    /// callback; returns how many were delivered.
    pub fn drain_with(
        &mut self,
        subscription: SubscriptionId,
        now: SimTime,
        max: usize,
        mut deliver: impl FnMut(DeliveredEvent),
    ) -> usize {
        let mut drained = 0;
        while drained < max {
            match self.poll(subscription, now) {
                Some(event) => {
                    deliver(event);
                    drained += 1;
                }
                None => break,
            }
        }
        drained
    }

    // ------------------------------------------------------------------
    // Legacy (v1) surface — thin wrappers over the topic/handle API, kept
    // for one release.
    // ------------------------------------------------------------------

    /// Subscribes an endpoint on a network to a subject with a context
    /// filter.
    #[deprecated(
        since = "0.2.0",
        note = "use `bus.topic(name).via(network).filter(filter).subscribe(QosClass::Batched)`"
    )]
    pub fn subscribe(
        &mut self,
        subscriber: SubscriberId,
        network: NetworkId,
        subject: Subject,
        filter: ContextFilter,
    ) -> SubscriptionId {
        let topic = self.topic_for_subject(subject);
        self.add_subscription(
            Pattern::Exact(topic),
            Some(subscriber),
            network,
            filter,
            QosClass::Batched,
            None,
            None,
        )
    }

    /// Announces an event channel for `subject` published from
    /// `publisher_network` with the given QoS requirement; performs the
    /// dynamic assessment against the current network capabilities.
    #[deprecated(
        since = "0.2.0",
        note = "use `bus.topic(name).via(network).announce(qos)` and keep the returned Publisher"
    )]
    pub fn announce(
        &mut self,
        subject: Subject,
        publisher_network: NetworkId,
        qos: QosRequirement,
    ) -> Admission {
        let topic = self.topic_for_subject(subject);
        self.announce_topic(topic, publisher_network, qos).admission
    }

    /// Publishes a legacy [`Event`] on its (announced) channel and delivers
    /// it synchronously, returning the deliveries made to matching
    /// subscribers.  Events on unannounced channels are dropped (the
    /// announcement is mandatory in FAMOUSO).
    #[deprecated(
        since = "0.2.0",
        note = "use `EventBus::publish` with the Publisher handle, then poll/drain the subscriptions"
    )]
    pub fn publish_event(&mut self, event: Event, now: SimTime) -> Vec<Delivery> {
        self.legacy_publish(event, now)
    }

    /// Convenience: publish with a fresh context built from position/time and
    /// deliver synchronously.
    #[deprecated(
        since = "0.2.0",
        note = "use `EventBus::publish` with the Publisher handle and a `Payload`"
    )]
    pub fn publish_from(
        &mut self,
        subject: Subject,
        position: Option<karyon_sim::Vec2>,
        content: Vec<u8>,
        now: SimTime,
    ) -> Vec<Delivery> {
        let event = Event::new(subject, Context { position, timestamp: now }, content);
        self.legacy_publish(event, now)
    }

    /// The v1 delivery model: publish, then immediately drain every matching
    /// subscription (the legacy bus had no mailboxes).  Queued events from
    /// earlier asynchronous publishes on the same topic are drained too.
    fn legacy_publish(&mut self, event: Event, now: SimTime) -> Vec<Delivery> {
        let Some(&topic) = self.by_subject.get(&event.subject) else {
            return Vec::new();
        };
        if !self.channels.contains_key(&topic) {
            return Vec::new();
        }
        let payload = Payload { position: event.context.position, tag: 0 };
        let _ = self.publish_inner(topic, payload, event.context.timestamp, now);
        let route = self.routes.get(&topic).cloned().unwrap_or_default();
        let mut deliveries = Vec::new();
        for idx in route {
            let subscriber = self.subscriptions[idx as usize].subscriber;
            while let Some(delivered) = self.poll(SubscriptionId(idx), now) {
                deliveries.push(Delivery {
                    subscriber,
                    event: event.clone(),
                    delivered_at: delivered.delivered_at,
                    latency: delivered.latency,
                });
            }
        }
        deliveries
    }

    /// Per-channel delivery and deadline statistics aggregated over every
    /// subscription of the subject, or `None` for a subject that was never
    /// announced.
    #[deprecated(
        since = "0.2.0",
        note = "use `EventBus::subscription_stats` — per-subscription `SubscriptionStats` \
                replace the channel-level aggregate"
    )]
    pub fn channel_stats(&self, subject: Subject) -> Option<ChannelStats> {
        let &topic = self.by_subject.get(&subject)?;
        let channel = self.channels.get(&topic)?;
        let mut delivered = 0u64;
        let mut missed_deadline = 0u64;
        let mut latency_sum_ms = 0.0f64;
        let mut latency_count = 0u64;
        for sub in &self.subscriptions {
            if !Self::subscription_matches(&self.topics, &sub.pattern, topic) {
                continue;
            }
            delivered += sub.counters.delivered;
            missed_deadline += sub.counters.missed_deadline;
            latency_sum_ms += sub.latency_ms.mean() * sub.latency_ms.count() as f64;
            latency_count += sub.latency_ms.count();
        }
        Some(ChannelStats {
            published: channel.published,
            delivered,
            missed_deadline,
            mean_latency_ms: if latency_count > 0 {
                latency_sum_ms / latency_count as f64
            } else {
                0.0
            },
        })
    }
}

enum Target {
    Concrete(TopicId),
    Pattern(String),
}

/// The builder returned by [`EventBus::topic`]: configures and creates one
/// subscription or one announced channel on a topic (or wildcard pattern).
///
/// ```
/// use karyon_middleware::{EventBus, NetworkCapability, NetworkId, OverloadStrategy, QosClass};
///
/// let mut bus = EventBus::new(1);
/// bus.attach_network(NetworkId(1), NetworkCapability::wireless_nominal());
/// let sub = bus
///     .topic("v2v.*")
///     .via(NetworkId(1))
///     .mailbox(128)
///     .overload(OverloadStrategy::Sample { keep_1_in: 8 })
///     .subscribe(QosClass::Realtime);
/// assert_eq!(bus.subscription_stats(sub).unwrap().matched, 0);
/// ```
pub struct TopicRef<'a> {
    bus: &'a mut EventBus,
    target: Target,
    network: NetworkId,
    subscriber: Option<SubscriberId>,
    filter: ContextFilter,
    capacity: Option<usize>,
    strategy: Option<OverloadStrategy>,
}

impl<'a> TopicRef<'a> {
    /// The network segment the subscriber listens on / the publisher sends
    /// from (default: `NetworkId(0)`).
    pub fn via(mut self, network: NetworkId) -> Self {
        self.network = network;
        self
    }

    /// The subscriber endpoint id (default: derived from the subscription
    /// id).
    pub fn endpoint(mut self, subscriber: SubscriberId) -> Self {
        self.subscriber = Some(subscriber);
        self
    }

    /// A context filter for the subscription (default: accept everything).
    pub fn filter(mut self, filter: ContextFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Overrides the mailbox capacity (default: the QoS class's
    /// [`default_capacity`](QosClass::default_capacity)).
    pub fn mailbox(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Overrides the overload strategy (default: the QoS class's
    /// [`default_strategy`](QosClass::default_strategy)).
    pub fn overload(mut self, strategy: OverloadStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Creates the subscription under the given QoS class and returns its
    /// id.  Wildcard patterns subscribe to every current and future topic
    /// they match.
    pub fn subscribe(self, class: QosClass) -> SubscriptionId {
        let pattern = match self.target {
            Target::Concrete(topic) => Pattern::Exact(topic),
            Target::Pattern(prefix) => Pattern::Prefix(prefix),
        };
        self.bus.add_subscription(
            pattern,
            self.subscriber,
            self.network,
            self.filter,
            class,
            self.capacity,
            self.strategy,
        )
    }

    /// Announces an event channel publishing on this topic from the
    /// configured network, assessing the QoS requirement against the current
    /// network capabilities, and returns the [`Publisher`] handle.
    ///
    /// Re-announcing a topic replaces its channel (and resets its publish
    /// counter) — the dynamic re-assessment path.
    ///
    /// # Panics
    /// Panics when called on a wildcard pattern: events are published on
    /// concrete topics only.
    pub fn announce(self, qos: QosRequirement) -> Publisher {
        match self.target {
            Target::Concrete(topic) => self.bus.announce_topic(topic, self.network, qos),
            Target::Pattern(prefix) => {
                panic!("cannot announce a channel on wildcard pattern {prefix:?}*")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karyon_sim::Vec2;

    fn bus() -> EventBus {
        let mut bus = EventBus::new(7);
        bus.attach_network(NetworkId(0), NetworkCapability::local_bus());
        bus.attach_network(NetworkId(1), NetworkCapability::wireless_nominal());
        bus
    }

    fn publish_n(bus: &mut EventBus, publisher: &Publisher, n: u64, step_ms: u64) {
        for i in 0..n {
            bus.publish(publisher, Payload::tagged(i), SimTime::from_millis(i * step_ms));
        }
    }

    #[test]
    fn topic_routing_with_wildcards() {
        let mut bus = bus();
        let exact = bus.topic("platoon.lead").subscribe(QosClass::Batched);
        let wild = bus.topic("platoon.*").subscribe(QosClass::Batched);
        let deep = bus.topic("platoon.lead.velocity").subscribe(QosClass::Batched);
        let other = bus.topic("hazard.warning").subscribe(QosClass::Batched);
        let all = bus.topic("*").subscribe(QosClass::Background);

        let lead = bus.topic("platoon.lead").announce(QosRequirement::best_effort());
        let outcome = bus.publish(&lead, Payload::tagged(1), SimTime::ZERO);
        // exact + wildcard + catch-all match; the deeper topic and the other
        // subtree do not.
        assert_eq!(outcome.matched, 3);
        for (sub, expected) in [(exact, 1), (wild, 1), (deep, 0), (other, 0), (all, 1)] {
            assert_eq!(
                bus.subscription_stats(sub).unwrap().matched,
                expected,
                "subscription {sub:?}"
            );
        }
        // A topic created after the wildcard subscription still matches it.
        let velocity = bus.topic("platoon.lead.velocity").announce(QosRequirement::best_effort());
        let outcome = bus.publish(&velocity, Payload::tagged(2), SimTime::ZERO);
        assert_eq!(outcome.matched, 3, "wild + deep-exact + catch-all");
        assert_eq!(bus.subscription_stats(wild).unwrap().matched, 2);
    }

    #[test]
    #[should_panic(expected = "wildcard pattern")]
    fn announcing_a_wildcard_pattern_panics() {
        let mut bus = bus();
        let _ = bus.topic("platoon.*").announce(QosRequirement::best_effort());
    }

    #[test]
    fn publish_and_drain_records_latency_and_deadlines() {
        let mut bus = bus();
        let sub = bus.topic("v2v.state").via(NetworkId(1)).subscribe(QosClass::Batched);
        let publisher = bus
            .topic("v2v.state")
            .via(NetworkId(1))
            .announce(QosRequirement::batched(SimDuration::from_millis(60), 10.0));
        assert!(publisher.is_admitted());
        publish_n(&mut bus, &publisher, 200, 10);
        let drained = bus.drain_with(sub, SimTime::from_secs(3), usize::MAX, |ev| {
            assert!(ev.delivered_at >= ev.arrived_at);
            assert_eq!(ev.topic, publisher.topic());
        });
        let stats = bus.subscription_stats(sub).unwrap();
        assert_eq!(stats.delivered, drained as u64);
        assert!(stats.delivered > 150, "wireless nominal delivers ~95%");
        assert!(stats.mean_latency_ms > 0.0);
        assert!(stats.p99_latency_ms >= stats.p50_latency_ms);
        assert_eq!(stats.backlog, 0);
        assert_eq!(bus.backlog(), 0);
    }

    #[test]
    fn realtime_sheds_under_global_pressure_and_full_mailbox() {
        let mut bus = bus();
        bus.set_backlog_threshold(8);
        // The batched subscription fills the bus-wide backlog past the
        // threshold; the realtime one must then shed incoming events.
        let batched = bus.topic("load.bulk").subscribe(QosClass::Batched);
        let rt = bus.topic("load.hot").mailbox(4).subscribe(QosClass::Realtime);
        let bulk = bus.topic("load.bulk").announce(QosRequirement::best_effort());
        let hot = bus.topic("load.hot").announce(QosRequirement::best_effort());
        publish_n(&mut bus, &bulk, 20, 1);
        assert!(bus.backlog() >= 8);
        publish_n(&mut bus, &hot, 10, 1);
        let stats = bus.subscription_stats(rt).unwrap();
        assert_eq!(stats.dropped_pressure, 10, "all realtime copies shed under pressure");
        assert_eq!(stats.enqueued, 0);
        // Below the threshold the realtime mailbox accepts until full, then
        // drops the newest.
        bus.drain_with(batched, SimTime::from_secs(1), usize::MAX, |_| {});
        publish_n(&mut bus, &hot, 10, 1);
        let stats = bus.subscription_stats(rt).unwrap();
        assert!(stats.enqueued >= 3, "mailbox accepts up to capacity, minus loss");
        assert!(stats.dropped_capacity >= 4, "overflow drops the newest");
        assert_eq!(stats.backlog + stats.dropped_capacity + stats.dropped_loss, 10);
    }

    #[test]
    fn drop_oldest_keeps_the_freshest_window() {
        let mut bus = bus();
        let sub = bus.topic("t.a").mailbox(4).subscribe(QosClass::Batched);
        let publisher = bus.topic("t.a").announce(QosRequirement::best_effort());
        publish_n(&mut bus, &publisher, 100, 1);
        let mut tags = Vec::new();
        bus.drain_with(sub, SimTime::from_secs(10), usize::MAX, |ev| tags.push(ev.payload.tag));
        assert_eq!(tags.len(), 4);
        let stats = bus.subscription_stats(sub).unwrap();
        assert_eq!(stats.enqueued + stats.dropped_loss, 100);
        assert!(stats.displaced >= 90, "older events were displaced");
        // The surviving window is the newest traffic, in FIFO order.
        assert!(tags.windows(2).all(|w| w[0] < w[1]));
        assert!(*tags.last().unwrap() > 90);
    }

    #[test]
    fn sampling_is_deterministic_and_counted() {
        let mut bus = bus();
        let sub = bus
            .topic("t.s")
            .mailbox(4)
            .overload(OverloadStrategy::Sample { keep_1_in: 4 })
            .subscribe(QosClass::Batched);
        let publisher = bus.topic("t.s").announce(QosRequirement::best_effort());
        publish_n(&mut bus, &publisher, 100, 1);
        let stats = bus.subscription_stats(sub).unwrap();
        assert!(stats.sampled_out > 0);
        assert!(stats.displaced > 0, "every 4th overflow event displaces the oldest");
        let admitted_overflow = stats.displaced;
        let shed = stats.sampled_out;
        // 1-in-4 of the overflow traffic is admitted.
        assert_eq!(admitted_overflow + shed, stats.matched - stats.dropped_loss - 4);
        assert!((shed / admitted_overflow) == 3, "shed {shed}, admitted {admitted_overflow}");
    }

    #[test]
    fn aggregate_coalesces_bursts_into_bounded_summaries() {
        let mut bus = bus();
        let sub = bus
            .topic("t.agg")
            .mailbox(2)
            .overload(OverloadStrategy::Aggregate)
            .subscribe(QosClass::Background);
        let publisher = bus.topic("t.agg").announce(QosRequirement::best_effort());
        publish_n(&mut bus, &publisher, 50, 1);
        let stats = bus.subscription_stats(sub).unwrap();
        assert_eq!(stats.backlog, 2, "the burst is represented by two slots");
        let mut represented = 0;
        let mut newest_tag = 0;
        bus.drain_with(sub, SimTime::from_secs(1), usize::MAX, |ev| {
            represented += ev.represents as u64;
            newest_tag = newest_tag.max(ev.payload.tag);
        });
        let stats = bus.subscription_stats(sub).unwrap();
        assert_eq!(represented, stats.enqueued + stats.aggregated_merged);
        assert_eq!(represented + stats.dropped_loss, 50, "every copy is accounted for");
        assert_eq!(stats.represented, represented);
        assert!(newest_tag >= 45, "the coalesced slot keeps the freshest payload");
    }

    #[test]
    fn unsubscribe_discards_the_mailbox_and_stops_routing() {
        let mut bus = bus();
        let sub = bus.topic("t.u").subscribe(QosClass::Batched);
        let publisher = bus.topic("t.u").announce(QosRequirement::best_effort());
        publish_n(&mut bus, &publisher, 10, 1);
        let queued = bus.subscription_stats(sub).unwrap().backlog;
        assert!(queued > 0);
        assert!(bus.unsubscribe(sub));
        assert!(!bus.unsubscribe(sub), "double unsubscribe is a no-op");
        assert_eq!(bus.backlog(), 0, "global backlog excludes the dead mailbox");
        assert_eq!(bus.poll(sub, SimTime::from_secs(1)), None, "dead mailboxes never deliver");
        publish_n(&mut bus, &publisher, 10, 1);
        let stats = bus.subscription_stats(sub).unwrap();
        assert_eq!(stats.discarded_on_unsubscribe, queued);
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.matched, 10, "only pre-unsubscribe publishes ever matched");
        assert_eq!(bus.subscription_count(), 0);
    }

    #[test]
    fn subscriptions_on_detached_networks_count_losses() {
        let mut bus = bus();
        let sub = bus.topic("t.det").via(NetworkId(9)).subscribe(QosClass::Batched);
        let publisher = bus.topic("t.det").announce(QosRequirement::best_effort());
        bus.publish(&publisher, Payload::tagged(0), SimTime::ZERO);
        let stats = bus.subscription_stats(sub).unwrap();
        assert_eq!(stats.dropped_loss, 1);
        assert_eq!(stats.enqueued, 0);
    }

    // ---- legacy wrapper behavior (the v1 test suite, kept verbatim in
    // spirit) ----

    #[test]
    #[allow(deprecated)]
    fn announcement_assesses_qos_against_subscriber_networks() {
        let mut bus = bus();
        let subject = Subject::from_name("vehicle/heading");
        // Local-only subscription: strict latency is admitted.
        bus.subscribe(SubscriberId(1), NetworkId(0), subject, ContextFilter::accept_all());
        let strict = QosRequirement::builder()
            .max_latency(SimDuration::from_millis(2))
            .min_delivery_ratio(0.99)
            .max_rate(10.0)
            .build();
        assert_eq!(bus.announce(subject, NetworkId(0), strict), Admission::Admitted);
        // Adding a wireless subscriber makes the same requirement unsatisfiable.
        bus.subscribe(SubscriberId(2), NetworkId(1), subject, ContextFilter::accept_all());
        assert_eq!(bus.announce(subject, NetworkId(0), strict), Admission::Rejected);
        assert_eq!(bus.admission(subject), Some(Admission::Rejected));
        // A relaxed requirement is admitted.
        let relaxed = QosRequirement::batched(SimDuration::from_millis(100), 10.0);
        assert_eq!(bus.announce(subject, NetworkId(0), relaxed), Admission::Admitted);
    }

    #[test]
    #[allow(deprecated)]
    fn rate_admission_is_cumulative() {
        let mut bus = bus();
        let a = Subject::from_name("a");
        let b = Subject::from_name("b");
        bus.subscribe(SubscriberId(1), NetworkId(1), a, ContextFilter::accept_all());
        bus.subscribe(SubscriberId(1), NetworkId(1), b, ContextFilter::accept_all());
        let heavy = QosRequirement::builder()
            .max_latency(SimDuration::from_secs(1))
            .min_delivery_ratio(0.5)
            .max_rate(300.0)
            .build();
        assert_eq!(bus.announce(a, NetworkId(1), heavy), Admission::Admitted);
        // The wireless network sustains 500 events/s: a second 300 events/s
        // channel does not fit.
        assert_eq!(bus.announce(b, NetworkId(1), heavy), Admission::Rejected);
    }

    #[test]
    #[allow(deprecated)]
    fn publish_routes_to_matching_subscribers_only() {
        let mut bus = bus();
        let subject = Subject::from_name("hazard/warning");
        bus.subscribe(
            SubscriberId(1),
            NetworkId(0),
            subject,
            ContextFilter::within(Vec2::ZERO, 100.0),
        );
        bus.subscribe(
            SubscriberId(2),
            NetworkId(0),
            subject,
            ContextFilter::within(Vec2::new(10_000.0, 0.0), 100.0),
        );
        bus.subscribe(
            SubscriberId(3),
            NetworkId(0),
            Subject::from_name("other"),
            ContextFilter::accept_all(),
        );
        bus.announce(subject, NetworkId(0), QosRequirement::best_effort());
        let deliveries =
            bus.publish_from(subject, Some(Vec2::new(5.0, 5.0)), vec![1], SimTime::from_millis(10));
        let receivers: Vec<u32> = deliveries.iter().map(|d| d.subscriber.0).collect();
        assert_eq!(receivers, vec![1]);
        let stats = bus.channel_stats(subject).unwrap();
        assert_eq!(stats.published, 1);
        assert_eq!(stats.delivered, 1);
    }

    #[test]
    #[allow(deprecated)]
    fn unannounced_channels_drop_events() {
        let mut bus = bus();
        let subject = Subject::from_name("unannounced");
        bus.subscribe(SubscriberId(1), NetworkId(0), subject, ContextFilter::accept_all());
        let deliveries = bus.publish_from(subject, None, vec![], SimTime::ZERO);
        assert!(deliveries.is_empty());
        assert!(bus.channel_stats(subject).is_none());
    }

    #[test]
    fn capability_degradation_changes_admission() {
        let mut bus = bus();
        let sub_topic = "v2v.state";
        bus.topic(sub_topic).via(NetworkId(1)).subscribe(QosClass::Batched);
        let publisher = bus
            .topic(sub_topic)
            .via(NetworkId(1))
            .announce(QosRequirement::batched(SimDuration::from_millis(50), 10.0));
        assert!(publisher.is_admitted());
        let subject = publisher.subject();
        // The monitoring layer reports degradation: the channel loses its admission.
        let changed = bus.update_capability(NetworkId(1), NetworkCapability::wireless_degraded());
        assert_eq!(changed, vec![subject]);
        assert_eq!(bus.admission(subject), Some(Admission::Rejected));
        // Recovery restores it.
        let changed = bus.update_capability(NetworkId(1), NetworkCapability::wireless_nominal());
        assert_eq!(changed, vec![subject]);
        assert_eq!(bus.admission(subject), Some(Admission::Admitted));
        // Re-asserting the same capability changes nothing.
        assert!(bus
            .update_capability(NetworkId(1), NetworkCapability::wireless_nominal())
            .is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn delivery_latency_statistics_accumulate() {
        let mut bus = bus();
        let subject = Subject::from_name("platoon/lead-state");
        bus.subscribe(SubscriberId(1), NetworkId(1), subject, ContextFilter::accept_all());
        bus.announce(
            subject,
            NetworkId(1),
            QosRequirement::builder()
                .max_latency(SimDuration::from_millis(60))
                .min_delivery_ratio(0.5)
                .max_rate(10.0)
                .build(),
        );
        for i in 0..200u64 {
            bus.publish_from(subject, None, vec![], SimTime::from_millis(i * 10));
        }
        let stats = bus.channel_stats(subject).unwrap();
        assert_eq!(stats.published, 200);
        assert!(stats.delivered > 150, "delivered {}", stats.delivered);
        assert!(
            stats.mean_latency_ms > 1.0 && stats.mean_latency_ms < 100.0,
            "mean latency {}",
            stats.mean_latency_ms
        );
        assert_eq!(bus.subscription_count(), 1);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_and_v2_surfaces_share_one_bus() {
        // A v1 subject-based subscriber and a v2 topic subscriber coexist:
        // the topic's FNV subject is the bridge.
        let mut bus = bus();
        let v2_sub = bus.topic("bridge.check").subscribe(QosClass::Batched);
        let subject = Subject::from_name("bridge.check");
        bus.subscribe(SubscriberId(9), NetworkId(0), subject, ContextFilter::accept_all());
        bus.announce(subject, NetworkId(0), QosRequirement::best_effort());
        // The legacy publish drains *all* matching subscriptions — v2 ones
        // included.
        let deliveries = bus.publish_from(subject, None, vec![], SimTime::from_millis(1));
        assert_eq!(deliveries.len(), 2, "both the v2 and the legacy subscriber got the event");
        assert_eq!(bus.subscription_stats(v2_sub).unwrap().delivered, 1);
        assert_eq!(bus.topic_name(TopicId(0)), Some("bridge.check"));
        assert_eq!(bus.topic_subject(TopicId(0)), Some(subject));
    }
}

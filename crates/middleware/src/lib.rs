//! # karyon-middleware — FAMOUSO-style adaptive event middleware (KARYON §V-B)
//!
//! "We will use the FAMOUSO communication middleware … FAMOUSO provides
//! event-based communication that is explicitly designed for dynamic,
//! distributed control.  We propose the concept of event channels that
//! address the problem of assessing and maintaining QoS in such a cooperative
//! system."
//!
//! The crate reimplements the published channel concept from scratch, in two
//! halves:
//!
//! * **assessment** ([`event`], [`channel`]) — events (subject UID +
//!   attributes + content), QoS requirements with named presets
//!   ([`QosRequirement::realtime`] / [`batched`](QosRequirement::batched) /
//!   [`background`](QosRequirement::background) / [`builder`](QosRequirement::builder)),
//!   context filters, and announcement-time admission against dynamically
//!   monitored [`NetworkCapability`]s (gateway-crossing channels get the
//!   weakest segment's guarantees),
//! * **maintenance** ([`bus`], [`mailbox`], [`overload`]) — the **EventBus
//!   v2**: hierarchical topic routing with wildcard-prefix subscriptions,
//!   per-subscription [`QosClass`]es backed by bounded ring mailboxes,
//!   bus-wide backlog thresholds, pluggable [`OverloadStrategy`]s and
//!   per-subscription delivery statistics with P50/P99 latency.
//!
//! ## Quick tour
//!
//! Build a bus, subscribe by topic (wildcards match whole subtrees), announce
//! a channel, publish through the returned [`Publisher`] handle, and drain
//! the mailbox:
//!
//! ```
//! use karyon_middleware::{
//!     EventBus, NetworkCapability, NetworkId, OverloadStrategy, Payload, QosClass,
//!     QosRequirement,
//! };
//! use karyon_sim::{SimDuration, SimTime};
//!
//! let mut bus = EventBus::new(42);
//! bus.attach_network(NetworkId(0), NetworkCapability::local_bus());
//! bus.attach_network(NetworkId(1), NetworkCapability::wireless_nominal());
//!
//! // A realtime subscriber to everything under `platoon.`, sampling 1-in-8
//! // under overflow instead of its class default (drop the newest).
//! let sub = bus
//!     .topic("platoon.*")
//!     .via(NetworkId(1))
//!     .overload(OverloadStrategy::Sample { keep_1_in: 8 })
//!     .subscribe(QosClass::Realtime);
//!
//! // Announcing assesses the QoS requirement against the weakest network
//! // segment on the channel's path; the handle is the only way to publish.
//! let lead = bus
//!     .topic("platoon.lead")
//!     .via(NetworkId(1))
//!     .announce(QosRequirement::realtime(SimDuration::from_millis(60), 20.0));
//! assert!(lead.is_admitted());
//!
//! let outcome = bus.publish(&lead, Payload::tagged(1), SimTime::ZERO);
//! assert_eq!(outcome.matched, 1);
//!
//! bus.drain_with(sub, SimTime::from_millis(100), usize::MAX, |event| {
//!     assert_eq!(event.payload.tag, 1);
//! });
//! let stats = bus.subscription_stats(sub).unwrap();
//! assert_eq!(stats.delivered + stats.dropped_loss, 1);
//! ```
//!
//! QoS is *maintained*, not just assessed: when a mailbox overflows, the
//! subscription's [`OverloadStrategy`] (drop-newest / drop-oldest / sample /
//! aggregate) decides what to shed, and when the bus-wide backlog crosses
//! [`EventBus::set_backlog_threshold`], [`QosClass::Realtime`] subscriptions
//! drop incoming events outright so whatever they do deliver is fresh.  The
//! v1 surface (`subscribe`/`announce`/`publish_from` by [`Subject`]) remains
//! available as deprecated wrappers for one release.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod channel;
pub mod event;
pub mod mailbox;
pub mod overload;

pub use bus::{
    DeliveredEvent, EventBus, PublishOutcome, Publisher, SubscriptionId, SubscriptionStats,
    TopicId, TopicRef,
};
pub use channel::{Admission, ChannelStats, Delivery, NetworkCapability, NetworkId, SubscriberId};
pub use event::{Context, ContextFilter, Event, Payload, QosBuilder, QosRequirement, Subject};
pub use mailbox::Mailbox;
pub use overload::{OverloadStrategy, QosClass};

//! # karyon-middleware — FAMOUSO-style adaptive event middleware (KARYON §V-B)
//!
//! "We will use the FAMOUSO communication middleware … FAMOUSO provides
//! event-based communication that is explicitly designed for dynamic,
//! distributed control.  We propose the concept of event channels that
//! address the problem of assessing and maintaining QoS in such a cooperative
//! system."
//!
//! The crate reimplements the published channel concept from scratch:
//!
//! * [`event`] — events (subject UID + attributes + content), QoS
//!   requirements, context attributes and context filters,
//! * [`channel`] — event channels with announcement-time QoS assessment
//!   against dynamically monitored network capabilities, publish/subscribe
//!   routing across heterogeneous network segments (gateway-crossing
//!   channels get the weakest segment's guarantees), and per-channel
//!   delivery/deadline statistics.
//!
//! ## Quick tour
//!
//! A channel is admitted only if the monitored network capability satisfies
//! its announced QoS requirement — and a channel crossing a gateway gets the
//! *weakest* segment's guarantees:
//!
//! ```
//! use karyon_middleware::{NetworkCapability, QosRequirement};
//! use karyon_sim::SimDuration;
//!
//! let requirement = QosRequirement {
//!     max_latency: SimDuration::from_millis(50),
//!     min_delivery_ratio: 0.9,
//!     max_rate: 10.0,
//! };
//! let nominal = NetworkCapability::wireless_nominal();
//! assert!(nominal.satisfies(&requirement, 0.0));
//! // Crossing into a degraded segment inherits the weaker guarantees.
//! let end_to_end = nominal.combine_worst(&NetworkCapability::wireless_degraded());
//! assert!(!end_to_end.satisfies(&requirement, 0.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod event;

pub use channel::{
    Admission, ChannelStats, Delivery, EventBus, NetworkCapability, NetworkId, SubscriberId,
};
pub use event::{Context, ContextFilter, Event, QosRequirement, Subject};

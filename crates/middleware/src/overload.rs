//! QoS classes and overload strategies of the v2 event bus.
//!
//! Admission-time assessment (paper §V-B) decides whether a channel's QoS
//! *can* be guaranteed; the types here define what the bus does to *maintain*
//! it when publishers outrun subscribers: every subscription carries a
//! [`QosClass`] (which sizes its bounded mailbox and fixes its default
//! reaction to pressure) and an [`OverloadStrategy`] (what happens to events
//! once the mailbox is full).

/// The per-subscription quality-of-service class.
///
/// The class decides the mailbox capacity and the default
/// [`OverloadStrategy`]; both can be overridden per subscription through the
/// [`TopicRef`](crate::TopicRef) builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QosClass {
    /// Latency first: a short mailbox, and events are dropped — never queued
    /// behind a backlog — when the subscriber or the bus is under pressure.
    /// A realtime subscription additionally sheds incoming events whenever
    /// the bus-wide backlog exceeds the configured threshold.
    Realtime,
    /// Throughput first: a medium, bounded mailbox; on overflow the oldest
    /// queued event is displaced so the subscriber keeps seeing fresh data
    /// (bounded queueing delay instead of unbounded blocking).
    Batched,
    /// Bulk/low-priority: a large mailbox that absorbs long bursts, drained
    /// whenever the subscriber gets around to it.
    Background,
}

impl QosClass {
    /// The default mailbox capacity of the class, in events.
    pub fn default_capacity(self) -> usize {
        match self {
            QosClass::Realtime => 32,
            QosClass::Batched => 512,
            QosClass::Background => 4096,
        }
    }

    /// The default overload strategy of the class.
    pub fn default_strategy(self) -> OverloadStrategy {
        match self {
            QosClass::Realtime => OverloadStrategy::DropNewest,
            QosClass::Batched | QosClass::Background => OverloadStrategy::DropOldest,
        }
    }

    /// The class name as used in scenario parameters and reports.
    pub fn name(self) -> &'static str {
        match self {
            QosClass::Realtime => "realtime",
            QosClass::Batched => "batched",
            QosClass::Background => "background",
        }
    }
}

/// What a subscription does with an incoming event when its mailbox is full.
///
/// Every strategy is deterministic — no randomness is involved — so a
/// campaign over an overloaded bus stays bit-identical for any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverloadStrategy {
    /// Drop the incoming event; queued events are never displaced.  The
    /// realtime default: the queue stays short, so whatever is delivered is
    /// delivered fast.
    DropNewest,
    /// Displace the oldest queued event to make room for the incoming one.
    /// The batched/background default: the subscriber always sees the most
    /// recent window of traffic.
    DropOldest,
    /// Under overflow, admit only every `keep_1_in`-th incoming event
    /// (displacing the oldest to make room) and shed the rest.  The counter
    /// is per subscription, so sampling is deterministic and independent of
    /// sibling subscriptions.
    Sample {
        /// Admit one incoming event out of this many while the mailbox is
        /// full (values below 2 behave like [`OverloadStrategy::DropOldest`]).
        keep_1_in: u32,
    },
    /// Coalesce: merge the incoming event into the newest queued one — the
    /// slot keeps the freshest payload and counts how many source events it
    /// represents.  The mailbox then holds a bounded summary of an unbounded
    /// burst (rate aggregation).
    Aggregate,
}

impl OverloadStrategy {
    /// Parses a strategy from its scenario-parameter name:
    /// `drop-newest`, `drop-oldest`, `sample` (1-in-4) or `aggregate`.
    pub fn from_name(name: &str) -> Option<OverloadStrategy> {
        match name {
            "drop-newest" => Some(OverloadStrategy::DropNewest),
            "drop-oldest" => Some(OverloadStrategy::DropOldest),
            "sample" => Some(OverloadStrategy::Sample { keep_1_in: 4 }),
            "aggregate" => Some(OverloadStrategy::Aggregate),
            _ => None,
        }
    }

    /// The canonical parameter name of the strategy.
    pub fn name(self) -> &'static str {
        match self {
            OverloadStrategy::DropNewest => "drop-newest",
            OverloadStrategy::DropOldest => "drop-oldest",
            OverloadStrategy::Sample { .. } => "sample",
            OverloadStrategy::Aggregate => "aggregate",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_defaults_are_ordered_by_capacity() {
        assert!(QosClass::Realtime.default_capacity() < QosClass::Batched.default_capacity());
        assert!(QosClass::Batched.default_capacity() < QosClass::Background.default_capacity());
        assert_eq!(QosClass::Realtime.default_strategy(), OverloadStrategy::DropNewest);
        assert_eq!(QosClass::Batched.default_strategy(), OverloadStrategy::DropOldest);
    }

    #[test]
    fn strategy_names_round_trip() {
        for name in ["drop-newest", "drop-oldest", "sample", "aggregate"] {
            let strategy = OverloadStrategy::from_name(name).unwrap();
            assert_eq!(strategy.name(), name);
        }
        assert_eq!(OverloadStrategy::from_name("block"), None);
        assert_eq!(QosClass::Realtime.name(), "realtime");
    }
}

//! Events, subjects, attributes and context filters (paper §V-B, Fig. 5).
//!
//! "In FAMOUSO all disseminated information is encapsulated in typed message
//! objects called events.  An event is composed from three parts: a subject,
//! attributes, and content.  A subject identifies the content of an event and
//! is represented by a unique identifier (UID).  The UIDs span a global name
//! space across all networks."

use karyon_sim::{SimDuration, SimTime, Vec2};

/// A subject: the unique identifier of an event type, spanning a global name
/// space across all networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Subject(pub u64);

impl Subject {
    /// Derives a subject UID from a human-readable name (FNV-1a hash), so
    /// that independently developed components agree on the UID of
    /// `"vehicle/speed"` without a central registry.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        Subject(hash)
    }
}

/// Quality-of-service requirements a publisher attaches to an event channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosRequirement {
    /// Maximum acceptable dissemination latency.
    pub max_latency: SimDuration,
    /// Minimum acceptable delivery ratio in `[0, 1]`.
    pub min_delivery_ratio: f64,
    /// Maximum event rate the publisher will generate (events per second);
    /// used for bandwidth admission.
    pub max_rate: f64,
}

impl QosRequirement {
    /// A best-effort requirement that any network satisfies.
    pub fn best_effort() -> Self {
        QosRequirement { max_latency: SimDuration::MAX, min_delivery_ratio: 0.0, max_rate: 0.0 }
    }
}

/// Context attributes attached to an event (location, time).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Context {
    /// Where the event was produced, if known.
    pub position: Option<Vec2>,
    /// When the event was produced.
    pub timestamp: SimTime,
}

/// A context filter a subscriber attaches to a subscription: "the subscriber
/// will only get those events which pass the context filter".
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ContextFilter {
    /// Accept only events produced within this circular region.
    pub region: Option<(Vec2, f64)>,
    /// Accept only events at most this old at delivery time.
    pub max_age: Option<SimDuration>,
}

impl ContextFilter {
    /// A filter that accepts everything.
    pub fn accept_all() -> Self {
        ContextFilter::default()
    }

    /// A filter restricted to a circular region.
    pub fn within(center: Vec2, radius: f64) -> Self {
        ContextFilter { region: Some((center, radius)), max_age: None }
    }

    /// Adds a freshness requirement to the filter.
    pub fn fresher_than(mut self, max_age: SimDuration) -> Self {
        self.max_age = Some(max_age);
        self
    }

    /// True when the event's context passes the filter at delivery time `now`.
    pub fn matches(&self, context: &Context, now: SimTime) -> bool {
        if let Some((center, radius)) = self.region {
            match context.position {
                Some(pos) if center.distance(pos) <= radius => {}
                _ => return false,
            }
        }
        if let Some(max_age) = self.max_age {
            if now.since(context.timestamp) > max_age {
                return false;
            }
        }
        true
    }
}

/// A disseminated event: subject + attributes (QoS handled at the channel,
/// context carried here) + content.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The subject identifying the content type.
    pub subject: Subject,
    /// Context attributes (location, production time).
    pub context: Context,
    /// Opaque content bytes.
    pub content: Vec<u8>,
}

impl Event {
    /// Creates an event.
    pub fn new(subject: Subject, context: Context, content: Vec<u8>) -> Self {
        Event { subject, context, content }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subjects_from_names_are_stable_and_distinct() {
        let a1 = Subject::from_name("vehicle/speed");
        let a2 = Subject::from_name("vehicle/speed");
        let b = Subject::from_name("vehicle/position");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn context_filter_region() {
        let ctx = Context { position: Some(Vec2::new(10.0, 0.0)), timestamp: SimTime::ZERO };
        let now = SimTime::from_millis(50);
        assert!(ContextFilter::accept_all().matches(&ctx, now));
        assert!(ContextFilter::within(Vec2::ZERO, 20.0).matches(&ctx, now));
        assert!(!ContextFilter::within(Vec2::ZERO, 5.0).matches(&ctx, now));
        // Events without a position fail region filters.
        let anon = Context { position: None, timestamp: SimTime::ZERO };
        assert!(!ContextFilter::within(Vec2::ZERO, 5.0).matches(&anon, now));
        assert!(ContextFilter::accept_all().matches(&anon, now));
    }

    #[test]
    fn context_filter_age() {
        let ctx = Context { position: None, timestamp: SimTime::from_millis(100) };
        let filter = ContextFilter::accept_all().fresher_than(SimDuration::from_millis(50));
        assert!(filter.matches(&ctx, SimTime::from_millis(120)));
        assert!(!filter.matches(&ctx, SimTime::from_millis(200)));
    }

    #[test]
    fn best_effort_qos_is_trivially_satisfiable() {
        let q = QosRequirement::best_effort();
        assert_eq!(q.min_delivery_ratio, 0.0);
        assert_eq!(q.max_latency, SimDuration::MAX);
    }

    #[test]
    fn event_construction() {
        let e = Event::new(Subject::from_name("x"), Context::default(), vec![1, 2, 3]);
        assert_eq!(e.content, vec![1, 2, 3]);
        assert_eq!(e.subject, Subject::from_name("x"));
    }
}

//! Events, subjects, attributes and context filters (paper §V-B, Fig. 5).
//!
//! "In FAMOUSO all disseminated information is encapsulated in typed message
//! objects called events.  An event is composed from three parts: a subject,
//! attributes, and content.  A subject identifies the content of an event and
//! is represented by a unique identifier (UID).  The UIDs span a global name
//! space across all networks."

use karyon_sim::{SimDuration, SimTime, Vec2};

/// A subject: the unique identifier of an event type, spanning a global name
/// space across all networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Subject(pub u64);

impl Subject {
    /// Derives a subject UID from a human-readable name (FNV-1a hash), so
    /// that independently developed components agree on the UID of
    /// `"vehicle/speed"` without a central registry.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        Subject(hash)
    }
}

/// Quality-of-service requirements a publisher attaches to an event channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosRequirement {
    /// Maximum acceptable dissemination latency.
    pub max_latency: SimDuration,
    /// Minimum acceptable delivery ratio in `[0, 1]`.
    pub min_delivery_ratio: f64,
    /// Maximum event rate the publisher will generate (events per second);
    /// used for bandwidth admission.
    pub max_rate: f64,
}

impl QosRequirement {
    /// A best-effort requirement that any network satisfies.
    pub fn best_effort() -> Self {
        QosRequirement { max_latency: SimDuration::MAX, min_delivery_ratio: 0.0, max_rate: 0.0 }
    }

    /// The contract of a latency-critical stream (control loops, hazard
    /// warnings): a hard dissemination deadline and a moderate delivery
    /// floor — under pressure the matching [`QosClass::Realtime`]
    /// subscriptions drop events rather than let them age in a queue.
    ///
    /// [`QosClass::Realtime`]: crate::QosClass::Realtime
    pub fn realtime(max_latency: SimDuration, max_rate: f64) -> Self {
        QosRequirement { max_latency, min_delivery_ratio: 0.9, max_rate }
    }

    /// The contract of a throughput-oriented stream (state dissemination,
    /// negotiation traffic): a high delivery floor — the best a healthy
    /// vehicular wireless network sustains — and a latency bound that
    /// tolerates bounded queueing ([`QosClass::Batched`] mailboxes).
    ///
    /// [`QosClass::Batched`]: crate::QosClass::Batched
    pub fn batched(max_latency: SimDuration, max_rate: f64) -> Self {
        QosRequirement { max_latency, min_delivery_ratio: 0.95, max_rate }
    }

    /// The contract of bulk/low-priority traffic (map updates, logs): one
    /// second of acceptable latency and a relaxed delivery floor, paired
    /// with the large [`QosClass::Background`] mailboxes.
    ///
    /// [`QosClass::Background`]: crate::QosClass::Background
    pub fn background(max_rate: f64) -> Self {
        QosRequirement { max_latency: SimDuration::from_secs(1), min_delivery_ratio: 0.5, max_rate }
    }

    /// Starts a [`QosBuilder`] from the best-effort baseline, for
    /// requirements that fit none of the named presets.
    pub fn builder() -> QosBuilder {
        QosBuilder { requirement: QosRequirement::best_effort() }
    }
}

/// Builder for a [`QosRequirement`], started by [`QosRequirement::builder`].
///
/// Every field starts at its [`QosRequirement::best_effort`] value, so only
/// the constraints a channel actually cares about need to be stated:
///
/// ```
/// use karyon_middleware::QosRequirement;
/// use karyon_sim::SimDuration;
///
/// let qos = QosRequirement::builder()
///     .max_latency(SimDuration::from_millis(20))
///     .max_rate(50.0)
///     .build();
/// assert_eq!(qos.min_delivery_ratio, 0.0, "unset constraints stay best-effort");
/// ```
#[derive(Debug, Clone)]
pub struct QosBuilder {
    requirement: QosRequirement,
}

impl QosBuilder {
    /// Sets the maximum acceptable dissemination latency.
    pub fn max_latency(mut self, latency: SimDuration) -> Self {
        self.requirement.max_latency = latency;
        self
    }

    /// Sets the minimum acceptable delivery ratio (clamped to `[0, 1]`).
    pub fn min_delivery_ratio(mut self, ratio: f64) -> Self {
        self.requirement.min_delivery_ratio = ratio.clamp(0.0, 1.0);
        self
    }

    /// Sets the maximum event rate the publisher will generate.
    pub fn max_rate(mut self, rate: f64) -> Self {
        self.requirement.max_rate = rate.max(0.0);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> QosRequirement {
        self.requirement
    }
}

/// The compact, `Copy` event body of the v2 publish hot path.
///
/// Unlike the legacy [`Event`] (whose content is an owned byte vector), a
/// `Payload` moves through the bounded ring mailboxes without any per-publish
/// allocation: position and an opaque 64-bit tag are all a simulated event
/// carries.  Components that need richer content publish the tag as a key
/// into their own storage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Payload {
    /// Where the event was produced, if known.
    pub position: Option<Vec2>,
    /// Opaque application word (sequence number, key, encoded reading, …).
    pub tag: u64,
}

impl Payload {
    /// A payload carrying only an application tag.
    pub fn tagged(tag: u64) -> Self {
        Payload { position: None, tag }
    }

    /// A payload produced at a known position.
    pub fn at(position: Vec2, tag: u64) -> Self {
        Payload { position: Some(position), tag }
    }
}

/// Context attributes attached to an event (location, time).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Context {
    /// Where the event was produced, if known.
    pub position: Option<Vec2>,
    /// When the event was produced.
    pub timestamp: SimTime,
}

/// A context filter a subscriber attaches to a subscription: "the subscriber
/// will only get those events which pass the context filter".
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ContextFilter {
    /// Accept only events produced within this circular region.
    pub region: Option<(Vec2, f64)>,
    /// Accept only events at most this old at delivery time.
    pub max_age: Option<SimDuration>,
}

impl ContextFilter {
    /// A filter that accepts everything.
    pub fn accept_all() -> Self {
        ContextFilter::default()
    }

    /// A filter restricted to a circular region.
    pub fn within(center: Vec2, radius: f64) -> Self {
        ContextFilter { region: Some((center, radius)), max_age: None }
    }

    /// Adds a freshness requirement to the filter.
    pub fn fresher_than(mut self, max_age: SimDuration) -> Self {
        self.max_age = Some(max_age);
        self
    }

    /// True when the event's context passes the filter at delivery time `now`.
    pub fn matches(&self, context: &Context, now: SimTime) -> bool {
        if let Some((center, radius)) = self.region {
            match context.position {
                Some(pos) if center.distance(pos) <= radius => {}
                _ => return false,
            }
        }
        if let Some(max_age) = self.max_age {
            if now.since(context.timestamp) > max_age {
                return false;
            }
        }
        true
    }
}

/// A disseminated event: subject + attributes (QoS handled at the channel,
/// context carried here) + content.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The subject identifying the content type.
    pub subject: Subject,
    /// Context attributes (location, production time).
    pub context: Context,
    /// Opaque content bytes.
    pub content: Vec<u8>,
}

impl Event {
    /// Creates an event.
    pub fn new(subject: Subject, context: Context, content: Vec<u8>) -> Self {
        Event { subject, context, content }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subjects_from_names_are_stable_and_distinct() {
        let a1 = Subject::from_name("vehicle/speed");
        let a2 = Subject::from_name("vehicle/speed");
        let b = Subject::from_name("vehicle/position");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn context_filter_region() {
        let ctx = Context { position: Some(Vec2::new(10.0, 0.0)), timestamp: SimTime::ZERO };
        let now = SimTime::from_millis(50);
        assert!(ContextFilter::accept_all().matches(&ctx, now));
        assert!(ContextFilter::within(Vec2::ZERO, 20.0).matches(&ctx, now));
        assert!(!ContextFilter::within(Vec2::ZERO, 5.0).matches(&ctx, now));
        // Events without a position fail region filters.
        let anon = Context { position: None, timestamp: SimTime::ZERO };
        assert!(!ContextFilter::within(Vec2::ZERO, 5.0).matches(&anon, now));
        assert!(ContextFilter::accept_all().matches(&anon, now));
    }

    #[test]
    fn context_filter_age() {
        let ctx = Context { position: None, timestamp: SimTime::from_millis(100) };
        let filter = ContextFilter::accept_all().fresher_than(SimDuration::from_millis(50));
        assert!(filter.matches(&ctx, SimTime::from_millis(120)));
        assert!(!filter.matches(&ctx, SimTime::from_millis(200)));
    }

    #[test]
    fn best_effort_qos_is_trivially_satisfiable() {
        let q = QosRequirement::best_effort();
        assert_eq!(q.min_delivery_ratio, 0.0);
        assert_eq!(q.max_latency, SimDuration::MAX);
    }

    #[test]
    fn qos_constructors_and_builder() {
        let rt = QosRequirement::realtime(SimDuration::from_millis(10), 100.0);
        assert_eq!(rt.max_latency, SimDuration::from_millis(10));
        assert_eq!(rt.max_rate, 100.0);
        let batched = QosRequirement::batched(SimDuration::from_millis(200), 50.0);
        assert!(batched.min_delivery_ratio > rt.min_delivery_ratio);
        let bg = QosRequirement::background(5.0);
        assert_eq!(bg.max_latency, SimDuration::from_secs(1));
        let built = QosRequirement::builder()
            .max_latency(SimDuration::from_millis(20))
            .min_delivery_ratio(1.5)
            .max_rate(-3.0)
            .build();
        assert_eq!(built.min_delivery_ratio, 1.0, "ratio clamps to [0, 1]");
        assert_eq!(built.max_rate, 0.0, "rate clamps to >= 0");
        assert_eq!(built.max_latency, SimDuration::from_millis(20));
    }

    #[test]
    fn payload_constructors() {
        let p = Payload::tagged(7);
        assert_eq!(p.tag, 7);
        assert!(p.position.is_none());
        let q = Payload::at(Vec2::new(1.0, 2.0), 9);
        assert_eq!(q.position, Some(Vec2::new(1.0, 2.0)));
    }

    #[test]
    fn event_construction() {
        let e = Event::new(Subject::from_name("x"), Context::default(), vec![1, 2, 3]);
        assert_eq!(e.content, vec![1, 2, 3]);
        assert_eq!(e.subject, Subject::from_name("x"));
    }
}

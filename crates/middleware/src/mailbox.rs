//! Bounded ring mailboxes — the per-subscription event queues of the v2 bus.
//!
//! A [`Mailbox`] is a fixed-capacity FIFO ring over `Copy` slots.  The ring
//! is allocated once, at subscription time; pushing, popping and displacing
//! never allocate, which is what keeps the bus's publish path allocation-free
//! under any load.

/// A fixed-capacity FIFO ring buffer of `Copy` elements.
///
/// The buffer is allocated once at construction; all operations are O(1) and
/// allocation-free.  Overflow policy is the caller's business: [`push`]
/// refuses when full, and [`displace_push`] makes room by dropping the oldest
/// element — the building blocks of the bus's overload strategies.
///
/// [`push`]: Mailbox::push
/// [`displace_push`]: Mailbox::displace_push
#[derive(Debug, Clone)]
pub struct Mailbox<T: Copy + Default> {
    slots: Vec<T>,
    head: usize,
    len: usize,
}

impl<T: Copy + Default> Mailbox<T> {
    /// Creates a mailbox holding at most `capacity` elements.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a mailbox needs room for at least one event");
        Mailbox { slots: vec![T::default(); capacity], head: 0, len: 0 }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of queued elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the ring is at capacity.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Appends an element, or returns `false` (leaving the ring unchanged)
    /// when full.
    pub fn push(&mut self, value: T) -> bool {
        if self.is_full() {
            return false;
        }
        let idx = (self.head + self.len) % self.slots.len();
        self.slots[idx] = value;
        self.len += 1;
        true
    }

    /// Appends an element, displacing the oldest queued one when full.
    /// Returns the displaced element, if any.
    pub fn displace_push(&mut self, value: T) -> Option<T> {
        let displaced = if self.is_full() { self.pop() } else { None };
        let pushed = self.push(value);
        debug_assert!(pushed);
        displaced
    }

    /// Removes and returns the oldest element.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let value = self.slots[self.head];
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        Some(value)
    }

    /// A mutable reference to the newest element, if any — the coalescing
    /// target of the aggregate overload strategy.
    pub fn newest_mut(&mut self) -> Option<&mut T> {
        if self.len == 0 {
            return None;
        }
        let idx = (self.head + self.len - 1) % self.slots.len();
        Some(&mut self.slots[idx])
    }

    /// Discards everything queued, returning how many elements were dropped.
    pub fn clear(&mut self) -> usize {
        let dropped = self.len;
        self.head = 0;
        self.len = 0;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_wraparound() {
        let mut m: Mailbox<u32> = Mailbox::new(3);
        assert!(m.is_empty());
        assert!(m.push(1) && m.push(2) && m.push(3));
        assert!(m.is_full());
        assert!(!m.push(4), "push refuses when full");
        assert_eq!(m.pop(), Some(1));
        assert!(m.push(4), "freed slot is reusable (wraparound)");
        assert_eq!(m.pop(), Some(2));
        assert_eq!(m.pop(), Some(3));
        assert_eq!(m.pop(), Some(4));
        assert_eq!(m.pop(), None);
    }

    #[test]
    fn displace_push_drops_the_oldest() {
        let mut m: Mailbox<u32> = Mailbox::new(2);
        assert_eq!(m.displace_push(1), None);
        assert_eq!(m.displace_push(2), None);
        assert_eq!(m.displace_push(3), Some(1), "oldest element is displaced");
        assert_eq!(m.pop(), Some(2));
        assert_eq!(m.pop(), Some(3));
    }

    #[test]
    fn newest_mut_targets_the_back_of_the_ring() {
        let mut m: Mailbox<u32> = Mailbox::new(2);
        assert!(m.newest_mut().is_none());
        m.push(1);
        m.push(2);
        *m.newest_mut().unwrap() += 10;
        assert_eq!(m.pop(), Some(1));
        assert_eq!(m.pop(), Some(12));
    }

    #[test]
    fn clear_reports_dropped_count() {
        let mut m: Mailbox<u32> = Mailbox::new(4);
        m.push(1);
        m.push(2);
        assert_eq!(m.clear(), 2);
        assert!(m.is_empty());
        assert_eq!(m.clear(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn zero_capacity_is_rejected() {
        let _ = Mailbox::<u32>::new(0);
    }
}

//! Continuous-valued measurements.

use karyon_sim::SimTime;

/// A single continuous-valued sensor measurement.
///
/// As in the paper, "a sensor delivers continuous valued data and the sensor
/// reading is inherently affected by a measurement error"; the error model is
/// carried alongside the value as a variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Measured value, in the sensor's engineering unit (metres, m/s, ...).
    pub value: f64,
    /// Acquisition timestamp.
    pub timestamp: SimTime,
    /// Variance of the measurement error (unit²).
    pub variance: f64,
}

impl Measurement {
    /// Creates a measurement with the given value, timestamp and error variance.
    pub fn new(value: f64, timestamp: SimTime, variance: f64) -> Self {
        Measurement { value, timestamp, variance: variance.max(0.0) }
    }

    /// Creates an error-free measurement (variance 0), mostly for tests.
    pub fn exact(value: f64, timestamp: SimTime) -> Self {
        Measurement { value, timestamp, variance: 0.0 }
    }

    /// Standard deviation of the measurement error.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Age of the measurement at `now` (zero if `now` precedes the timestamp).
    pub fn age(&self, now: SimTime) -> karyon_sim::SimDuration {
        now.since(self.timestamp)
    }

    /// The `k`-sigma interval around the value, as `(lo, hi)`.
    pub fn interval(&self, k: f64) -> (f64, f64) {
        let half = k.abs() * self.std_dev();
        (self.value - half, self.value + half)
    }

    /// Returns a copy with the value shifted by `offset`.
    pub fn offset_by(&self, offset: f64) -> Measurement {
        Measurement { value: self.value + offset, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karyon_sim::{SimDuration, SimTime};

    #[test]
    fn construction_clamps_negative_variance() {
        let m = Measurement::new(1.0, SimTime::ZERO, -4.0);
        assert_eq!(m.variance, 0.0);
        assert_eq!(Measurement::exact(2.0, SimTime::ZERO).variance, 0.0);
    }

    #[test]
    fn std_dev_and_interval() {
        let m = Measurement::new(10.0, SimTime::ZERO, 4.0);
        assert_eq!(m.std_dev(), 2.0);
        assert_eq!(m.interval(2.0), (6.0, 14.0));
        assert_eq!(m.interval(-2.0), (6.0, 14.0));
    }

    #[test]
    fn age_is_saturating() {
        let m = Measurement::exact(0.0, SimTime::from_millis(100));
        assert_eq!(m.age(SimTime::from_millis(150)), SimDuration::from_millis(50));
        assert_eq!(m.age(SimTime::from_millis(50)), SimDuration::ZERO);
    }

    #[test]
    fn offset_by_keeps_metadata() {
        let m = Measurement::new(10.0, SimTime::from_millis(3), 1.0);
        let o = m.offset_by(-2.5);
        assert_eq!(o.value, 7.5);
        assert_eq!(o.timestamp, m.timestamp);
        assert_eq!(o.variance, m.variance);
    }
}

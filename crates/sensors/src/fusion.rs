//! Sensor fusion: validity-weighted averaging, Marzullo interval fusion and
//! a 1-D Kalman filter.
//!
//! The paper cites Marzullo's replication concept for continuous-valued
//! sensors ("Tolerating failures of continuous-valued sensors", TOCS 1990) as
//! the foundation of its reliable-sensor abstraction, and explicitly allows
//! fusion algorithms "to use even low validity data rather than just drop the
//! sensor reading".

use crate::measurement::Measurement;
use crate::validity::Validity;

/// A closed interval `[lo, hi]` of plausible values reported by one sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Creates an interval, swapping the bounds if given in the wrong order.
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// Builds the `k`-sigma interval of a measurement.
    pub fn from_measurement(m: &Measurement, k: f64) -> Self {
        let (lo, hi) = m.interval(k);
        Interval { lo, hi }
    }

    /// Interval midpoint.
    pub fn midpoint(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// True when `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }
}

/// Fuses readings weighted by their validity (and inverse variance).
///
/// Readings with zero validity are ignored.  Returns `None` when nothing can
/// be fused.  The fused validity is the validity-weighted mean of the input
/// validities, reflecting the graded-trust philosophy of §IV.
pub fn weighted_fuse(readings: &[(Measurement, Validity)]) -> Option<(f64, Validity)> {
    let mut weight_sum = 0.0;
    let mut value_acc = 0.0;
    let mut validity_acc = 0.0;
    for (m, v) in readings {
        if v.is_invalid() || !m.value.is_finite() {
            continue;
        }
        // More valid and more precise readings weigh more.
        let precision = 1.0 / (m.variance + 1e-9);
        let w = v.fraction() * precision;
        weight_sum += w;
        value_acc += w * m.value;
        validity_acc += w * v.fraction();
    }
    if weight_sum <= 0.0 {
        return None;
    }
    Some((value_acc / weight_sum, Validity::new(validity_acc / weight_sum)))
}

/// Marzullo's fault-tolerant interval intersection.
///
/// Given one interval per (possibly faulty) sensor and the maximum number of
/// faulty sensors `max_faulty`, returns the smallest interval that is
/// consistent with at least `n - max_faulty` of the inputs, or `None` if no
/// point is covered by that many intervals.
pub fn marzullo_fuse(intervals: &[Interval], max_faulty: usize) -> Option<Interval> {
    let n = intervals.len();
    if n == 0 || max_faulty >= n {
        return None;
    }
    let required = n - max_faulty;

    // Sweep over interval endpoints, tracking how many intervals cover each
    // elementary segment.
    let mut edges: Vec<(f64, i32)> = Vec::with_capacity(2 * n);
    for iv in intervals {
        edges.push((iv.lo, 1));
        edges.push((iv.hi, -1));
    }
    // Starts before ends at the same coordinate so touching intervals count
    // as overlapping (closed intervals).
    edges.sort_by(|a, b| {
        a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then(b.1.cmp(&a.1))
    });

    let mut best: Option<Interval> = None;
    let mut depth = 0;
    let mut current_lo = f64::NEG_INFINITY;
    for (x, delta) in edges {
        if delta == 1 {
            depth += 1;
            if depth >= required as i32 {
                current_lo = current_lo.max(x);
                if depth == required as i32 {
                    current_lo = x;
                }
            }
        } else {
            if depth >= required as i32 {
                // Closing an interval while coverage is sufficient terminates
                // a candidate segment [current_lo, x].
                let candidate = Interval::new(current_lo, x);
                best = match best {
                    None => Some(candidate),
                    Some(b) if candidate.width() < b.width() => Some(candidate),
                    other => other,
                };
            }
            depth -= 1;
        }
    }
    best
}

/// A scalar Kalman filter used as the analytical-redundancy model of the
/// reliable sensor (constant-velocity process model).
#[derive(Debug, Clone)]
pub struct Kalman1D {
    /// Estimated value.
    x: f64,
    /// Estimated rate of change.
    v: f64,
    /// Estimate variance (of the value).
    p: f64,
    /// Process noise (how fast the true value can wander), per second².
    q: f64,
    initialized: bool,
    last_time_s: f64,
}

impl Kalman1D {
    /// Creates a filter with the given process-noise intensity.
    pub fn new(process_noise: f64) -> Self {
        Kalman1D {
            x: 0.0,
            v: 0.0,
            p: 1e6,
            q: process_noise.max(1e-9),
            initialized: false,
            last_time_s: 0.0,
        }
    }

    /// True once at least one measurement has been absorbed.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Current state estimate.
    pub fn estimate(&self) -> f64 {
        self.x
    }

    /// Current estimate variance.
    pub fn variance(&self) -> f64 {
        self.p
    }

    /// Predicts the value at `time_s` seconds without updating the state.
    pub fn predict_at(&self, time_s: f64) -> f64 {
        if !self.initialized {
            return self.x;
        }
        let dt = (time_s - self.last_time_s).max(0.0);
        self.x + self.v * dt
    }

    /// Absorbs a measurement taken at `time_s` seconds with variance `r`.
    /// Returns the updated estimate.
    pub fn update(&mut self, value: f64, time_s: f64, r: f64) -> f64 {
        let r = r.max(1e-9);
        if !self.initialized {
            self.x = value;
            self.v = 0.0;
            self.p = r;
            self.initialized = true;
            self.last_time_s = time_s;
            return self.x;
        }
        let dt = (time_s - self.last_time_s).max(0.0);
        // Predict.
        let predicted = self.x + self.v * dt;
        let p_pred = self.p + self.q * (dt * dt + dt) + 1e-12;
        // Update.
        let k = p_pred / (p_pred + r);
        let innovation = value - predicted;
        self.x = predicted + k * innovation;
        self.p = (1.0 - k) * p_pred;
        // Crude velocity estimate from the innovation.
        if dt > 1e-6 {
            self.v += k * innovation / dt * 0.5;
        }
        self.last_time_s = time_s;
        self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karyon_sim::SimTime;

    #[test]
    fn interval_basics() {
        let iv = Interval::new(5.0, 3.0);
        assert_eq!(iv, Interval::new(3.0, 5.0));
        assert_eq!(iv.midpoint(), 4.0);
        assert_eq!(iv.width(), 2.0);
        assert!(iv.contains(3.0) && iv.contains(5.0) && !iv.contains(5.1));
        let m = Measurement::new(10.0, SimTime::ZERO, 4.0);
        assert_eq!(Interval::from_measurement(&m, 1.0), Interval::new(8.0, 12.0));
    }

    #[test]
    fn weighted_fuse_prefers_valid_precise_readings() {
        let t = SimTime::ZERO;
        let readings = vec![
            (Measurement::new(10.0, t, 0.01), Validity::new(1.0)),
            (Measurement::new(20.0, t, 0.01), Validity::new(0.1)),
        ];
        let (value, validity) = weighted_fuse(&readings).unwrap();
        assert!(value < 12.0, "fused value {value}");
        assert!(validity.fraction() > 0.8);
    }

    #[test]
    fn weighted_fuse_ignores_invalid_and_handles_empty() {
        let t = SimTime::ZERO;
        assert!(weighted_fuse(&[]).is_none());
        let all_invalid = vec![(Measurement::new(10.0, t, 0.01), Validity::INVALID)];
        assert!(weighted_fuse(&all_invalid).is_none());
        let mixed = vec![
            (Measurement::new(10.0, t, 0.01), Validity::INVALID),
            (Measurement::new(30.0, t, 0.01), Validity::FULL),
        ];
        let (value, _) = weighted_fuse(&mixed).unwrap();
        assert_eq!(value, 30.0);
    }

    #[test]
    fn marzullo_tolerates_one_outlier() {
        // Three sensors: two agree on ~10, one is an outlier at 100.
        let intervals =
            vec![Interval::new(9.0, 11.0), Interval::new(9.5, 11.5), Interval::new(99.0, 101.0)];
        let fused = marzullo_fuse(&intervals, 1).unwrap();
        assert!(fused.lo >= 9.0 && fused.hi <= 11.5);
        assert!(fused.contains(10.0) || fused.midpoint() > 9.0);
        // Requiring all three to agree fails (no common point).
        assert!(marzullo_fuse(&intervals, 0).is_none());
    }

    #[test]
    fn marzullo_all_correct_intersects() {
        let intervals =
            vec![Interval::new(0.0, 10.0), Interval::new(5.0, 15.0), Interval::new(4.0, 6.0)];
        let fused = marzullo_fuse(&intervals, 0).unwrap();
        assert!((fused.lo - 5.0).abs() < 1e-9);
        assert!((fused.hi - 6.0).abs() < 1e-9);
    }

    #[test]
    fn marzullo_edge_cases() {
        assert!(marzullo_fuse(&[], 0).is_none());
        let one = vec![Interval::new(1.0, 2.0)];
        assert_eq!(marzullo_fuse(&one, 0), Some(Interval::new(1.0, 2.0)));
        assert!(marzullo_fuse(&one, 1).is_none());
        // Touching intervals count as overlapping.
        let touching = vec![Interval::new(0.0, 5.0), Interval::new(5.0, 10.0)];
        let fused = marzullo_fuse(&touching, 0).unwrap();
        assert!((fused.lo - 5.0).abs() < 1e-9 && (fused.hi - 5.0).abs() < 1e-9);
    }

    #[test]
    fn kalman_converges_to_constant_truth() {
        let mut kf = Kalman1D::new(0.01);
        assert!(!kf.is_initialized());
        let mut rng = karyon_sim::Rng::seed_from(9);
        for i in 0..200 {
            let t = i as f64 * 0.1;
            kf.update(50.0 + rng.normal(0.0, 1.0), t, 1.0);
        }
        assert!(kf.is_initialized());
        assert!((kf.estimate() - 50.0).abs() < 1.0, "estimate {}", kf.estimate());
        assert!(kf.variance() < 1.0);
    }

    #[test]
    fn kalman_tracks_ramp_and_predicts_forward() {
        let mut kf = Kalman1D::new(0.5);
        for i in 0..400 {
            let t = i as f64 * 0.1;
            let truth = 2.0 * t; // 2 units/s ramp
            kf.update(truth, t, 0.01);
        }
        let now = 399.0 * 0.1 / 10.0 * 10.0; // 39.9
        assert!((kf.estimate() - 2.0 * now).abs() < 1.5, "estimate {}", kf.estimate());
        let pred = kf.predict_at(now + 1.0);
        assert!(pred > kf.estimate(), "prediction should extrapolate the ramp");
    }
}

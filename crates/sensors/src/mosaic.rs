//! The MOSAIC smart-sensor node structure (paper Fig. 3).
//!
//! A MOSAIC component "disseminates typed message objects called events,
//! including the respective sensor data and additional attributes like
//! position, timestamps, validity estimation, etc.  Static properties and
//! information of a MOSAIC component are described in an electronic data
//! sheet stored on the node."  The node combines an abstract-sensor input
//! layer, application (detection) modules, an abstract communication layer
//! and a crosscutting fault-management unit that "combines the individual
//! fault estimations and calculates a general validity value between 0 and
//! 100 %".

use karyon_sim::{SimTime, Vec2};

use crate::abstract_sensor::{combine_outcomes, AbstractSensor};
use crate::detectors::{DetectionOutcome, FailureDetector};
use crate::validity::Validity;

/// The electronic data sheet of a MOSAIC node: the static description other
/// nodes can use to interpret its events.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSheet {
    /// Node identifier.
    pub node_name: String,
    /// The physical quantity measured, e.g. `"range"` or `"speed"`.
    pub quantity: String,
    /// Engineering unit of the values, e.g. `"m"` or `"m/s"`.
    pub unit: String,
    /// Nominal sampling period in milliseconds.
    pub period_ms: u64,
    /// Nominal measurement-error standard deviation.
    pub nominal_error_std: f64,
}

/// A typed message object disseminated by a MOSAIC node: the sensor value
/// plus the attributes named in the paper (position, timestamp, validity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorEvent {
    /// The measured value.
    pub value: f64,
    /// Acquisition timestamp.
    pub timestamp: SimTime,
    /// Position of the producing node at acquisition time.
    pub position: Vec2,
    /// The combined data-validity attribute.
    pub validity: Validity,
}

impl SensorEvent {
    /// True when fault management rendered the event invalid.
    pub fn is_invalid(&self) -> bool {
        self.validity.is_invalid()
    }

    /// Age of the event at `now`.
    pub fn age(&self, now: SimTime) -> karyon_sim::SimDuration {
        now.since(self.timestamp)
    }
}

/// A MOSAIC smart-sensor node: input layer (abstract sensor), additional
/// application-level detection modules and the fault-management unit.
pub struct MosaicNode {
    data_sheet: DataSheet,
    input: AbstractSensor,
    /// Application-level detection modules (Detection 0, Detection 1, ... in Fig. 3).
    app_detectors: Vec<Box<dyn FailureDetector + Send>>,
    position: Vec2,
    produced: u64,
    invalidated: u64,
}

impl std::fmt::Debug for MosaicNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MosaicNode")
            .field("data_sheet", &self.data_sheet)
            .field("app_detectors", &self.app_detectors.len())
            .field("produced", &self.produced)
            .finish()
    }
}

impl MosaicNode {
    /// Creates a node from its data sheet and input-layer abstract sensor.
    pub fn new(data_sheet: DataSheet, input: AbstractSensor) -> Self {
        MosaicNode {
            data_sheet,
            input,
            app_detectors: Vec::new(),
            position: Vec2::ZERO,
            produced: 0,
            invalidated: 0,
        }
    }

    /// The node's electronic data sheet.
    pub fn data_sheet(&self) -> &DataSheet {
        &self.data_sheet
    }

    /// Adds an application-level detection module.
    pub fn add_application_detector(
        &mut self,
        detector: Box<dyn FailureDetector + Send>,
    ) -> &mut Self {
        self.app_detectors.push(detector);
        self
    }

    /// Mutable access to the input-layer abstract sensor (e.g. to inject faults).
    pub fn input_mut(&mut self) -> &mut AbstractSensor {
        &mut self.input
    }

    /// Updates the node's physical position (attached to produced events).
    pub fn set_position(&mut self, position: Vec2) {
        self.position = position;
    }

    /// Number of events produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Number of produced events whose validity was 0.
    pub fn invalidated(&self) -> u64 {
        self.invalidated
    }

    /// Acquires the ground truth, runs the input layer and all application
    /// detection modules, and produces the disseminated event with its
    /// combined validity.
    pub fn produce_event(&mut self, ground_truth: f64, now: SimTime) -> SensorEvent {
        let input_reading = self.input.acquire(ground_truth, now);
        // The application modules re-assess the delivered measurement.
        let app_outcomes: Vec<DetectionOutcome> = self
            .app_detectors
            .iter_mut()
            .map(|d| d.assess(&input_reading.measurement, now))
            .collect();
        let app_validity = combine_outcomes(&app_outcomes);
        // Fault management combines the input layer's validity with the
        // application modules' assessments.
        let validity = if input_reading.validity.is_invalid() || app_validity.is_invalid() {
            Validity::INVALID
        } else {
            input_reading.validity.combine(app_validity)
        };
        let event = SensorEvent {
            value: input_reading.measurement.value,
            timestamp: input_reading.measurement.timestamp,
            position: self.position,
            validity,
        };
        self.produced += 1;
        if event.is_invalid() {
            self.invalidated += 1;
        }
        event
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detectors::{RangeCheckDetector, RateOfChangeDetector, StuckAtDetector};
    use crate::faults::SensorFault;
    use crate::physical::RangeSensor;
    use karyon_sim::SimTime;

    fn sheet() -> DataSheet {
        DataSheet {
            node_name: "node-A".into(),
            quantity: "range".into(),
            unit: "m".into(),
            period_ms: 100,
            nominal_error_std: 0.5,
        }
    }

    fn node(seed: u64) -> MosaicNode {
        let mut input = AbstractSensor::new(
            "sensor-A",
            Box::new(RangeSensor { noise_std: 0.3, max_range: 200.0, dropout_probability: 0.0 }),
            seed,
        );
        input.add_detector(Box::new(RangeCheckDetector::new(0.0, 200.0)));
        let mut n = MosaicNode::new(sheet(), input);
        n.add_application_detector(Box::new(RateOfChangeDetector::new(30.0)));
        n.add_application_detector(Box::new(StuckAtDetector::new(1e-9, 4)));
        n
    }

    #[test]
    fn produces_valid_events_for_healthy_sensor() {
        let mut n = node(1);
        n.set_position(Vec2::new(5.0, 2.0));
        for i in 0..20u64 {
            let e = n.produce_event(40.0 + i as f64 * 0.2, SimTime::from_millis(i * 100));
            assert!(e.validity.fraction() > 0.9);
            assert_eq!(e.position, Vec2::new(5.0, 2.0));
            assert!(!e.is_invalid());
        }
        assert_eq!(n.produced(), 20);
        assert_eq!(n.invalidated(), 0);
        assert_eq!(n.data_sheet().quantity, "range");
    }

    #[test]
    fn application_detector_can_invalidate_events() {
        let mut n = node(2);
        n.input_mut()
            .injector_mut()
            .inject_always(SensorFault::StuckAt { stuck_value: Some(77.0) });
        let mut saw_invalid = false;
        for i in 0..30u64 {
            let e = n.produce_event(10.0 + i as f64, SimTime::from_millis(i * 100));
            if e.is_invalid() {
                saw_invalid = true;
            }
        }
        assert!(saw_invalid);
        assert!(n.invalidated() > 0);
        assert_eq!(n.produced(), 30);
    }

    #[test]
    fn event_age_helper() {
        let e = SensorEvent {
            value: 1.0,
            timestamp: SimTime::from_millis(100),
            position: Vec2::ZERO,
            validity: Validity::FULL,
        };
        assert_eq!(e.age(SimTime::from_millis(350)).as_millis(), 250);
    }
}

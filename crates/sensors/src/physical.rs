//! Simulated physical sensors.
//!
//! These models stand in for the transducers of the paper's prototypes
//! (radar/lidar range finders, wheel-speed sensors, GPS receivers).  Each
//! model turns a ground-truth quantity into a noisy [`Measurement`]; the
//! fault injector then corrupts it further when faults are scheduled.

use karyon_sim::{Rng, SimTime, Vec2};

use crate::measurement::Measurement;

/// A simulated transducer that converts a ground-truth value into a noisy
/// measurement.
pub trait PhysicalSensor {
    /// Samples the sensor given the ground truth at `now`.
    fn sample(&mut self, ground_truth: f64, now: SimTime, rng: &mut Rng) -> Measurement;

    /// The nominal measurement-noise variance of this sensor.
    fn nominal_variance(&self) -> f64;
}

/// A range sensor (radar / lidar style): Gaussian noise, bounded range,
/// occasional dropouts reported as the maximum range.
#[derive(Debug, Clone)]
pub struct RangeSensor {
    /// Standard deviation of the measurement noise (metres).
    pub noise_std: f64,
    /// Maximum measurable range (metres); larger truths saturate.
    pub max_range: f64,
    /// Probability that a sample is a dropout (reported as `max_range`).
    pub dropout_probability: f64,
}

impl Default for RangeSensor {
    fn default() -> Self {
        RangeSensor { noise_std: 0.5, max_range: 250.0, dropout_probability: 0.0 }
    }
}

impl PhysicalSensor for RangeSensor {
    fn sample(&mut self, ground_truth: f64, now: SimTime, rng: &mut Rng) -> Measurement {
        if rng.chance(self.dropout_probability) {
            return Measurement::new(self.max_range, now, self.nominal_variance());
        }
        let truth = ground_truth.clamp(0.0, self.max_range);
        let value = (truth + rng.normal(0.0, self.noise_std)).clamp(0.0, self.max_range);
        Measurement::new(value, now, self.nominal_variance())
    }

    fn nominal_variance(&self) -> f64 {
        self.noise_std * self.noise_std
    }
}

/// A speed sensor (wheel encoder style): Gaussian noise plus quantization.
#[derive(Debug, Clone)]
pub struct SpeedSensor {
    /// Standard deviation of the measurement noise (m/s).
    pub noise_std: f64,
    /// Quantization step (m/s); 0 disables quantization.
    pub quantization: f64,
}

impl Default for SpeedSensor {
    fn default() -> Self {
        SpeedSensor { noise_std: 0.1, quantization: 0.01 }
    }
}

impl PhysicalSensor for SpeedSensor {
    fn sample(&mut self, ground_truth: f64, now: SimTime, rng: &mut Rng) -> Measurement {
        let mut value = ground_truth + rng.normal(0.0, self.noise_std);
        if self.quantization > 0.0 {
            value = (value / self.quantization).round() * self.quantization;
        }
        Measurement::new(value, now, self.nominal_variance())
    }

    fn nominal_variance(&self) -> f64 {
        self.noise_std * self.noise_std + self.quantization * self.quantization / 12.0
    }
}

/// A 2-D position sensor (GPS / satellite-navigation style): Gaussian noise
/// plus a slowly drifting bias (random walk), the dominant GPS error mode.
///
/// The avionics use cases distinguish *collaborative* vehicles (accurate,
/// ADS-B-like positioning) from *non-collaborative* ones with "a much less
/// accurate estimate" — modelled by constructing this sensor with a larger
/// noise and bias drift.
#[derive(Debug, Clone)]
pub struct PositionSensor2D {
    /// Standard deviation of the white-noise component (metres, per axis).
    pub noise_std: f64,
    /// Standard deviation of the per-sample bias random-walk increment (metres).
    pub bias_drift_std: f64,
    /// Maximum bias magnitude per axis (metres).
    pub bias_limit: f64,
    bias: Vec2,
}

impl PositionSensor2D {
    /// Creates a position sensor with the given noise and bias drift.
    pub fn new(noise_std: f64, bias_drift_std: f64, bias_limit: f64) -> Self {
        PositionSensor2D { noise_std, bias_drift_std, bias_limit, bias: Vec2::ZERO }
    }

    /// An accurate, ADS-B/collaborative-grade position sensor (≈1 m noise).
    pub fn collaborative() -> Self {
        PositionSensor2D::new(1.0, 0.02, 3.0)
    }

    /// A coarse, non-collaborative-grade position sensor (≈50 m noise),
    /// matching the paper's "much less accurate estimate of its actual
    /// position" for vehicles without satellite-based reporting.
    pub fn non_collaborative() -> Self {
        PositionSensor2D::new(50.0, 1.0, 150.0)
    }

    /// Current bias (exposed for tests and diagnostics).
    pub fn bias(&self) -> Vec2 {
        self.bias
    }

    /// Samples a 2-D position given the true position.
    pub fn sample_position(
        &mut self,
        truth: Vec2,
        now: SimTime,
        rng: &mut Rng,
    ) -> (Vec2, Measurement) {
        self.bias = Vec2::new(
            (self.bias.x + rng.normal(0.0, self.bias_drift_std))
                .clamp(-self.bias_limit, self.bias_limit),
            (self.bias.y + rng.normal(0.0, self.bias_drift_std))
                .clamp(-self.bias_limit, self.bias_limit),
        );
        let measured = Vec2::new(
            truth.x + self.bias.x + rng.normal(0.0, self.noise_std),
            truth.y + self.bias.y + rng.normal(0.0, self.noise_std),
        );
        let error = measured.distance(truth);
        (measured, Measurement::new(error, now, self.nominal_variance()))
    }
}

impl PhysicalSensor for PositionSensor2D {
    fn sample(&mut self, ground_truth: f64, now: SimTime, rng: &mut Rng) -> Measurement {
        // 1-D projection used when the sensor participates in a generic chain:
        // the ground truth is a scalar coordinate.
        let (pos, _) = self.sample_position(Vec2::new(ground_truth, 0.0), now, rng);
        Measurement::new(pos.x, now, self.nominal_variance())
    }

    fn nominal_variance(&self) -> f64 {
        self.noise_std * self.noise_std + self.bias_limit * self.bias_limit / 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karyon_sim::SimTime;

    #[test]
    fn range_sensor_noise_and_saturation() {
        let mut s = RangeSensor { noise_std: 0.5, max_range: 100.0, dropout_probability: 0.0 };
        let mut rng = Rng::seed_from(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let m = s.sample(50.0, SimTime::ZERO, &mut rng);
            assert!((0.0..=100.0).contains(&m.value));
            sum += m.value;
        }
        assert!((sum / n as f64 - 50.0).abs() < 0.05);
        // Saturation.
        let m = s.sample(1_000.0, SimTime::ZERO, &mut rng);
        assert!(m.value <= 100.0);
        assert!(s.nominal_variance() > 0.0);
    }

    #[test]
    fn range_sensor_dropouts_report_max_range() {
        let mut s = RangeSensor { noise_std: 0.0, max_range: 80.0, dropout_probability: 1.0 };
        let mut rng = Rng::seed_from(2);
        let m = s.sample(10.0, SimTime::ZERO, &mut rng);
        assert_eq!(m.value, 80.0);
    }

    #[test]
    fn speed_sensor_quantizes() {
        let mut s = SpeedSensor { noise_std: 0.0, quantization: 0.5 };
        let mut rng = Rng::seed_from(3);
        let m = s.sample(13.26, SimTime::ZERO, &mut rng);
        assert!((m.value - 13.5).abs() < 1e-9 || (m.value - 13.0).abs() < 1e-9);
        let mut s2 = SpeedSensor { noise_std: 0.0, quantization: 0.0 };
        assert_eq!(s2.sample(13.26, SimTime::ZERO, &mut rng).value, 13.26);
    }

    #[test]
    fn position_sensor_grades_differ() {
        let mut good = PositionSensor2D::collaborative();
        let mut bad = PositionSensor2D::non_collaborative();
        let mut rng = Rng::seed_from(4);
        let truth = Vec2::new(100.0, 200.0);
        let n = 2_000;
        let mut good_err = 0.0;
        let mut bad_err = 0.0;
        for _ in 0..n {
            good_err += good.sample_position(truth, SimTime::ZERO, &mut rng).0.distance(truth);
            bad_err += bad.sample_position(truth, SimTime::ZERO, &mut rng).0.distance(truth);
        }
        let good_err = good_err / n as f64;
        let bad_err = bad_err / n as f64;
        assert!(good_err < 5.0, "collaborative mean error {good_err}");
        assert!(bad_err > 20.0, "non-collaborative mean error {bad_err}");
        assert!(bad_err > 5.0 * good_err);
    }

    #[test]
    fn position_bias_is_bounded() {
        let mut s = PositionSensor2D::new(0.0, 10.0, 5.0);
        let mut rng = Rng::seed_from(5);
        for _ in 0..1_000 {
            s.sample_position(Vec2::ZERO, SimTime::ZERO, &mut rng);
            assert!(s.bias().x.abs() <= 5.0 && s.bias().y.abs() <= 5.0);
        }
    }

    #[test]
    fn position_sensor_scalar_projection() {
        let mut s = PositionSensor2D::collaborative();
        let mut rng = Rng::seed_from(6);
        let m = s.sample(500.0, SimTime::from_secs(1), &mut rng);
        assert!((m.value - 500.0).abs() < 20.0);
        assert_eq!(m.timestamp, SimTime::from_secs(1));
    }
}

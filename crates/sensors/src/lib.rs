//! # karyon-sensors — abstract sensors, fault semantics and validity (KARYON §IV)
//!
//! The KARYON paper argues that cooperative vehicular control needs *fault
//! models that abstract from the subtle and diverse behaviours of faulty
//! components* and provide a well-defined failure semantics at the component
//! interface.  This crate implements that abstraction layer:
//!
//! * [`measurement`] — continuous-valued measurements with timestamps,
//! * [`faults`] — the five sensor-fault classes identified by the project
//!   (delay, sporadic offset, permanent offset, stochastic offset, stuck-at)
//!   and a deterministic fault injector,
//! * [`physical`] — simulated physical sensors (range, speed, GPS-like
//!   position) used by the vehicle scenarios,
//! * [`detectors`] — *dominant* detectors (a detected failure renders the
//!   reading invalid) and *continuous* detectors (contribute a graded
//!   validity estimate), exactly the two classes of Fig. 3,
//! * [`validity`] — the 0–100 % data-validity attribute attached to every
//!   disseminated reading,
//! * [`fusion`] — validity-weighted fusion, Marzullo interval fusion and a
//!   1-D Kalman filter (analytical redundancy),
//! * [`mosaic`] — the MOSAIC node structure: input layer, detection modules,
//!   crosscutting fault management, electronic data sheet,
//! * [`abstract_sensor`] / [`reliable`] — the abstract sensor (physical
//!   sensor + injected faults + detectors ⇒ reading with validity) and the
//!   abstract *reliable* sensor that combines component, analytical and
//!   temporal redundancy.
//!
//! ## Quick tour
//!
//! Every disseminated reading carries a [`Validity`] in `[0, 100] %`;
//! independent evidence combines multiplicatively, and safety rules compare
//! the result against thresholds:
//!
//! ```
//! use karyon_sensors::Validity;
//!
//! let detector_a = Validity::from_percent(75.0);
//! let detector_b = Validity::from_percent(50.0);
//! let combined = detector_a.combine(detector_b);
//! assert_eq!(combined.percent(), 37.5);
//! assert!(combined.meets(0.3), "still good enough for a 30 % rule");
//! assert!(!combined.meets(0.5));
//! assert!(Validity::INVALID.is_invalid());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abstract_sensor;
pub mod detectors;
pub mod faults;
pub mod fusion;
pub mod measurement;
pub mod mosaic;
pub mod physical;
pub mod reliable;
pub mod validity;

pub use abstract_sensor::{monitored_range_sensor, AbstractSensor, SensorReading};
pub use detectors::{
    DetectionOutcome, DetectorClass, FailureDetector, ModelBasedDetector, RangeCheckDetector,
    RateOfChangeDetector, StuckAtDetector, TimeoutDetector,
};
pub use faults::{FaultInjector, FaultSchedule, SensorFault};
pub use fusion::{marzullo_fuse, weighted_fuse, Interval, Kalman1D};
pub use measurement::Measurement;
pub use mosaic::{DataSheet, MosaicNode, SensorEvent};
pub use physical::{PhysicalSensor, PositionSensor2D, RangeSensor, SpeedSensor};
pub use reliable::ReliableSensor;
pub use validity::Validity;

//! Failure detectors attached to abstract sensors.
//!
//! MOSAIC "distinguishes between two types of failure detectors: a) dominant
//! detectors that render a result invalid (i.e. a validity of 0) if they
//! detect a failure, and b) other detectors that lead to a certain continuous
//! validity estimate" (paper §IV-B).  Both classes are implemented here, plus
//! the concrete detectors needed to cover the five fault classes:
//!
//! | fault class        | covering detector(s)                         |
//! |---------------------|----------------------------------------------|
//! | delay               | [`TimeoutDetector`] (dominant)               |
//! | sporadic offset     | [`RateOfChangeDetector`], [`ModelBasedDetector`] |
//! | permanent offset    | [`ModelBasedDetector`] (analytical redundancy) |
//! | stochastic offset   | [`ModelBasedDetector`] (graded)              |
//! | stuck-at            | [`StuckAtDetector`] (dominant)               |
//! | out-of-range output | [`RangeCheckDetector`] (dominant)            |

use karyon_sim::{SimDuration, SimTime};

use crate::measurement::Measurement;
use crate::validity::Validity;

/// Whether a detector is *dominant* (a detection forces validity 0) or
/// *continuous* (contributes a graded validity factor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorClass {
    /// A detected failure renders the reading invalid.
    Dominant,
    /// The detector scales the validity continuously.
    Continuous,
}

/// The verdict of one detector about one reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionOutcome {
    /// The detector's class.
    pub class: DetectorClass,
    /// The validity factor contributed by this detector (0 ⇒ failure for a
    /// dominant detector, otherwise a graded confidence).
    pub validity: Validity,
}

impl DetectionOutcome {
    /// A passing outcome (full validity).
    pub fn pass(class: DetectorClass) -> Self {
        DetectionOutcome { class, validity: Validity::FULL }
    }

    /// A dominant failure (validity 0).
    pub fn dominant_failure() -> Self {
        DetectionOutcome { class: DetectorClass::Dominant, validity: Validity::INVALID }
    }

    /// A graded outcome from a continuous detector.
    pub fn graded(validity: Validity) -> Self {
        DetectionOutcome { class: DetectorClass::Continuous, validity }
    }

    /// True when this outcome signals a definite failure.
    pub fn is_failure(&self) -> bool {
        self.class == DetectorClass::Dominant && self.validity.is_invalid()
    }
}

/// A failure detector in the sense of MOSAIC's detection modules.
pub trait FailureDetector {
    /// Assesses one reading and returns the detector's outcome.
    fn assess(&mut self, reading: &Measurement, now: SimTime) -> DetectionOutcome;

    /// A short, stable name for experiment tables.
    fn name(&self) -> &'static str;

    /// The detector's class.
    fn class(&self) -> DetectorClass;

    /// Resets any internal state (e.g. between experiment repetitions).
    fn reset(&mut self) {}
}

/// Dominant detector: the value must lie inside a physically plausible range.
#[derive(Debug, Clone)]
pub struct RangeCheckDetector {
    /// Smallest plausible value.
    pub min: f64,
    /// Largest plausible value.
    pub max: f64,
}

impl RangeCheckDetector {
    /// Creates a range check for `[min, max]`.
    pub fn new(min: f64, max: f64) -> Self {
        RangeCheckDetector { min, max }
    }
}

impl FailureDetector for RangeCheckDetector {
    fn assess(&mut self, reading: &Measurement, _now: SimTime) -> DetectionOutcome {
        if reading.value < self.min || reading.value > self.max || !reading.value.is_finite() {
            DetectionOutcome::dominant_failure()
        } else {
            DetectionOutcome::pass(DetectorClass::Dominant)
        }
    }

    fn name(&self) -> &'static str {
        "range-check"
    }

    fn class(&self) -> DetectorClass {
        DetectorClass::Dominant
    }
}

/// Dominant detector: the reading must be fresh (its age below a bound).
/// Covers delay and omission faults — "the input layer may monitor the delays
/// or omissions of the transducer output".
#[derive(Debug, Clone)]
pub struct TimeoutDetector {
    /// Maximum acceptable age of a reading.
    pub max_age: SimDuration,
}

impl TimeoutDetector {
    /// Creates a freshness check with the given maximum age.
    pub fn new(max_age: SimDuration) -> Self {
        TimeoutDetector { max_age }
    }
}

impl FailureDetector for TimeoutDetector {
    fn assess(&mut self, reading: &Measurement, now: SimTime) -> DetectionOutcome {
        if reading.age(now) > self.max_age {
            DetectionOutcome::dominant_failure()
        } else {
            DetectionOutcome::pass(DetectorClass::Dominant)
        }
    }

    fn name(&self) -> &'static str {
        "timeout"
    }

    fn class(&self) -> DetectorClass {
        DetectorClass::Dominant
    }
}

/// Continuous detector: penalizes physically implausible jumps between
/// consecutive readings (temporal redundancy).
#[derive(Debug, Clone)]
pub struct RateOfChangeDetector {
    /// Maximum plausible rate of change (units per second).
    pub max_rate: f64,
    previous: Option<Measurement>,
}

impl RateOfChangeDetector {
    /// Creates a rate-of-change check with the given maximum plausible rate.
    pub fn new(max_rate: f64) -> Self {
        RateOfChangeDetector { max_rate, previous: None }
    }
}

impl FailureDetector for RateOfChangeDetector {
    fn assess(&mut self, reading: &Measurement, _now: SimTime) -> DetectionOutcome {
        let outcome = match self.previous {
            None => DetectionOutcome::pass(DetectorClass::Continuous),
            Some(prev) => {
                let dt = reading.timestamp.since(prev.timestamp).as_secs_f64();
                if dt <= 0.0 {
                    DetectionOutcome::pass(DetectorClass::Continuous)
                } else {
                    let rate = (reading.value - prev.value).abs() / dt;
                    if rate <= self.max_rate {
                        DetectionOutcome::pass(DetectorClass::Continuous)
                    } else {
                        // Confidence decays with how far the observed rate
                        // exceeds the plausible one.
                        let v = (self.max_rate / rate).clamp(0.0, 1.0);
                        DetectionOutcome::graded(Validity::new(v))
                    }
                }
            }
        };
        self.previous = Some(*reading);
        outcome
    }

    fn name(&self) -> &'static str {
        "rate-of-change"
    }

    fn class(&self) -> DetectorClass {
        DetectorClass::Continuous
    }

    fn reset(&mut self) {
        self.previous = None;
    }
}

/// Dominant detector: flags an output frozen at the same value for too many
/// consecutive samples (stuck-at faults).
#[derive(Debug, Clone)]
pub struct StuckAtDetector {
    /// Two readings closer than this are considered "identical".
    pub tolerance: f64,
    /// Number of consecutive identical readings that triggers detection.
    pub repeat_threshold: u32,
    last_value: Option<f64>,
    repeats: u32,
}

impl StuckAtDetector {
    /// Creates a stuck-at detector.
    pub fn new(tolerance: f64, repeat_threshold: u32) -> Self {
        StuckAtDetector {
            tolerance,
            repeat_threshold: repeat_threshold.max(1),
            last_value: None,
            repeats: 0,
        }
    }
}

impl FailureDetector for StuckAtDetector {
    fn assess(&mut self, reading: &Measurement, _now: SimTime) -> DetectionOutcome {
        match self.last_value {
            Some(prev) if (reading.value - prev).abs() <= self.tolerance => {
                self.repeats += 1;
            }
            _ => {
                self.repeats = 0;
            }
        }
        self.last_value = Some(reading.value);
        if self.repeats >= self.repeat_threshold {
            DetectionOutcome::dominant_failure()
        } else {
            DetectionOutcome::pass(DetectorClass::Dominant)
        }
    }

    fn name(&self) -> &'static str {
        "stuck-at"
    }

    fn class(&self) -> DetectorClass {
        DetectorClass::Dominant
    }

    fn reset(&mut self) {
        self.last_value = None;
        self.repeats = 0;
    }
}

/// Continuous detector implementing analytical redundancy: compares the
/// reading against a model prediction and grades the residual.
#[derive(Debug, Clone)]
pub struct ModelBasedDetector {
    /// Residuals up to this magnitude are considered fully consistent.
    pub residual_tolerance: f64,
    /// Residuals at or beyond this magnitude drive validity towards zero.
    pub residual_limit: f64,
    /// The most recent model prediction (set by [`ModelBasedDetector::set_prediction`]).
    prediction: Option<f64>,
}

impl ModelBasedDetector {
    /// Creates a model-residual detector.
    ///
    /// # Panics
    /// Panics if `residual_limit <= residual_tolerance`.
    pub fn new(residual_tolerance: f64, residual_limit: f64) -> Self {
        assert!(
            residual_limit > residual_tolerance,
            "residual_limit must exceed residual_tolerance"
        );
        ModelBasedDetector { residual_tolerance, residual_limit, prediction: None }
    }

    /// Supplies the model prediction to compare the next reading against.
    pub fn set_prediction(&mut self, predicted_value: f64) {
        self.prediction = Some(predicted_value);
    }
}

impl FailureDetector for ModelBasedDetector {
    fn assess(&mut self, reading: &Measurement, _now: SimTime) -> DetectionOutcome {
        match self.prediction {
            None => DetectionOutcome::pass(DetectorClass::Continuous),
            Some(expected) => {
                let residual = (reading.value - expected).abs();
                if residual <= self.residual_tolerance {
                    DetectionOutcome::pass(DetectorClass::Continuous)
                } else if residual >= self.residual_limit {
                    DetectionOutcome::graded(Validity::INVALID)
                } else {
                    let span = self.residual_limit - self.residual_tolerance;
                    let v = 1.0 - (residual - self.residual_tolerance) / span;
                    DetectionOutcome::graded(Validity::new(v))
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "model-residual"
    }

    fn class(&self) -> DetectorClass {
        DetectorClass::Continuous
    }

    fn reset(&mut self) {
        self.prediction = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karyon_sim::SimTime;

    fn m(value: f64, ms: u64) -> Measurement {
        Measurement::exact(value, SimTime::from_millis(ms))
    }

    #[test]
    fn range_check_flags_out_of_range_and_non_finite() {
        let mut d = RangeCheckDetector::new(0.0, 100.0);
        assert!(!d.assess(&m(50.0, 0), SimTime::ZERO).is_failure());
        assert!(d.assess(&m(-1.0, 0), SimTime::ZERO).is_failure());
        assert!(d.assess(&m(101.0, 0), SimTime::ZERO).is_failure());
        assert!(d.assess(&m(f64::NAN, 0), SimTime::ZERO).is_failure());
        assert_eq!(d.name(), "range-check");
        assert_eq!(d.class(), DetectorClass::Dominant);
    }

    #[test]
    fn timeout_detects_stale_readings() {
        let mut d = TimeoutDetector::new(SimDuration::from_millis(200));
        let reading = m(1.0, 100);
        assert!(!d.assess(&reading, SimTime::from_millis(250)).is_failure());
        assert!(d.assess(&reading, SimTime::from_millis(301)).is_failure());
    }

    #[test]
    fn rate_of_change_grades_jumps() {
        let mut d = RateOfChangeDetector::new(10.0); // 10 units/s plausible
        assert_eq!(d.assess(&m(0.0, 0), SimTime::ZERO).validity, Validity::FULL);
        // +1 unit in 100 ms = 10 units/s: exactly at the limit, passes.
        assert_eq!(d.assess(&m(1.0, 100), SimTime::from_millis(100)).validity, Validity::FULL);
        // +5 units in 100 ms = 50 units/s: validity should drop to ~0.2.
        let out = d.assess(&m(6.0, 200), SimTime::from_millis(200));
        assert_eq!(out.class, DetectorClass::Continuous);
        assert!((out.validity.fraction() - 0.2).abs() < 1e-9);
        d.reset();
        assert_eq!(d.assess(&m(100.0, 300), SimTime::from_millis(300)).validity, Validity::FULL);
    }

    #[test]
    fn rate_of_change_ignores_non_positive_dt() {
        let mut d = RateOfChangeDetector::new(1.0);
        d.assess(&m(0.0, 100), SimTime::from_millis(100));
        let out = d.assess(&m(100.0, 100), SimTime::from_millis(100));
        assert_eq!(out.validity, Validity::FULL);
    }

    #[test]
    fn stuck_at_requires_consecutive_repeats() {
        let mut d = StuckAtDetector::new(1e-6, 3);
        assert!(!d.assess(&m(5.0, 0), SimTime::ZERO).is_failure());
        assert!(!d.assess(&m(5.0, 1), SimTime::ZERO).is_failure());
        assert!(!d.assess(&m(5.0, 2), SimTime::ZERO).is_failure());
        assert!(d.assess(&m(5.0, 3), SimTime::ZERO).is_failure());
        // A changing value clears the counter.
        assert!(!d.assess(&m(6.0, 4), SimTime::ZERO).is_failure());
        assert!(!d.assess(&m(6.0, 5), SimTime::ZERO).is_failure());
        d.reset();
        assert!(!d.assess(&m(6.0, 6), SimTime::ZERO).is_failure());
    }

    #[test]
    fn model_based_grades_residuals() {
        let mut d = ModelBasedDetector::new(1.0, 5.0);
        // No prediction yet: passes.
        assert_eq!(d.assess(&m(10.0, 0), SimTime::ZERO).validity, Validity::FULL);
        d.set_prediction(10.0);
        assert_eq!(d.assess(&m(10.5, 1), SimTime::ZERO).validity, Validity::FULL);
        d.set_prediction(10.0);
        let out = d.assess(&m(13.0, 2), SimTime::ZERO);
        assert!((out.validity.fraction() - 0.5).abs() < 1e-9);
        d.set_prediction(10.0);
        assert!(d.assess(&m(20.0, 3), SimTime::ZERO).validity.is_invalid());
    }

    #[test]
    #[should_panic(expected = "residual_limit")]
    fn model_based_rejects_bad_bounds() {
        let _ = ModelBasedDetector::new(5.0, 5.0);
    }

    #[test]
    fn outcome_constructors() {
        assert!(DetectionOutcome::dominant_failure().is_failure());
        assert!(!DetectionOutcome::pass(DetectorClass::Dominant).is_failure());
        let graded = DetectionOutcome::graded(Validity::new(0.0));
        // A continuous detector never *forces* invalidity by itself.
        assert!(!graded.is_failure());
    }
}

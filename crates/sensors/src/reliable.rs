//! The abstract *reliable* sensor (paper §IV-B).
//!
//! "Redundant information can be derived in three different ways": component
//! redundancy (additional sensors), analytical redundancy (a mathematical
//! model) and temporal redundancy (a series of samples).  The
//! [`ReliableSensor`] combines all three: it fuses several abstract sensors
//! (Marzullo interval fusion tolerating a configured number of faulty
//! replicas), checks the result against a Kalman model prediction and keeps a
//! short temporal window to smooth residual noise.

use karyon_sim::SimTime;

use crate::abstract_sensor::{AbstractSensor, SensorReading};
use crate::fusion::{marzullo_fuse, weighted_fuse, Interval, Kalman1D};
use crate::measurement::Measurement;
use crate::validity::Validity;

/// Configuration of a [`ReliableSensor`].
#[derive(Debug, Clone)]
pub struct ReliableSensorConfig {
    /// Maximum number of replica sensors assumed faulty at any time.
    pub max_faulty: usize,
    /// Half-width multiplier (in standard deviations) of the replica intervals.
    pub sigma: f64,
    /// Residual (against the analytical model) considered fully plausible.
    pub model_tolerance: f64,
    /// Residual at which the model check drives validity to zero.
    pub model_limit: f64,
    /// Length of the temporal-redundancy window (number of fused outputs).
    pub window: usize,
}

impl Default for ReliableSensorConfig {
    fn default() -> Self {
        ReliableSensorConfig {
            max_faulty: 1,
            sigma: 3.0,
            model_tolerance: 2.0,
            model_limit: 10.0,
            window: 4,
        }
    }
}

/// An abstract reliable sensor built from redundant abstract sensors.
pub struct ReliableSensor {
    replicas: Vec<AbstractSensor>,
    config: ReliableSensorConfig,
    model: Kalman1D,
    recent: Vec<f64>,
    outputs: u64,
    unavailable: u64,
}

impl std::fmt::Debug for ReliableSensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReliableSensor")
            .field("replicas", &self.replicas.len())
            .field("config", &self.config)
            .field("outputs", &self.outputs)
            .finish()
    }
}

impl ReliableSensor {
    /// Creates a reliable sensor from replica abstract sensors.
    ///
    /// # Panics
    /// Panics if `replicas` is empty.
    pub fn new(replicas: Vec<AbstractSensor>, config: ReliableSensorConfig) -> Self {
        assert!(!replicas.is_empty(), "ReliableSensor needs at least one replica");
        ReliableSensor {
            replicas,
            config,
            model: Kalman1D::new(1.0),
            recent: Vec::new(),
            outputs: 0,
            unavailable: 0,
        }
    }

    /// Number of replica sensors.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Mutable access to one replica (e.g. to inject faults into it).
    pub fn replica_mut(&mut self, index: usize) -> &mut AbstractSensor {
        &mut self.replicas[index]
    }

    /// Number of outputs produced so far.
    pub fn outputs(&self) -> u64 {
        self.outputs
    }

    /// Number of acquisition cycles in which no valid output could be produced.
    pub fn unavailable(&self) -> u64 {
        self.unavailable
    }

    /// Acquires all replicas against the same ground truth and produces the
    /// fused, model-checked reading.
    pub fn acquire(&mut self, ground_truth: f64, now: SimTime) -> SensorReading {
        self.outputs += 1;
        let readings: Vec<SensorReading> =
            self.replicas.iter_mut().map(|r| r.acquire(ground_truth, now)).collect();

        // Component redundancy: Marzullo fusion over the valid replicas'
        // k-sigma intervals, tolerating `max_faulty` replicas.
        let valid: Vec<&SensorReading> = readings.iter().filter(|r| !r.is_invalid()).collect();
        let intervals: Vec<Interval> = valid
            .iter()
            .map(|r| {
                // Widen intervals to at least the model tolerance so that
                // noise-free replicas still overlap.
                let mut iv = Interval::from_measurement(&r.measurement, self.config.sigma);
                if iv.width() < 2.0 * self.config.model_tolerance * 0.1 {
                    let pad = self.config.model_tolerance * 0.1;
                    iv = Interval::new(iv.lo - pad, iv.hi + pad);
                }
                iv
            })
            .collect();

        let fused_value = if intervals.is_empty() {
            None
        } else {
            let tolerated = self.config.max_faulty.min(intervals.len().saturating_sub(1));
            marzullo_fuse(&intervals, tolerated).map(|iv| iv.midpoint()).or_else(|| {
                // Fall back to validity-weighted fusion when the interval
                // intersection is empty (e.g. heavy noise).
                weighted_fuse(
                    &valid.iter().map(|r| (r.measurement, r.validity)).collect::<Vec<_>>(),
                )
                .map(|(v, _)| v)
            })
        };

        let Some(mut value) = fused_value else {
            self.unavailable += 1;
            return SensorReading {
                measurement: Measurement::new(f64::NAN, now, f64::INFINITY),
                validity: Validity::INVALID,
            };
        };

        // Analytical redundancy: compare with the model prediction.
        let now_s = now.as_secs_f64();
        let mut validity = {
            let base: f64 =
                valid.iter().map(|r| r.validity.fraction()).sum::<f64>() / valid.len() as f64;
            Validity::new(base)
        };
        if self.model.is_initialized() {
            let predicted = self.model.predict_at(now_s);
            let residual = (value - predicted).abs();
            if residual >= self.config.model_limit {
                // The fused value disagrees wildly with the model: distrust it
                // and coast on the prediction with zero validity.
                validity = Validity::INVALID;
                value = predicted;
            } else if residual > self.config.model_tolerance {
                let span = self.config.model_limit - self.config.model_tolerance;
                let factor = 1.0 - (residual - self.config.model_tolerance) / span;
                validity = validity.combine(Validity::new(factor));
            }
        }
        if !validity.is_invalid() {
            self.model.update(value, now_s, 1.0);
        }

        // Temporal redundancy: smooth over the recent window.
        self.recent.push(value);
        if self.recent.len() > self.config.window.max(1) {
            self.recent.remove(0);
        }
        let smoothed = self.recent.iter().sum::<f64>() / self.recent.len() as f64;

        if validity.is_invalid() {
            self.unavailable += 1;
        }
        SensorReading {
            measurement: Measurement::new(smoothed, now, 1.0 / valid.len().max(1) as f64),
            validity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detectors::{RangeCheckDetector, StuckAtDetector};
    use crate::faults::SensorFault;
    use crate::physical::RangeSensor;
    use karyon_sim::SimTime;

    fn replica(seed: u64) -> AbstractSensor {
        let mut s = AbstractSensor::new(
            "replica",
            Box::new(RangeSensor { noise_std: 0.3, max_range: 500.0, dropout_probability: 0.0 }),
            seed,
        );
        s.add_detector(Box::new(RangeCheckDetector::new(0.0, 500.0)));
        s.add_detector(Box::new(StuckAtDetector::new(1e-9, 5)));
        s
    }

    fn reliable(n: usize) -> ReliableSensor {
        let replicas = (0..n).map(|i| replica(100 + i as u64)).collect();
        ReliableSensor::new(replicas, ReliableSensorConfig::default())
    }

    #[test]
    fn tracks_truth_with_healthy_replicas() {
        let mut rs = reliable(3);
        assert_eq!(rs.replica_count(), 3);
        let mut worst = 0.0f64;
        for i in 0..100u64 {
            let truth = 100.0 + 0.05 * i as f64;
            let r = rs.acquire(truth, SimTime::from_millis(i * 100));
            if i > 10 {
                worst = worst.max((r.measurement.value - truth).abs());
                assert!(!r.is_invalid());
            }
        }
        assert!(worst < 2.0, "worst error {worst}");
        assert_eq!(rs.unavailable(), 0);
    }

    #[test]
    fn masks_one_faulty_replica() {
        let mut rs = reliable(3);
        rs.replica_mut(1)
            .injector_mut()
            .inject_always(SensorFault::PermanentOffset { offset: 80.0 });
        let mut worst = 0.0f64;
        for i in 0..100u64 {
            let truth = 100.0;
            let r = rs.acquire(truth, SimTime::from_millis(i * 100));
            if i > 10 && !r.is_invalid() {
                worst = worst.max((r.measurement.value - truth).abs());
            }
        }
        assert!(worst < 5.0, "offset replica not masked, worst error {worst}");
    }

    #[test]
    fn single_replica_still_works() {
        let mut rs = reliable(1);
        let r = rs.acquire(42.0, SimTime::ZERO);
        assert!((r.measurement.value - 42.0).abs() < 2.0);
        assert!(!r.is_invalid());
        assert_eq!(rs.outputs(), 1);
    }

    #[test]
    fn all_replicas_invalid_means_unavailable() {
        let mut rs = reliable(2);
        for i in 0..2 {
            rs.replica_mut(i)
                .injector_mut()
                .inject_always(SensorFault::StuckAt { stuck_value: Some(7.0) });
        }
        let mut unavailable_seen = false;
        for i in 0..30u64 {
            let r = rs.acquire(50.0 + i as f64, SimTime::from_millis(i * 100));
            if r.is_invalid() {
                unavailable_seen = true;
            }
        }
        assert!(unavailable_seen);
        assert!(rs.unavailable() > 0);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn rejects_empty_replica_set() {
        let _ = ReliableSensor::new(Vec::new(), ReliableSensorConfig::default());
    }
}

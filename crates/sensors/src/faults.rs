//! The KARYON sensor-fault classes and the deterministic fault injector.
//!
//! The project "performed a failure mode analysis for different sensors and
//! identified several fault modes that were categorized along five main
//! dimensions: delay faults, sporadic offset faults, permanent offset faults,
//! stochastic offset faults and stuck-at faults" (paper §IV-A, citing \[42\]).
//! Each of the five classes is modelled here with explicit parameters so the
//! fault-injection campaigns of EXPERIMENTS.md can sweep them individually.

use karyon_sim::{Rng, SimDuration, SimTime};

use crate::measurement::Measurement;

/// One of the five sensor-fault classes of the KARYON failure-mode analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFault {
    /// The reading is delivered late by `delay`; its timestamp reflects the
    /// (stale) acquisition instant.
    Delay {
        /// How much older the delivered reading is than a fresh one.
        delay: SimDuration,
    },
    /// With probability `probability` a reading is offset by `magnitude`
    /// (sign chosen pseudo-randomly per occurrence).
    SporadicOffset {
        /// Probability that any given reading is affected.
        probability: f64,
        /// Absolute offset applied to affected readings.
        magnitude: f64,
    },
    /// Every reading is offset by `offset` (a calibration/bias failure).
    PermanentOffset {
        /// Constant additive offset.
        offset: f64,
    },
    /// Zero-mean noise with standard deviation `std_dev` is added to every
    /// reading (degraded precision).
    StochasticOffset {
        /// Standard deviation of the additional noise.
        std_dev: f64,
    },
    /// The output freezes at the last value observed before the fault became
    /// active (or at `stuck_value` if provided).
    StuckAt {
        /// Optional explicit stuck output; `None` freezes the last good value.
        stuck_value: Option<f64>,
    },
}

impl SensorFault {
    /// A short, stable identifier used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            SensorFault::Delay { .. } => "delay",
            SensorFault::SporadicOffset { .. } => "sporadic-offset",
            SensorFault::PermanentOffset { .. } => "permanent-offset",
            SensorFault::StochasticOffset { .. } => "stochastic-offset",
            SensorFault::StuckAt { .. } => "stuck-at",
        }
    }
}

/// When a fault is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSchedule {
    /// The fault becomes active at this instant.
    pub start: SimTime,
    /// The fault stops being active at this instant (`SimTime::MAX` = forever).
    pub end: SimTime,
}

impl FaultSchedule {
    /// A schedule active for the whole simulation.
    pub fn always() -> Self {
        FaultSchedule { start: SimTime::ZERO, end: SimTime::MAX }
    }

    /// A schedule active from `start` (inclusive) to `end` (exclusive).
    pub fn window(start: SimTime, end: SimTime) -> Self {
        FaultSchedule { start, end }
    }

    /// A schedule active from `start` onwards.
    pub fn from(start: SimTime) -> Self {
        FaultSchedule { start, end: SimTime::MAX }
    }

    /// True when the fault is active at `now`.
    pub fn is_active(&self, now: SimTime) -> bool {
        now >= self.start && now < self.end
    }
}

#[derive(Debug, Clone)]
struct ScheduledFault {
    fault: SensorFault,
    schedule: FaultSchedule,
}

/// Applies scheduled [`SensorFault`]s to the output of a physical sensor.
///
/// The injector owns its own deterministic random stream so that a given seed
/// produces an identical fault pattern regardless of what the rest of the
/// simulation does.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    faults: Vec<ScheduledFault>,
    rng: Rng,
    /// Last value delivered while no stuck-at fault was active; the value a
    /// stuck-at fault freezes on.
    last_good_value: Option<f64>,
    /// Buffer of past readings used to realize delay faults.
    history: Vec<Measurement>,
    /// Maximum number of buffered past readings.
    history_limit: usize,
}

impl FaultInjector {
    /// Creates an injector with no scheduled faults.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            faults: Vec::new(),
            rng: Rng::seed_from(seed),
            last_good_value: None,
            history: Vec::new(),
            history_limit: 256,
        }
    }

    /// Schedules a fault.
    pub fn inject(&mut self, fault: SensorFault, schedule: FaultSchedule) -> &mut Self {
        self.faults.push(ScheduledFault { fault, schedule });
        self
    }

    /// Convenience: schedules a fault active for the entire simulation.
    pub fn inject_always(&mut self, fault: SensorFault) -> &mut Self {
        self.inject(fault, FaultSchedule::always())
    }

    /// Number of scheduled faults (active or not).
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// True if any fault is active at `now`.
    pub fn any_active(&self, now: SimTime) -> bool {
        self.faults.iter().any(|f| f.schedule.is_active(now))
    }

    /// The labels of the faults active at `now`.
    pub fn active_labels(&self, now: SimTime) -> Vec<&'static str> {
        self.faults.iter().filter(|f| f.schedule.is_active(now)).map(|f| f.fault.label()).collect()
    }

    /// Transforms a freshly acquired `reading` according to the faults active
    /// at `now`, returning the (possibly corrupted) reading the application
    /// actually observes.
    pub fn apply(&mut self, reading: Measurement, now: SimTime) -> Measurement {
        // Keep a short history of the *true* sensor outputs for delay faults.
        self.history.push(reading);
        if self.history.len() > self.history_limit {
            self.history.remove(0);
        }

        let mut out = reading;
        let mut stuck = false;

        let faults: Vec<SensorFault> =
            self.faults.iter().filter(|f| f.schedule.is_active(now)).map(|f| f.fault).collect();

        for fault in faults {
            match fault {
                SensorFault::Delay { delay } => {
                    let target = now - delay;
                    // Deliver the newest buffered reading acquired at or
                    // before `target`; if none exists, keep the oldest.
                    let candidate = self
                        .history
                        .iter()
                        .rev()
                        .find(|m| m.timestamp <= target)
                        .or_else(|| self.history.first())
                        .copied();
                    if let Some(old) = candidate {
                        out = Measurement {
                            value: old.value,
                            timestamp: old.timestamp,
                            variance: out.variance,
                        };
                    }
                }
                SensorFault::SporadicOffset { probability, magnitude } => {
                    if self.rng.chance(probability) {
                        let sign = if self.rng.chance(0.5) { 1.0 } else { -1.0 };
                        out.value += sign * magnitude;
                    }
                }
                SensorFault::PermanentOffset { offset } => {
                    out.value += offset;
                }
                SensorFault::StochasticOffset { std_dev } => {
                    out.value += self.rng.normal(0.0, std_dev);
                    out.variance += std_dev * std_dev;
                }
                SensorFault::StuckAt { stuck_value } => {
                    stuck = true;
                    let frozen = stuck_value.or(self.last_good_value).unwrap_or(out.value);
                    out.value = frozen;
                }
            }
        }

        if !stuck {
            self.last_good_value = Some(out.value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karyon_sim::{SimDuration, SimTime};

    fn reading(value: f64, ms: u64) -> Measurement {
        Measurement::new(value, SimTime::from_millis(ms), 0.01)
    }

    #[test]
    fn schedule_windows() {
        let s = FaultSchedule::window(SimTime::from_secs(1), SimTime::from_secs(2));
        assert!(!s.is_active(SimTime::from_millis(999)));
        assert!(s.is_active(SimTime::from_secs(1)));
        assert!(s.is_active(SimTime::from_millis(1_999)));
        assert!(!s.is_active(SimTime::from_secs(2)));
        assert!(FaultSchedule::always().is_active(SimTime::from_secs(100)));
        assert!(FaultSchedule::from(SimTime::from_secs(5)).is_active(SimTime::from_secs(9)));
    }

    #[test]
    fn no_faults_means_identity() {
        let mut inj = FaultInjector::new(1);
        let m = reading(42.0, 10);
        assert_eq!(inj.apply(m, SimTime::from_millis(10)), m);
        assert!(!inj.any_active(SimTime::from_millis(10)));
        assert_eq!(inj.fault_count(), 0);
    }

    #[test]
    fn permanent_offset_shifts_every_reading() {
        let mut inj = FaultInjector::new(2);
        inj.inject_always(SensorFault::PermanentOffset { offset: 3.0 });
        for i in 0..10 {
            let out = inj.apply(reading(10.0, i * 100), SimTime::from_millis(i * 100));
            assert_eq!(out.value, 13.0);
        }
    }

    #[test]
    fn sporadic_offset_affects_roughly_expected_fraction() {
        let mut inj = FaultInjector::new(3);
        inj.inject_always(SensorFault::SporadicOffset { probability: 0.3, magnitude: 5.0 });
        let mut affected = 0;
        let n = 5_000;
        for i in 0..n {
            let out = inj.apply(reading(0.0, i), SimTime::from_millis(i));
            if out.value != 0.0 {
                affected += 1;
                assert!((out.value.abs() - 5.0).abs() < 1e-12);
            }
        }
        let frac = affected as f64 / n as f64;
        assert!((0.25..0.35).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn stochastic_offset_increases_noise_and_variance() {
        let mut inj = FaultInjector::new(4);
        inj.inject_always(SensorFault::StochasticOffset { std_dev: 2.0 });
        let n = 20_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for i in 0..n {
            let out = inj.apply(reading(0.0, i), SimTime::from_millis(i));
            sum += out.value;
            sumsq += out.value * out.value;
            assert!(out.variance > 3.9);
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn stuck_at_freezes_last_good_value() {
        let mut inj = FaultInjector::new(5);
        inj.inject(
            SensorFault::StuckAt { stuck_value: None },
            FaultSchedule::from(SimTime::from_millis(500)),
        );
        // Before the fault, readings pass through and update the "last good" value.
        let out = inj.apply(reading(7.0, 400), SimTime::from_millis(400));
        assert_eq!(out.value, 7.0);
        // After activation, the output stays at 7 regardless of the input.
        for (i, v) in [(600u64, 8.0), (700, 9.0), (800, 100.0)] {
            let out = inj.apply(reading(v, i), SimTime::from_millis(i));
            assert_eq!(out.value, 7.0);
        }
    }

    #[test]
    fn stuck_at_explicit_value() {
        let mut inj = FaultInjector::new(6);
        inj.inject_always(SensorFault::StuckAt { stuck_value: Some(-1.0) });
        let out = inj.apply(reading(55.0, 0), SimTime::ZERO);
        assert_eq!(out.value, -1.0);
    }

    #[test]
    fn delay_fault_serves_stale_readings() {
        let mut inj = FaultInjector::new(7);
        inj.inject_always(SensorFault::Delay { delay: SimDuration::from_millis(300) });
        // Feed readings every 100 ms with value == time in ms.
        let mut last = Measurement::exact(0.0, SimTime::ZERO);
        for i in 0..10u64 {
            let t = i * 100;
            last = inj.apply(reading(t as f64, t), SimTime::from_millis(t));
        }
        // At t=900 ms a 300 ms delay should deliver the reading from t<=600 ms.
        assert_eq!(last.value, 600.0);
        assert_eq!(last.timestamp, SimTime::from_millis(600));
    }

    #[test]
    fn active_labels_reports_current_faults() {
        let mut inj = FaultInjector::new(8);
        inj.inject(
            SensorFault::PermanentOffset { offset: 1.0 },
            FaultSchedule::window(SimTime::ZERO, SimTime::from_secs(1)),
        );
        inj.inject(
            SensorFault::StuckAt { stuck_value: None },
            FaultSchedule::from(SimTime::from_secs(2)),
        );
        assert_eq!(inj.active_labels(SimTime::from_millis(500)), vec!["permanent-offset"]);
        assert!(inj.active_labels(SimTime::from_millis(1_500)).is_empty());
        assert_eq!(inj.active_labels(SimTime::from_secs(3)), vec!["stuck-at"]);
        assert_eq!(inj.fault_count(), 2);
    }

    #[test]
    fn fault_labels_are_stable() {
        assert_eq!(SensorFault::Delay { delay: SimDuration::ZERO }.label(), "delay");
        assert_eq!(
            SensorFault::SporadicOffset { probability: 0.0, magnitude: 0.0 }.label(),
            "sporadic-offset"
        );
        assert_eq!(SensorFault::PermanentOffset { offset: 0.0 }.label(), "permanent-offset");
        assert_eq!(SensorFault::StochasticOffset { std_dev: 0.0 }.label(), "stochastic-offset");
        assert_eq!(SensorFault::StuckAt { stuck_value: None }.label(), "stuck-at");
    }
}

//! The data-validity attribute.
//!
//! KARYON attaches to every disseminated sensor reading a *validity* between
//! 0 and 100 % — "an abstract estimation of the reliability of the exchanged
//! information" that can be compared "without an explicit knowledge of
//! underlying fault models and implemented fault detection strategies"
//! (paper §IV-B).

use std::fmt;
use std::ops::Mul;

/// A validity estimate in `[0, 1]` (rendered as 0–100 %).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Validity(f64);

impl Validity {
    /// Fully invalid data (0 %).
    pub const INVALID: Validity = Validity(0.0);
    /// Fully valid data (100 %).
    pub const FULL: Validity = Validity(1.0);

    /// Creates a validity from a fraction, clamped into `[0, 1]`.
    /// Non-finite inputs map to 0.
    pub fn new(fraction: f64) -> Self {
        if !fraction.is_finite() {
            return Validity(0.0);
        }
        Validity(fraction.clamp(0.0, 1.0))
    }

    /// Creates a validity from a percentage (0–100), clamped.
    pub fn from_percent(percent: f64) -> Self {
        Validity::new(percent / 100.0)
    }

    /// The validity as a fraction in `[0, 1]`.
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// The validity as a percentage in `[0, 100]`.
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// True when the validity is exactly zero (rendered invalid by a
    /// dominant detector).
    pub fn is_invalid(self) -> bool {
        self.0 == 0.0
    }

    /// True when the validity is at least `threshold` (a fraction).
    pub fn meets(self, threshold: f64) -> bool {
        self.0 >= threshold
    }

    /// Combines two independent validity estimates multiplicatively.
    ///
    /// This is how the MOSAIC fault-management unit combines continuous
    /// detectors: each detector scales down the confidence independently.
    pub fn combine(self, other: Validity) -> Validity {
        Validity(self.0 * other.0)
    }

    /// The minimum of two validities (conservative combination).
    pub fn min(self, other: Validity) -> Validity {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The maximum of two validities.
    pub fn max(self, other: Validity) -> Validity {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Default for Validity {
    fn default() -> Self {
        Validity::FULL
    }
}

impl Mul for Validity {
    type Output = Validity;
    fn mul(self, rhs: Validity) -> Validity {
        self.combine(rhs)
    }
}

impl fmt::Display for Validity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_clamps() {
        assert_eq!(Validity::new(1.5), Validity::FULL);
        assert_eq!(Validity::new(-0.5), Validity::INVALID);
        assert_eq!(Validity::new(f64::NAN), Validity::INVALID);
        assert_eq!(Validity::from_percent(50.0).fraction(), 0.5);
        assert_eq!(Validity::from_percent(250.0), Validity::FULL);
    }

    #[test]
    fn percent_round_trip() {
        let v = Validity::new(0.73);
        assert!((v.percent() - 73.0).abs() < 1e-9);
        assert_eq!(format!("{v}"), "73.0%");
    }

    #[test]
    fn combination_rules() {
        let a = Validity::new(0.8);
        let b = Validity::new(0.5);
        assert!((a.combine(b).fraction() - 0.4).abs() < 1e-12);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        assert_eq!((a * Validity::INVALID), Validity::INVALID);
        assert_eq!((a * Validity::FULL).fraction(), 0.8);
    }

    #[test]
    fn predicates() {
        assert!(Validity::INVALID.is_invalid());
        assert!(!Validity::new(0.01).is_invalid());
        assert!(Validity::new(0.7).meets(0.7));
        assert!(!Validity::new(0.69).meets(0.7));
        assert_eq!(Validity::default(), Validity::FULL);
    }
}

//! The abstract sensor: physical sensor + injected faults + failure detectors
//! ⇒ a reading carrying a data-validity attribute.
//!
//! This is the component `C`-plus-`F` construction of paper Fig. 2: the
//! nominal component may suffer specific failures; the wrapper maps them to a
//! well-defined failure semantics at the interface — here, a validity value.

use karyon_sim::{Rng, SimDuration, SimTime};

use crate::detectors::{DetectionOutcome, FailureDetector};
use crate::faults::FaultInjector;
use crate::measurement::Measurement;
use crate::physical::PhysicalSensor;
use crate::validity::Validity;

/// A sensor reading as delivered at the abstract-sensor interface:
/// the (possibly corrupted) measurement plus its validity estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorReading {
    /// The delivered measurement.
    pub measurement: Measurement,
    /// The data-validity attribute (0–100 %).
    pub validity: Validity,
}

impl SensorReading {
    /// True when a dominant detector rendered the reading invalid.
    pub fn is_invalid(&self) -> bool {
        self.validity.is_invalid()
    }
}

/// An abstract sensor in the sense of KARYON §IV: wraps a physical sensor,
/// a fault injector (the "specific failures" of the nominal component) and a
/// set of failure detectors whose combined verdict is the validity attribute.
pub struct AbstractSensor {
    name: String,
    physical: Box<dyn PhysicalSensor + Send>,
    injector: FaultInjector,
    detectors: Vec<Box<dyn FailureDetector + Send>>,
    rng: Rng,
    last_reading: Option<SensorReading>,
}

impl std::fmt::Debug for AbstractSensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AbstractSensor")
            .field("name", &self.name)
            .field("detectors", &self.detectors.len())
            .field("faults", &self.injector.fault_count())
            .finish()
    }
}

impl AbstractSensor {
    /// Creates an abstract sensor around a physical sensor model.
    pub fn new(name: &str, physical: Box<dyn PhysicalSensor + Send>, seed: u64) -> Self {
        AbstractSensor {
            name: name.to_string(),
            physical,
            injector: FaultInjector::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1)),
            detectors: Vec::new(),
            rng: Rng::seed_from(seed),
            last_reading: None,
        }
    }

    /// The sensor's name (used in data sheets and experiment tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a failure detector to the sensor's detection chain.
    pub fn add_detector(&mut self, detector: Box<dyn FailureDetector + Send>) -> &mut Self {
        self.detectors.push(detector);
        self
    }

    /// Mutable access to the fault injector (to schedule faults).
    pub fn injector_mut(&mut self) -> &mut FaultInjector {
        &mut self.injector
    }

    /// Shared access to the fault injector.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Number of detectors in the chain.
    pub fn detector_count(&self) -> usize {
        self.detectors.len()
    }

    /// The most recent reading delivered, if any.
    pub fn last_reading(&self) -> Option<SensorReading> {
        self.last_reading
    }

    /// Acquires one reading: samples the physical sensor against the ground
    /// truth, applies any active faults, runs the detector chain and combines
    /// the outcomes into a validity value exactly as the MOSAIC fault
    /// management unit does: any dominant failure ⇒ validity 0, otherwise the
    /// product of the continuous validity factors.
    pub fn acquire(&mut self, ground_truth: f64, now: SimTime) -> SensorReading {
        let raw = self.physical.sample(ground_truth, now, &mut self.rng);
        let corrupted = self.injector.apply(raw, now);
        let outcomes: Vec<DetectionOutcome> =
            self.detectors.iter_mut().map(|d| d.assess(&corrupted, now)).collect();
        let validity = combine_outcomes(&outcomes);
        let reading = SensorReading { measurement: corrupted, validity };
        self.last_reading = Some(reading);
        reading
    }

    /// Resets all detectors (e.g. between experiment repetitions).
    pub fn reset_detectors(&mut self) {
        for d in &mut self.detectors {
            d.reset();
        }
        self.last_reading = None;
    }
}

/// Builds the standard KARYON monitored range sensor: a [`RangeSensor`]
/// wrapped with the full failure-detector stack of paper §IV (range check
/// over `[0, max_range]`, optional freshness timeout, rate-of-change limit,
/// stuck-at detection).
///
/// This is the sensor the validity and reliable-sensor experiments (e02/e03)
/// instantiate; exposing it here makes its thresholds — previously
/// hard-coded in the bench harnesses — ordinary constructor parameters that
/// campaign grids can sweep.
///
/// [`RangeSensor`]: crate::physical::RangeSensor
pub fn monitored_range_sensor(
    name: &str,
    noise_std: f64,
    max_range: f64,
    timeout: Option<SimDuration>,
    max_rate: f64,
    seed: u64,
) -> AbstractSensor {
    use crate::detectors::{
        RangeCheckDetector, RateOfChangeDetector, StuckAtDetector, TimeoutDetector,
    };
    let mut s = AbstractSensor::new(
        name,
        Box::new(crate::physical::RangeSensor { noise_std, max_range, dropout_probability: 0.0 }),
        seed,
    );
    s.add_detector(Box::new(RangeCheckDetector::new(0.0, max_range)));
    if let Some(max_age) = timeout {
        s.add_detector(Box::new(TimeoutDetector::new(max_age)));
    }
    s.add_detector(Box::new(RateOfChangeDetector::new(max_rate)));
    s.add_detector(Box::new(StuckAtDetector::new(1e-6, 8)));
    s
}

/// Combines detector outcomes into a single validity:
/// dominant failure ⇒ 0, otherwise the product of all graded factors.
pub fn combine_outcomes(outcomes: &[DetectionOutcome]) -> Validity {
    let mut validity = Validity::FULL;
    for outcome in outcomes {
        if outcome.is_failure() {
            return Validity::INVALID;
        }
        validity = validity.combine(outcome.validity);
    }
    validity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detectors::{
        DetectorClass, RangeCheckDetector, RateOfChangeDetector, StuckAtDetector, TimeoutDetector,
    };
    use crate::faults::{FaultSchedule, SensorFault};
    use crate::physical::RangeSensor;
    use karyon_sim::{SimDuration, SimTime};

    fn make_sensor(seed: u64) -> AbstractSensor {
        let mut s = AbstractSensor::new(
            "front-range",
            Box::new(RangeSensor { noise_std: 0.2, max_range: 200.0, dropout_probability: 0.0 }),
            seed,
        );
        s.add_detector(Box::new(RangeCheckDetector::new(0.0, 200.0)));
        s.add_detector(Box::new(TimeoutDetector::new(SimDuration::from_millis(500))));
        s.add_detector(Box::new(RateOfChangeDetector::new(50.0)));
        s.add_detector(Box::new(StuckAtDetector::new(1e-9, 5)));
        s
    }

    #[test]
    fn healthy_sensor_has_high_validity() {
        let mut s = make_sensor(1);
        assert_eq!(s.detector_count(), 4);
        assert_eq!(s.name(), "front-range");
        for i in 0..50u64 {
            let t = SimTime::from_millis(i * 100);
            let r = s.acquire(50.0 + i as f64 * 0.1, t);
            assert!(r.validity.fraction() > 0.9, "validity {} at step {i}", r.validity);
            assert!(!r.is_invalid());
        }
        assert!(s.last_reading().is_some());
    }

    #[test]
    fn stuck_at_fault_is_eventually_invalidated() {
        let mut s = make_sensor(2);
        s.injector_mut().inject(
            SensorFault::StuckAt { stuck_value: None },
            FaultSchedule::from(SimTime::from_secs(1)),
        );
        let mut invalid_seen = false;
        for i in 0..100u64 {
            let t = SimTime::from_millis(i * 100);
            // Ground truth moves so a healthy sensor would never repeat exactly.
            let r = s.acquire(50.0 + i as f64, t);
            if t >= SimTime::from_secs(2) && r.is_invalid() {
                invalid_seen = true;
            }
        }
        assert!(invalid_seen, "stuck-at fault was never detected");
    }

    #[test]
    fn delay_fault_trips_timeout_detector() {
        let mut s = make_sensor(3);
        s.injector_mut().inject_always(SensorFault::Delay { delay: SimDuration::from_secs(2) });
        // Prime history with a few readings, then expect invalidity because the
        // delivered readings are older than the 500 ms freshness bound.
        let mut last = None;
        for i in 0..30u64 {
            let t = SimTime::from_millis(i * 200);
            last = Some(s.acquire(10.0, t));
        }
        assert!(last.unwrap().is_invalid());
    }

    #[test]
    fn sporadic_offsets_reduce_validity_without_always_invalidating() {
        let mut s = make_sensor(4);
        s.injector_mut()
            .inject_always(SensorFault::SporadicOffset { probability: 0.2, magnitude: 40.0 });
        let mut degraded = 0;
        let mut total = 0;
        for i in 0..200u64 {
            let t = SimTime::from_millis(i * 100);
            let r = s.acquire(100.0, t);
            total += 1;
            if r.validity.fraction() < 0.9 {
                degraded += 1;
            }
        }
        assert!(degraded > 10, "expected some degraded readings, got {degraded}/{total}");
        assert!(degraded < total, "not every reading should be degraded");
    }

    #[test]
    fn combine_outcomes_rules() {
        use crate::detectors::DetectionOutcome;
        let pass = DetectionOutcome::pass(DetectorClass::Dominant);
        let graded = DetectionOutcome::graded(Validity::new(0.5));
        let fail = DetectionOutcome::dominant_failure();
        assert_eq!(combine_outcomes(&[]), Validity::FULL);
        assert_eq!(combine_outcomes(&[pass, pass]), Validity::FULL);
        assert!((combine_outcomes(&[pass, graded, graded]).fraction() - 0.25).abs() < 1e-12);
        assert_eq!(combine_outcomes(&[pass, graded, fail]), Validity::INVALID);
    }

    #[test]
    fn reset_detectors_clears_state() {
        let mut s = make_sensor(5);
        s.acquire(10.0, SimTime::ZERO);
        assert!(s.last_reading().is_some());
        s.reset_detectors();
        assert!(s.last_reading().is_none());
    }
}

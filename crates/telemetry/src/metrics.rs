//! The unified metrics registry.
//!
//! Everything the stack measures about *its own execution* — chunk wall-clock
//! latency, per-worker busy time, checkpoint-write latency, bus delivery
//! latency — flows into one [`MetricsRegistry`], with one snapshot format
//! ([`MetricsRegistry::to_json`]) and one merge operation
//! ([`MetricsRegistry::merge`]).  Three instrument kinds cover the stack's
//! needs:
//!
//! * **counters** — monotonically increasing `u64`s (runs executed, chunks
//!   merged, events dropped);
//! * **gauges** — last-written `f64`s (worker count, window size);
//! * **timers** — [`BucketHistogram`]-backed distributions with P50/P95/P99
//!   queries, mergeable across workers and processes because two histograms
//!   with the same bucket configuration add exactly.
//!
//! These numbers are *wall-clock* observations and therefore live strictly
//! outside the deterministic campaign report: a report is bit-identical with
//! or without a registry attached, while the registry itself varies run to
//! run.  (Deterministic per-run observations belong in the
//! [`trace`](crate::trace) layer instead.)

use std::collections::BTreeMap;

use karyon_sim::BucketHistogram;

/// Default timer range: latencies in milliseconds from 0 to 10 s over 256
/// buckets (~39 ms resolution at the top, sub-bucket exact min/max/mean).
/// Callers with tighter ranges configure their timers explicitly via
/// [`MetricsRegistry::configure_timer`].
const DEFAULT_TIMER_RANGE: (f64, f64, usize) = (0.0, 10_000.0, 256);

/// A read-only summary of one timer, for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimerSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Exact arithmetic mean.
    pub mean: f64,
    /// Exact minimum sample.
    pub min: f64,
    /// Exact maximum sample.
    pub max: f64,
    /// Median, accurate to one bucket width.
    pub p50: f64,
    /// 95th percentile, accurate to one bucket width.
    pub p95: f64,
    /// 99th percentile, accurate to one bucket width.
    pub p99: f64,
}

/// A named collection of counters, gauges and timers with a single
/// snapshot/merge format.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    timers: BTreeMap<String, BucketHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.timers.is_empty()
    }

    /// Increments the named counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to the named counter (created at zero on first use).
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Current value of the named counter (zero when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of the named gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Creates (or returns) the named timer with an explicit bucket
    /// configuration.  Configure a timer before its first
    /// [`record_timer`](MetricsRegistry::record_timer) when the default
    /// 0–10 000 ms range does not fit (e.g. window-occupancy counts).
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`BucketHistogram::new`]).
    pub fn configure_timer(
        &mut self,
        name: &str,
        lo: f64,
        hi: f64,
        buckets: usize,
    ) -> &mut BucketHistogram {
        self.timers.entry(name.to_string()).or_insert_with(|| BucketHistogram::new(lo, hi, buckets))
    }

    /// Records one sample into the named timer, creating it with the default
    /// 0–10 000 ms range on first use.
    pub fn record_timer(&mut self, name: &str, value: f64) {
        let (lo, hi, buckets) = DEFAULT_TIMER_RANGE;
        self.timers
            .entry(name.to_string())
            .or_insert_with(|| BucketHistogram::new(lo, hi, buckets))
            .record(value);
    }

    /// Merges an externally built histogram into the named timer.  A timer
    /// that does not exist yet adopts the histogram's configuration; one that
    /// does must share it (see [`BucketHistogram::merge`]).
    ///
    /// This is how subsystem-owned histograms — the bus's per-subscription
    /// latency distributions, a worker's chunk timer — flow into the unified
    /// snapshot without re-recording every sample.
    pub fn merge_timer(&mut self, name: &str, histogram: &BucketHistogram) {
        match self.timers.get_mut(name) {
            Some(existing) => existing.merge(histogram),
            None => {
                self.timers.insert(name.to_string(), histogram.clone());
            }
        }
    }

    /// The named timer's backing histogram, if it exists.
    pub fn timer(&self, name: &str) -> Option<&BucketHistogram> {
        self.timers.get(name)
    }

    /// A percentile summary of the named timer, if it exists.
    pub fn timer_summary(&self, name: &str) -> Option<TimerSummary> {
        self.timers.get(name).map(|h| TimerSummary {
            count: h.count(),
            mean: h.mean(),
            min: h.min(),
            max: h.max(),
            p50: h.p50(),
            p95: h.p95(),
            p99: h.p99(),
        })
    }

    /// Iterates over counter `(name, value)` pairs in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over gauge `(name, value)` pairs in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over timer names in name order.
    pub fn timer_names(&self) -> impl Iterator<Item = &str> {
        self.timers.keys().map(String::as_str)
    }

    /// Merges another registry into this one: counters add, gauges take the
    /// other's value (last writer wins), timers merge bucket-exactly.
    ///
    /// # Panics
    /// Panics if a shared timer name has mismatched bucket configurations.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for (name, histogram) in &other.timers {
            self.merge_timer(name, histogram);
        }
    }

    /// Serializes the registry as one deterministic JSON object:
    ///
    /// ```text
    /// {"counters":{"campaign.runs":1200},
    ///  "gauges":{"campaign.workers":4.0},
    ///  "timers":{"campaign.chunk_ms":{"count":38,"mean":1.8,...,"p99":4.2}}}
    /// ```
    ///
    /// Maps iterate in name order and floats use shortest-round-trip
    /// formatting, so equal registries serialize byte-identically.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name);
            out.push_str(&value.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name);
            push_f64(&mut out, *value);
        }
        out.push_str("},\"timers\":{");
        for (i, (name, histogram)) in self.timers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name);
            out.push_str(&format!("{{\"count\":{}", histogram.count()));
            for (field, value) in [
                ("mean", histogram.mean()),
                ("min", histogram.min()),
                ("max", histogram.max()),
                ("p50", histogram.p50()),
                ("p95", histogram.p95()),
                ("p99", histogram.p99()),
            ] {
                out.push(',');
                push_key(&mut out, field);
                push_f64(&mut out, value);
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

fn push_key(out: &mut String, key: &str) {
    out.push('"');
    for c in key.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push_str("\":");
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_timers_round_trip() {
        let mut m = MetricsRegistry::new();
        assert!(m.is_empty());
        m.inc("runs");
        m.add("runs", 9);
        m.set_gauge("workers", 4.0);
        m.set_gauge("workers", 8.0);
        for i in 0..100 {
            m.record_timer("chunk_ms", i as f64);
        }
        assert_eq!(m.counter("runs"), 10);
        assert_eq!(m.counter("never"), 0);
        assert_eq!(m.gauge("workers"), Some(8.0));
        assert_eq!(m.gauge("never"), None);
        let summary = m.timer_summary("chunk_ms").unwrap();
        assert_eq!(summary.count, 100);
        assert_eq!(summary.min, 0.0);
        assert_eq!(summary.max, 99.0);
        assert!((summary.mean - 49.5).abs() < 1e-9);
        assert!(m.timer_summary("never").is_none());
        assert!(!m.is_empty());
    }

    #[test]
    fn configure_timer_controls_resolution() {
        let mut m = MetricsRegistry::new();
        // Window occupancy is a small-integer distribution: 0..=16.
        m.configure_timer("gate.occupancy", 0.0, 16.0, 16);
        for v in [1.0, 2.0, 2.0, 3.0, 15.0] {
            m.record_timer("gate.occupancy", v);
        }
        let h = m.timer("gate.occupancy").unwrap();
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 15.0);
        // p50 lands within one bucket (width 1) of the exact median.
        assert!((h.p50() - 2.0).abs() <= 1.0);
    }

    #[test]
    fn merge_adds_counters_overwrites_gauges_merges_timers() {
        let mut a = MetricsRegistry::new();
        a.add("runs", 5);
        a.set_gauge("workers", 1.0);
        a.record_timer("t", 1.0);
        let mut b = MetricsRegistry::new();
        b.add("runs", 7);
        b.add("chunks", 2);
        b.set_gauge("workers", 4.0);
        b.record_timer("t", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("runs"), 12);
        assert_eq!(a.counter("chunks"), 2);
        assert_eq!(a.gauge("workers"), Some(4.0));
        let t = a.timer_summary("t").unwrap();
        assert_eq!(t.count, 2);
        assert_eq!(t.min, 1.0);
        assert_eq!(t.max, 3.0);
    }

    #[test]
    fn merge_timer_adopts_foreign_configuration() {
        let mut external = BucketHistogram::new(0.0, 60.0, 32);
        for v in [1.0, 5.0, 30.0] {
            external.record(v);
        }
        let mut m = MetricsRegistry::new();
        m.merge_timer("bus.latency_ms", &external);
        m.merge_timer("bus.latency_ms", &external);
        assert_eq!(m.timer("bus.latency_ms").unwrap().count(), 6);
    }

    #[test]
    fn to_json_is_deterministic_and_ordered() {
        let mut m = MetricsRegistry::new();
        m.add("z.count", 3);
        m.add("a.count", 1);
        m.set_gauge("g", 2.5);
        m.record_timer("t", 1.5);
        let json = m.to_json();
        assert_eq!(json, m.clone().to_json());
        let a = json.find("\"a.count\":1").unwrap();
        let z = json.find("\"z.count\":3").unwrap();
        assert!(a < z, "counters are name-ordered");
        assert!(json.contains("\"gauges\":{\"g\":2.5}"));
        assert!(json.contains("\"timers\":{\"t\":{\"count\":1,\"mean\":1.5"));
        assert_eq!(
            MetricsRegistry::new().to_json(),
            "{\"counters\":{},\"gauges\":{},\"timers\":{}}"
        );
    }

    #[test]
    fn equal_merged_registries_serialize_identically() {
        // Two workers recording disjoint halves merge to the same snapshot
        // regardless of merge order — the unified-format guarantee.
        let mut w1 = MetricsRegistry::new();
        let mut w2 = MetricsRegistry::new();
        for i in 0..50 {
            w1.record_timer("chunk_ms", i as f64);
            w2.record_timer("chunk_ms", (i + 50) as f64);
            w1.inc("runs");
            w2.inc("runs");
        }
        let mut ab = MetricsRegistry::new();
        ab.merge(&w1);
        ab.merge(&w2);
        let mut ba = MetricsRegistry::new();
        ba.merge(&w2);
        ba.merge(&w1);
        assert_eq!(ab.to_json(), ba.to_json());
    }
}

//! Deterministic, virtual-time tracing.
//!
//! A trace here is **part of the deterministic output of a run**, not a
//! wall-clock log: every record carries simulated time
//! ([`SimTime`]) and attributes derived from the model,
//! so the trace of run *k* is a pure function of that run's canonical
//! coordinates.  That is the property that lets campaign tooling assert
//! byte-identical trace files for 1 and N workers, and lets resumed
//! campaigns append to a trace file without seams.
//!
//! The collection mechanism is a thread-local scope: the campaign runner (or
//! a test) wraps a run in [`collect`], and anything inside — the run
//! function, an [`EngineTracer`] attached via [`observe_engine`], explicit
//! [`event`]/[`span`] calls — lands in that scope's buffer.  Run functions
//! therefore need **no signature changes** to become traceable, and when no
//! scope is active every emit call is a cheap thread-local check followed by
//! an immediate return.

use std::cell::RefCell;
use std::fmt;
use std::io::{self, Write};

use karyon_sim::{Engine, EngineObserver, SimDuration, SimTime};

/// Canonical identity of one campaign run, attached to every emitted trace
/// record by the [`TraceSink`].
///
/// These are the same coordinates the campaign layer derives seeds from, so
/// a trace line can be joined against report rows, JSONL run streams and
/// checkpoint manifests without any session-local identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunCoords {
    /// Global run index in the canonical work list.
    pub run_index: u64,
    /// Index of the run's parameter point in the flattened point list.
    pub point: u64,
    /// Monte-Carlo replication index within the point.
    pub replication: u64,
    /// The derived per-run RNG seed.
    pub seed: u64,
}

/// An attribute value attached to a trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// An unsigned integer attribute.
    U64(u64),
    /// A signed integer attribute.
    I64(i64),
    /// A floating-point attribute.
    F64(f64),
    /// A text attribute (e.g. an event's debug label).
    Text(String),
}

/// A point-in-virtual-time occurrence (a causality clamp, a stop request, a
/// queue-depth sample).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Record name, dot-namespaced (e.g. `engine.clamp`).
    pub name: String,
    /// Simulated time of the occurrence.
    pub time: SimTime,
    /// Attributes, in emission order.
    pub attrs: Vec<(String, AttrValue)>,
}

/// An interval in virtual time (e.g. the whole engine run of a scenario).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Record name, dot-namespaced (e.g. `engine.run`).
    pub name: String,
    /// Simulated start of the interval.
    pub start: SimTime,
    /// Simulated end of the interval.
    pub end: SimTime,
    /// Attributes, in emission order.
    pub attrs: Vec<(String, AttrValue)>,
}

/// One record of a run's trace: an [`EventRecord`] or a [`SpanRecord`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A point-in-time occurrence.
    Event(EventRecord),
    /// A virtual-time interval.
    Span(SpanRecord),
}

impl TraceRecord {
    /// The record's name.
    pub fn name(&self) -> &str {
        match self {
            TraceRecord::Event(e) => &e.name,
            TraceRecord::Span(s) => &s.name,
        }
    }

    /// The record's anchor time (an event's time, a span's start).
    pub fn time(&self) -> SimTime {
        match self {
            TraceRecord::Event(e) => e.time,
            TraceRecord::Span(s) => s.start,
        }
    }

    /// The record's attributes.
    pub fn attrs(&self) -> &[(String, AttrValue)] {
        match self {
            TraceRecord::Event(e) => &e.attrs,
            TraceRecord::Span(s) => &s.attrs,
        }
    }
}

/// A consumer of per-run trace records.
///
/// The campaign runner hands each run's records over **in canonical run
/// order** (exactly as the run-sink layer streams run records), so a sink
/// that simply appends — like [`JsonlTraceWriter`] — produces identical
/// output for any worker count.
pub trait TraceSink {
    /// Receives the complete, ordered trace of one run.
    fn on_run_records(&mut self, coords: &RunCoords, records: &[TraceRecord]);

    /// Pushes buffered output to the backing store.  Called by the
    /// checkpointing runner before manifest writes, mirroring the run-sink
    /// flush contract.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A [`TraceSink`] that discards everything (the default when tracing is
/// off).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTraceSink;

impl TraceSink for NoopTraceSink {
    fn on_run_records(&mut self, _coords: &RunCoords, _records: &[TraceRecord]) {}
}

// ---------------------------------------------------------------------------
// Thread-local collection scope
// ---------------------------------------------------------------------------

thread_local! {
    /// The active collection buffer.  `None` means tracing is off on this
    /// thread and every emit call returns after one check.
    static SCOPE: RefCell<Option<Vec<TraceRecord>>> = const { RefCell::new(None) };
}

/// Restores the previous scope on drop, so a panicking run (the campaign
/// runner catches run panics) cannot leak an active scope into later runs on
/// the same worker thread.
struct ScopeGuard {
    prev: Option<Option<Vec<TraceRecord>>>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            SCOPE.with(|s| *s.borrow_mut() = prev);
        }
    }
}

/// True when a [`collect`] scope is active on this thread.
pub fn active() -> bool {
    SCOPE.with(|s| s.borrow().is_some())
}

/// Runs `f` with trace collection enabled on this thread and returns its
/// result together with every record emitted inside.
///
/// Scopes nest: an inner `collect` captures its own records and restores the
/// outer scope afterwards.  If `f` panics, the previous scope is restored
/// and the partial records are discarded.
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, Vec<TraceRecord>) {
    let prev = SCOPE.with(|s| s.borrow_mut().replace(Vec::new()));
    let guard = ScopeGuard { prev: Some(prev) };
    let result = f();
    let records = SCOPE.with(|s| s.borrow_mut().take()).unwrap_or_default();
    drop(guard);
    (result, records)
}

/// Emits an [`EventRecord`] into the active scope; a no-op when no scope is
/// active.
pub fn event(name: &str, time: SimTime, attrs: &[(&str, AttrValue)]) {
    SCOPE.with(|s| {
        if let Some(buf) = s.borrow_mut().as_mut() {
            buf.push(TraceRecord::Event(EventRecord {
                name: name.to_string(),
                time,
                attrs: attrs.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect(),
            }));
        }
    });
}

/// Emits a [`SpanRecord`] into the active scope; a no-op when no scope is
/// active.
pub fn span(name: &str, start: SimTime, end: SimTime, attrs: &[(&str, AttrValue)]) {
    SCOPE.with(|s| {
        if let Some(buf) = s.borrow_mut().as_mut() {
            buf.push(TraceRecord::Span(SpanRecord {
                name: name.to_string(),
                start,
                end,
                attrs: attrs.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect(),
            }));
        }
    });
}

// ---------------------------------------------------------------------------
// Engine observation
// ---------------------------------------------------------------------------

/// Longest debug label recorded per clamp; longer labels are cut at a char
/// boundary and marked with an ellipsis.
const LABEL_MAX: usize = 64;

fn debug_label<E: fmt::Debug>(ev: &E) -> String {
    let mut label = format!("{ev:?}");
    if label.len() > LABEL_MAX {
        let mut cut = LABEL_MAX;
        while !label.is_char_boundary(cut) {
            cut -= 1;
        }
        label.truncate(cut);
        label.push('…');
    }
    label
}

/// An [`EngineObserver`] that forwards engine transitions into the active
/// trace scope.
///
/// Emitted records (all in virtual time, all deterministic):
/// * `engine.clamp` — one per causality clamp, with the requested (past)
///   time and the clamped event's debug label, so a non-zero
///   `clamped_schedules` count is diagnosable down to the offending event;
/// * `engine.depth` — a queue-depth sample every `depth_interval` pops
///   (pop counts are deterministic, so the sample points are too);
/// * `engine.train` — one per periodic-train registration, with the
///   (post-clamp) start, period and payload label — one record per train,
///   not per tick;
/// * `engine.stop` — a handler's stop request taking effect.
#[derive(Debug, Clone)]
pub struct EngineTracer {
    pops: u64,
    depth_interval: u64,
}

impl EngineTracer {
    /// Creates a tracer with the default queue-depth sampling interval (one
    /// sample every 64 pops).
    pub fn new() -> Self {
        EngineTracer::with_depth_interval(64)
    }

    /// Creates a tracer sampling queue depth every `interval` pops.
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn with_depth_interval(interval: u64) -> Self {
        assert!(interval > 0, "EngineTracer depth interval must be non-zero");
        EngineTracer { pops: 0, depth_interval: interval }
    }
}

impl Default for EngineTracer {
    fn default() -> Self {
        EngineTracer::new()
    }
}

impl<E: fmt::Debug> EngineObserver<E> for EngineTracer {
    fn on_clamp(&mut self, now: SimTime, requested: SimTime, ev: &E) {
        event(
            "engine.clamp",
            now,
            &[
                ("requested_us", AttrValue::U64(requested.as_micros())),
                ("label", AttrValue::Text(debug_label(ev))),
            ],
        );
    }

    fn on_periodic(&mut self, now: SimTime, start: SimTime, period: SimDuration, ev: &E) {
        let _ = now;
        event(
            "engine.train",
            start,
            &[
                ("period_us", AttrValue::U64(period.as_micros())),
                ("label", AttrValue::Text(debug_label(ev))),
            ],
        );
    }

    fn on_pop(&mut self, time: SimTime, _ev: &E, depth: usize) {
        self.pops += 1;
        if self.pops % self.depth_interval == 0 {
            event(
                "engine.depth",
                time,
                &[("pops", AttrValue::U64(self.pops)), ("depth", AttrValue::U64(depth as u64))],
            );
        }
    }

    fn on_stop(&mut self, now: SimTime) {
        event("engine.stop", now, &[]);
    }
}

/// Attaches an [`EngineTracer`] to `engine` — but only when a [`collect`]
/// scope is active on this thread.
///
/// This is the one-line hook for scenario run functions: untraced runs skip
/// the observer entirely (the engine keeps its zero-overhead `None` path),
/// traced runs get clamp attribution, queue-depth samples and stop events
/// for free.
pub fn observe_engine<S, E: fmt::Debug + 'static>(engine: &mut Engine<S, E>) {
    if active() {
        engine.set_observer(Box::new(EngineTracer::new()));
    }
}

// ---------------------------------------------------------------------------
// JSONL emission
// ---------------------------------------------------------------------------

/// Escapes `s` for inclusion in a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as JSON: shortest round-trip decimal for finite values,
/// `null` for non-finite ones (mirroring the run-sink convention).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn push_attrs(out: &mut String, attrs: &[(String, AttrValue)]) {
    out.push_str(",\"attrs\":{");
    for (i, (key, value)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, key);
        out.push_str("\":");
        match value {
            AttrValue::U64(v) => out.push_str(&v.to_string()),
            AttrValue::I64(v) => out.push_str(&v.to_string()),
            AttrValue::F64(v) => push_f64(out, *v),
            AttrValue::Text(v) => {
                out.push('"');
                escape_into(out, v);
                out.push('"');
            }
        }
    }
    out.push('}');
}

/// A [`TraceSink`] writing one JSON object per record (JSON Lines).
///
/// Every line repeats the run's canonical coordinates, so a trace file is
/// self-describing and can be filtered/joined line-by-line:
///
/// ```text
/// {"run":3,"point":1,"replication":1,"seed":9,"kind":"event","name":"engine.clamp","t_us":5000,"attrs":{"requested_us":0,"label":"Ping(1)"}}
/// {"run":3,"point":1,"replication":1,"seed":9,"kind":"span","name":"engine.run","start_us":0,"end_us":5000,"attrs":{"processed":7}}
/// ```
///
/// I/O errors are sticky, mirroring the run-sink writer: the first error
/// suppresses all later output and is surfaced by [`flush`](TraceSink::flush)
/// and [`into_inner`](JsonlTraceWriter::into_inner), so a failed stream can
/// never silently end up with gaps.
#[derive(Debug)]
pub struct JsonlTraceWriter<W: Write> {
    out: W,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlTraceWriter<W> {
    /// Creates a writer over any `io::Write` (a file, a buffer, a pipe).
    pub fn new(out: W) -> Self {
        JsonlTraceWriter { out, written: 0, error: None }
    }

    /// Number of lines written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer, or the first deferred I/O
    /// error.
    pub fn into_inner(mut self) -> io::Result<W> {
        if let Some(error) = self.error {
            return Err(error);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TraceSink for JsonlTraceWriter<W> {
    fn on_run_records(&mut self, coords: &RunCoords, records: &[TraceRecord]) {
        if self.error.is_some() {
            return;
        }
        let mut line = String::with_capacity(160);
        for record in records {
            line.clear();
            line.push_str(&format!(
                "{{\"run\":{},\"point\":{},\"replication\":{},\"seed\":{}",
                coords.run_index, coords.point, coords.replication, coords.seed
            ));
            match record {
                TraceRecord::Event(e) => {
                    line.push_str(",\"kind\":\"event\",\"name\":\"");
                    escape_into(&mut line, &e.name);
                    line.push_str(&format!("\",\"t_us\":{}", e.time.as_micros()));
                    push_attrs(&mut line, &e.attrs);
                }
                TraceRecord::Span(s) => {
                    line.push_str(",\"kind\":\"span\",\"name\":\"");
                    escape_into(&mut line, &s.name);
                    line.push_str(&format!(
                        "\",\"start_us\":{},\"end_us\":{}",
                        s.start.as_micros(),
                        s.end.as_micros()
                    ));
                    push_attrs(&mut line, &s.attrs);
                }
            }
            line.push('}');
            if let Err(error) = writeln!(self.out, "{line}") {
                self.error = Some(error);
                return;
            }
            self.written += 1;
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(error) = &self.error {
            return Err(io::Error::new(error.kind(), error.to_string()));
        }
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_outside_scope_is_dropped() {
        event("orphan", SimTime::ZERO, &[]);
        span("orphan", SimTime::ZERO, SimTime::ZERO, &[]);
        assert!(!active());
        let (_, records) = collect(|| {
            assert!(active());
            event("kept", SimTime::from_millis(1), &[]);
        });
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name(), "kept");
        assert!(!active(), "scope must be restored");
    }

    #[test]
    fn scopes_nest_and_survive_panics() {
        let (_, outer) = collect(|| {
            event("outer.before", SimTime::ZERO, &[]);
            let (_, inner) = collect(|| event("inner", SimTime::ZERO, &[]));
            assert_eq!(inner.len(), 1);
            let panicked = std::panic::catch_unwind(|| {
                collect(|| {
                    event("doomed", SimTime::ZERO, &[]);
                    panic!("boom");
                })
            });
            assert!(panicked.is_err());
            assert!(active(), "outer scope restored after inner panic");
            event("outer.after", SimTime::ZERO, &[]);
        });
        let names: Vec<&str> = outer.iter().map(TraceRecord::name).collect();
        assert_eq!(names, ["outer.before", "outer.after"]);
    }

    #[test]
    fn engine_tracer_attributes_clamps_with_labels() {
        // The u32 is only ever read through the Debug label the tracer
        // captures, which dead-code analysis deliberately ignores.
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Ev {
            Tick,
            Late(u32),
        }
        let (_, records) = collect(|| {
            let mut engine: Engine<u32, Ev> = Engine::new(0);
            observe_engine(&mut engine);
            engine.schedule_at(SimTime::from_millis(10), Ev::Tick);
            engine.run(|n, ctx, _| {
                *n += 1;
                if *n == 1 {
                    ctx.schedule_at(SimTime::from_millis(2), Ev::Late(7));
                }
            });
        });
        let clamp = records
            .iter()
            .find(|r| r.name() == "engine.clamp")
            .expect("the past-time schedule must produce a clamp record");
        assert_eq!(clamp.time(), SimTime::from_millis(10));
        let label = clamp.attrs().iter().find(|(k, _)| k == "label").unwrap();
        assert_eq!(label.1, AttrValue::Text("Late(7)".to_string()));
        let requested = clamp.attrs().iter().find(|(k, _)| k == "requested_us").unwrap();
        assert_eq!(requested.1, AttrValue::U64(2_000));
    }

    #[test]
    fn engine_tracer_samples_depth_and_records_stop() {
        let (_, records) = collect(|| {
            let mut engine: Engine<u32, u32> = Engine::new(0);
            engine.set_observer(Box::new(EngineTracer::with_depth_interval(4)));
            for i in 0..10u32 {
                engine.schedule_at(SimTime::from_millis(i as u64), i);
            }
            engine.run(|n, ctx, ev| {
                *n += 1;
                if ev == 7 {
                    ctx.stop();
                }
            });
        });
        let depths: Vec<_> = records.iter().filter(|r| r.name() == "engine.depth").collect();
        assert_eq!(depths.len(), 2, "8 pops at interval 4 => samples at pop 4 and 8");
        assert!(records.iter().any(|r| r.name() == "engine.stop"));
    }

    #[test]
    fn engine_tracer_records_train_registrations_once() {
        let (_, records) = collect(|| {
            let mut engine: Engine<u32, u32> = Engine::new(0);
            observe_engine(&mut engine);
            engine.schedule_periodic(SimTime::from_millis(5), SimDuration::from_millis(2), 9);
            engine.run_until(SimTime::from_millis(20), |n, _, _| *n += 1);
        });
        let trains: Vec<_> = records.iter().filter(|r| r.name() == "engine.train").collect();
        assert_eq!(trains.len(), 1, "one record per registration, not per tick");
        assert_eq!(trains[0].time(), SimTime::from_millis(5));
        let period = trains[0].attrs().iter().find(|(k, _)| k == "period_us").unwrap();
        assert_eq!(period.1, AttrValue::U64(2_000));
        let label = trains[0].attrs().iter().find(|(k, _)| k == "label").unwrap();
        assert_eq!(label.1, AttrValue::Text("9".to_string()));
    }

    #[test]
    fn observe_engine_is_inert_outside_a_scope() {
        let mut engine: Engine<u32, u32> = Engine::new(0);
        observe_engine(&mut engine);
        assert!(engine.take_observer().is_none(), "no observer without an active scope");
    }

    #[test]
    fn jsonl_writer_is_deterministic_and_escapes() {
        let coords = RunCoords { run_index: 3, point: 1, replication: 1, seed: 9 };
        let records = vec![
            TraceRecord::Event(EventRecord {
                name: "engine.clamp".into(),
                time: SimTime::from_millis(5),
                attrs: vec![
                    ("requested_us".into(), AttrValue::U64(0)),
                    ("label".into(), AttrValue::Text("Say(\"hi\n\")".into())),
                ],
            }),
            TraceRecord::Span(SpanRecord {
                name: "engine.run".into(),
                start: SimTime::ZERO,
                end: SimTime::from_millis(5),
                attrs: vec![
                    ("ratio".into(), AttrValue::F64(0.5)),
                    ("bad".into(), AttrValue::F64(f64::NAN)),
                ],
            }),
        ];
        let emit = || {
            let mut w = JsonlTraceWriter::new(Vec::new());
            w.on_run_records(&coords, &records);
            String::from_utf8(w.into_inner().unwrap()).unwrap()
        };
        let text = emit();
        assert_eq!(text, emit(), "same records must serialize identically");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"run\":3,\"point\":1,\"replication\":1,\"seed\":9,\"kind\":\"event\",\
             \"name\":\"engine.clamp\",\"t_us\":5000,\
             \"attrs\":{\"requested_us\":0,\"label\":\"Say(\\\"hi\\n\\\")\"}}"
        );
        assert_eq!(
            lines[1],
            "{\"run\":3,\"point\":1,\"replication\":1,\"seed\":9,\"kind\":\"span\",\
             \"name\":\"engine.run\",\"start_us\":0,\"end_us\":5000,\
             \"attrs\":{\"ratio\":0.5,\"bad\":null}}"
        );
    }

    #[test]
    fn jsonl_writer_errors_are_sticky() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let coords = RunCoords { run_index: 0, point: 0, replication: 0, seed: 0 };
        let records = vec![TraceRecord::Event(EventRecord {
            name: "e".into(),
            time: SimTime::ZERO,
            attrs: vec![],
        })];
        let mut w = JsonlTraceWriter::new(Broken);
        w.on_run_records(&coords, &records);
        assert_eq!(w.written(), 0);
        assert!(w.flush().is_err());
        assert!(w.flush().is_err(), "the error is not consumed");
        w.on_run_records(&coords, &records);
        assert!(w.into_inner().is_err());
    }

    #[test]
    fn debug_labels_are_truncated_at_char_boundaries() {
        let long = "é".repeat(100);
        let label = debug_label(&long);
        assert!(label.len() <= LABEL_MAX + '…'.len_utf8() + 2);
        assert!(label.ends_with('…'));
    }
}

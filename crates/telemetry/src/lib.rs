//! # karyon-telemetry — deterministic tracing and unified metrics
//!
//! The campaign layer's determinism contract ("bit-identical reports for any
//! worker count and resume history") makes observability unusually delicate:
//! anything recorded *inside* a run must itself be a pure function of the
//! run's canonical coordinates, and anything wall-clock-dependent must stay
//! strictly outside the report.  This crate splits the two concerns:
//!
//! * [`trace`] — **deterministic tracing**: virtual-time
//!   [`SpanRecord`]/[`EventRecord`]s collected per run through a thread-local
//!   scope ([`trace::collect`]) and emitted to a [`TraceSink`] keyed by
//!   canonical [`RunCoords`].  Because the records carry only simulated time
//!   and model-derived attributes, a run's trace is **bit-identical across
//!   worker counts** and checkpoint/resume boundaries.  Tracing is off by
//!   default; with no collector installed, [`trace::event`] is a single
//!   thread-local flag check.
//! * [`metrics`] — a **unified metrics registry**: named counters, gauges and
//!   [`BucketHistogram`](karyon_sim::BucketHistogram)-backed timers with one
//!   snapshot/merge format ([`MetricsRegistry::to_json`],
//!   [`MetricsRegistry::merge`]).  This is where wall-clock numbers (chunk
//!   latency, worker busy time, checkpoint-write latency, bus delivery
//!   latency) flow — deliberately *outside* the deterministic report.
//! * [`EngineTracer`] — an [`EngineObserver`](karyon_sim::EngineObserver)
//!   that records causality clamps (with the offending event's debug label),
//!   stop requests and periodic queue-depth samples into the active trace
//!   scope; [`observe_engine`] attaches it only when a scope is active, so
//!   untraced runs pay nothing.
//!
//! ## Quick tour
//!
//! ```
//! use karyon_sim::{Engine, SimDuration, SimTime};
//! use karyon_telemetry::{observe_engine, trace, JsonlTraceWriter, RunCoords, TraceSink};
//!
//! // Collect a run's trace: everything emitted inside the closure is
//! // buffered in virtual time and handed back deterministically.
//! let (_, records) = trace::collect(|| {
//!     let mut engine: Engine<u32, &'static str> = Engine::new(0);
//!     observe_engine(&mut engine); // records clamps / depth while tracing
//!     engine.schedule_at(SimTime::from_millis(5), "tick");
//!     engine.run(|n, ctx, _| {
//!         *n += 1;
//!         // Scheduling into the past is clamped — and now attributed:
//!         if *n == 1 {
//!             ctx.schedule_at(SimTime::ZERO, "late");
//!         }
//!     });
//!     trace::span("run", SimTime::ZERO, SimTime::from_millis(5), &[]);
//! });
//! assert!(records.iter().any(|r| r.name() == "engine.clamp"));
//!
//! // Emit the records keyed by canonical run coordinates as JSONL.
//! let mut writer = JsonlTraceWriter::new(Vec::new());
//! writer.on_run_records(&RunCoords { run_index: 0, point: 0, replication: 0, seed: 42 }, &records);
//! let jsonl = String::from_utf8(writer.into_inner().unwrap()).unwrap();
//! assert!(jsonl.lines().all(|l| l.starts_with("{\"run\":0,")));
//!
//! // Wall-clock numbers go to the unified registry instead.
//! let mut metrics = karyon_telemetry::MetricsRegistry::new();
//! metrics.add("campaign.runs", 1);
//! metrics.record_timer("campaign.chunk_ms", 1.25);
//! assert!(metrics.to_json().contains("\"campaign.runs\":1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{MetricsRegistry, TimerSummary};
pub use trace::{
    observe_engine, AttrValue, EngineTracer, EventRecord, JsonlTraceWriter, NoopTraceSink,
    RunCoords, SpanRecord, TraceRecord, TraceSink,
};

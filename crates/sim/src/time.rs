//! Simulation time.
//!
//! Time is represented as an integer number of microseconds since the start
//! of the simulation.  Integer time keeps the simulator deterministic and
//! makes ordering of events total (no floating-point comparison surprises),
//! which matters for the bounded-reaction-time arguments the KARYON safety
//! kernel relies on.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant in simulated time, measured in microseconds from simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation start instant (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates an instant from fractional seconds since simulation start.
    ///
    /// Negative or non-finite inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime(0);
        }
        SimTime((s * 1e6).round() as u64)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Negative or non-finite inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this duration (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds in this duration.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the duration by an integer factor (saturating).
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Returns the larger of the two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of the two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn negative_or_nan_seconds_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NEG_INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(4);
        assert_eq!((t + d).as_millis(), 14);
        assert_eq!((t - d).as_millis(), 6);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), SimDuration::ZERO);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn subtraction_saturates() {
        let t = SimTime::from_millis(1);
        let d = SimDuration::from_secs(1);
        assert_eq!(t - d, SimTime::ZERO);
        assert_eq!(SimDuration::from_millis(1) - SimDuration::from_millis(2), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total_and_monotone() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert!(a < b);
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimDuration::from_micros(5) > SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(500)), "500us");
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.500ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn min_max_and_mul() {
        let a = SimDuration::from_millis(2);
        let b = SimDuration::from_millis(3);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.saturating_mul(4).as_millis(), 8);
        assert_eq!(SimDuration::MAX.saturating_mul(2), SimDuration::MAX);
    }
}

//! 2-D and 3-D geometry used by the vehicular scenarios.
//!
//! Road scenarios (platooning, intersections, lane changes) use [`Vec2`];
//! the avionics scenarios add altitude through [`Vec3`], matching the paper's
//! separation-minima definition in terms of a *lateral* and a *vertical*
//! distance.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector / point in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// X component (metres).
    pub x: f64,
    /// Y component (metres).
    pub y: f64,
}

/// A 3-D vector / point in metres (x, y horizontal; z = altitude).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component (metres).
    pub x: f64,
    /// Y component (metres).
    pub y: f64,
    /// Z component — altitude (metres).
    pub z: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root when only comparing).
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z component of the 3-D cross product).
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction, or zero if the vector is zero.
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n > 1e-12 {
            self / n
        } else {
            Vec2::ZERO
        }
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Heading angle in radians (atan2 convention).
    pub fn heading(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Extends into 3-D with the given altitude.
    pub fn with_altitude(self, z: f64) -> Vec3 {
        Vec3 { x: self.x, y: self.y, z }
    }
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Horizontal (lateral) distance, ignoring altitude.  This is the
    /// "lateral separation" of the avionics safe-state volume.
    pub fn horizontal_distance(self, other: Vec3) -> f64 {
        self.horizontal().distance(other.horizontal())
    }

    /// Vertical distance (altitude difference magnitude).
    pub fn vertical_distance(self, other: Vec3) -> f64 {
        (self.z - other.z).abs()
    }

    /// Projection onto the horizontal plane.
    pub fn horizontal(self) -> Vec2 {
        Vec2 { x: self.x, y: self.y }
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }
}

macro_rules! impl_vec_ops {
    ($ty:ident, $($field:ident),+) => {
        impl Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty { $($field: self.$field + rhs.$field),+ }
            }
        }
        impl AddAssign for $ty {
            fn add_assign(&mut self, rhs: $ty) {
                $(self.$field += rhs.$field;)+
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                $ty { $($field: self.$field - rhs.$field),+ }
            }
        }
        impl SubAssign for $ty {
            fn sub_assign(&mut self, rhs: $ty) {
                $(self.$field -= rhs.$field;)+
            }
        }
        impl Mul<f64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: f64) -> $ty {
                $ty { $($field: self.$field * rhs),+ }
            }
        }
        impl Div<f64> for $ty {
            type Output = $ty;
            fn div(self, rhs: f64) -> $ty {
                $ty { $($field: self.$field / rhs),+ }
            }
        }
        impl Neg for $ty {
            type Output = $ty;
            fn neg(self) -> $ty {
                $ty { $($field: -self.$field),+ }
            }
        }
    };
}

impl_vec_ops!(Vec2, x, y);
impl_vec_ops!(Vec3, x, y, z);

/// Clamps `value` into the inclusive range `[lo, hi]`.
pub fn clamp(value: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi);
    value.max(lo).min(hi)
}

/// Wraps an angle into the `(-pi, pi]` interval.
pub fn wrap_angle(angle: f64) -> f64 {
    let mut a = angle % (2.0 * std::f64::consts::PI);
    if a <= -std::f64::consts::PI {
        a += 2.0 * std::f64::consts::PI;
    } else if a > std::f64::consts::PI {
        a -= 2.0 * std::f64::consts::PI;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn vec2_basic_ops() {
        let a = Vec2::new(3.0, 4.0);
        let b = Vec2::new(1.0, -2.0);
        assert!(approx(a.norm(), 5.0));
        assert!(approx(a.norm_sq(), 25.0));
        assert_eq!(a + b, Vec2::new(4.0, 2.0));
        assert_eq!(a - b, Vec2::new(2.0, 6.0));
        assert_eq!(a * 2.0, Vec2::new(6.0, 8.0));
        assert_eq!(a / 2.0, Vec2::new(1.5, 2.0));
        assert_eq!(-a, Vec2::new(-3.0, -4.0));
        assert!(approx(a.dot(b), -5.0));
        assert!(approx(a.cross(b), -10.0));
        assert!(approx(a.distance(b), ((2.0f64).powi(2) + 36.0).sqrt()));
    }

    #[test]
    fn vec2_normalize_and_rotate() {
        let a = Vec2::new(10.0, 0.0);
        assert_eq!(a.normalized(), Vec2::new(1.0, 0.0));
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        let r = a.rotated(PI / 2.0);
        assert!(approx(r.x, 0.0) && approx(r.y, 10.0));
        assert!(approx(Vec2::new(0.0, 1.0).heading(), PI / 2.0));
    }

    #[test]
    fn vec2_lerp() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, 10.0));
    }

    #[test]
    fn vec3_separation_components() {
        let a = Vec3::new(0.0, 0.0, 1000.0);
        let b = Vec3::new(300.0, 400.0, 1300.0);
        assert!(approx(a.horizontal_distance(b), 500.0));
        assert!(approx(a.vertical_distance(b), 300.0));
        assert!(approx(a.distance(b), (500.0f64.powi(2) + 300.0f64.powi(2)).sqrt()));
        assert_eq!(Vec2::new(1.0, 2.0).with_altitude(3.0), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.horizontal(), Vec2::new(300.0, 400.0));
    }

    #[test]
    fn vec3_ops_and_lerp() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert!(approx(a.dot(b), 32.0));
        assert_eq!(a.lerp(b, 0.5), Vec3::new(2.5, 3.5, 4.5));
    }

    #[test]
    fn clamp_and_wrap() {
        assert_eq!(clamp(5.0, 0.0, 3.0), 3.0);
        assert_eq!(clamp(-1.0, 0.0, 3.0), 0.0);
        assert_eq!(clamp(2.0, 0.0, 3.0), 2.0);
        assert!(approx(wrap_angle(3.0 * PI), PI));
        assert!(approx(wrap_angle(-3.0 * PI), PI));
        assert!(approx(wrap_angle(0.5), 0.5));
    }
}

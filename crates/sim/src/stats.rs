//! Metric collection for the experiment harnesses.
//!
//! Every experiment in EXPERIMENTS.md reports summary statistics (means,
//! percentiles, counts, rates).  The collectors here are deliberately simple
//! and allocation-light so they can be embedded in per-node simulation state.

use crate::time::SimTime;

/// Streaming mean / variance / min / max (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.  Non-finite values are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The raw internal state, for bit-exact persistence (checkpointing).
    ///
    /// The returned fields are the accumulator's *internal* values, not the
    /// saturating views of the public getters: `min`/`max` are ±∞ while the
    /// accumulator is empty, and `mean` is the raw running mean.  Feeding
    /// them back through [`OnlineStats::from_raw_state`] reconstructs an
    /// accumulator that continues the stream bit-identically.
    pub fn raw_state(&self) -> OnlineStatsState {
        OnlineStatsState {
            count: self.count,
            mean: self.mean,
            m2: self.m2,
            min: self.min,
            max: self.max,
        }
    }

    /// Reconstructs an accumulator from persisted [`OnlineStats::raw_state`]
    /// output.  The round-trip is bit-exact: recording or merging into the
    /// reconstruction produces the same bits as into the original.
    pub fn from_raw_state(state: OnlineStatsState) -> Self {
        OnlineStats {
            count: state.count,
            mean: state.mean,
            m2: state.m2,
            min: state.min,
            max: state.max,
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The raw persisted state of an [`OnlineStats`], produced by
/// [`OnlineStats::raw_state`] and consumed by [`OnlineStats::from_raw_state`].
///
/// All fields are the accumulator's internal representation (see
/// [`OnlineStats::raw_state`] for the empty-accumulator conventions); they
/// exist so checkpointing code can serialise the accumulator bit-exactly
/// without this crate prescribing a storage format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStatsState {
    /// Number of finite observations recorded.
    pub count: u64,
    /// Raw running mean (0.0 while empty).
    pub mean: f64,
    /// Raw sum of squared deviations (Welford's M2).
    pub m2: f64,
    /// Raw running minimum (+∞ while empty).
    pub min: f64,
    /// Raw running maximum (−∞ while empty).
    pub max: f64,
}

/// Sample-retaining histogram with percentile queries.
///
/// Retains all samples (the experiments record at most a few hundred thousand
/// values) so exact percentiles can be reported.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { samples: Vec::new(), sorted: true }
    }

    /// Adds one sample.  Non-finite values are ignored.
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
            self.sorted = false;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean of the samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// The `q`-quantile (q in [0, 1]) using nearest-rank on sorted samples,
    /// or 0 when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        self.samples[idx]
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// 95th percentile.
    pub fn p95(&mut self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    /// Maximum sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Minimum sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Fraction of samples strictly greater than `threshold`.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|v| **v > threshold).count() as f64 / self.samples.len() as f64
    }
}

/// Fixed-bucket, constant-memory histogram with quantile queries.
///
/// Unlike [`Histogram`], which retains every sample, this collector spreads a
/// configured value range over a fixed number of equal-width buckets, so its
/// memory footprint is independent of the number of samples and two
/// histograms with the same configuration (e.g. built by two worker threads
/// of a campaign) can be [merged](BucketHistogram::merge) exactly by adding
/// bucket counts.  Quantiles are resolved by nearest rank over the buckets
/// and reported as the midpoint of the containing bucket, so their resolution
/// is one bucket width; the minimum and maximum are tracked exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl BucketHistogram {
    /// Creates a histogram covering `[lo, hi]` with `buckets` equal-width
    /// buckets.  Samples below `lo` / above `hi` land in dedicated
    /// underflow/overflow buckets whose quantile representative is the exact
    /// observed minimum/maximum.
    ///
    /// # Panics
    /// Panics if `buckets == 0` or the range is empty or non-finite.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "BucketHistogram needs at least one bucket");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "BucketHistogram range must be finite and non-empty"
        );
        BucketHistogram {
            lo,
            hi,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.  Non-finite values are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value < self.lo {
            self.underflow += 1;
        } else if value > self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((value - self.lo) / width) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of samples recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the samples (exact, not bucketed), or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (q in [0, 1]) by nearest rank over the buckets, or 0
    /// when empty.  The answer is the midpoint of the bucket containing the
    /// target rank (clamped to the exact observed min/max), so it is accurate
    /// to one bucket width.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count - 1) as f64 * q).round() as u64;
        if target == 0 {
            return self.min;
        }
        if target >= self.count - 1 {
            return self.max;
        }
        let mut seen = self.underflow;
        if target < seen {
            return self.min;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if target < seen {
                let mid = self.lo + (i as f64 + 0.5) * width;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// The raw internal state, for bit-exact persistence (checkpointing).
    ///
    /// Like [`OnlineStats::raw_state`], the returned `min`/`max` are the raw
    /// running extremes (±∞ while empty), not the saturating public getters.
    pub fn raw_state(&self) -> BucketHistogramState {
        BucketHistogramState {
            lo: self.lo,
            hi: self.hi,
            counts: self.counts.clone(),
            underflow: self.underflow,
            overflow: self.overflow,
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
        }
    }

    /// Reconstructs a histogram from persisted [`BucketHistogram::raw_state`]
    /// output.  The round-trip is bit-exact: recording or merging into the
    /// reconstruction produces the same bits as into the original.
    ///
    /// # Panics
    /// Panics if the persisted bucket configuration is invalid (no buckets,
    /// or an empty/non-finite range) — corrupted state must not be revived.
    pub fn from_raw_state(state: BucketHistogramState) -> Self {
        assert!(!state.counts.is_empty(), "BucketHistogram needs at least one bucket");
        assert!(
            state.lo.is_finite() && state.hi.is_finite() && state.lo < state.hi,
            "BucketHistogram range must be finite and non-empty"
        );
        BucketHistogram {
            lo: state.lo,
            hi: state.hi,
            counts: state.counts,
            underflow: state.underflow,
            overflow: state.overflow,
            count: state.count,
            sum: state.sum,
            min: state.min,
            max: state.max,
        }
    }

    /// Merges another histogram into this one by adding bucket counts.
    ///
    /// # Panics
    /// Panics if the two histograms were built with different ranges or
    /// bucket counts.
    pub fn merge(&mut self, other: &BucketHistogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "merged BucketHistograms must share their bucket configuration"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The raw persisted state of a [`BucketHistogram`], produced by
/// [`BucketHistogram::raw_state`] and consumed by
/// [`BucketHistogram::from_raw_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct BucketHistogramState {
    /// Lower edge of the bucketed range.
    pub lo: f64,
    /// Upper edge of the bucketed range.
    pub hi: f64,
    /// Per-bucket sample counts (equal-width buckets across `[lo, hi]`).
    pub counts: Vec<u64>,
    /// Samples recorded below `lo`.
    pub underflow: u64,
    /// Samples recorded above `hi`.
    pub overflow: u64,
    /// Total finite samples recorded.
    pub count: u64,
    /// Exact running sum of the samples.
    pub sum: f64,
    /// Raw running minimum (+∞ while empty).
    pub min: f64,
    /// Raw running maximum (−∞ while empty).
    pub max: f64,
}

/// A named monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter { value: 0 }
    }

    /// Increments by one.
    pub fn increment(&mut self) {
        self.value += 1;
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Value as a rate per the given number of trials (0 when `trials` is 0).
    pub fn rate(&self, trials: u64) -> f64 {
        if trials == 0 {
            0.0
        } else {
            self.value as f64 / trials as f64
        }
    }
}

/// A time-stamped series of values (used e.g. to trace headway or LoS over time).
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a point.  Callers are expected to append in time order.
    pub fn record(&mut self, time: SimTime, value: f64) {
        self.points.push((time, value));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points in insertion order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The last recorded value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|(_, v)| *v)
    }

    /// Time-weighted average of the series over its recorded span (each value
    /// is held until the next point).  Returns 0 for fewer than two points.
    pub fn time_weighted_mean(&self) -> f64 {
        if self.points.len() < 2 {
            return self.points.first().map(|(_, v)| *v).unwrap_or(0.0);
        }
        let mut weighted = 0.0;
        let mut total = 0.0;
        for pair in self.points.windows(2) {
            let dt = pair[1].0.since(pair[0].0).as_secs_f64();
            weighted += pair[0].1 * dt;
            total += dt;
        }
        if total > 0.0 {
            weighted / total
        } else {
            self.points[0].1
        }
    }

    /// Fraction of the recorded span spent at values `>= threshold`.
    pub fn fraction_at_or_above(&self, threshold: f64) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        let mut above = 0.0;
        let mut total = 0.0;
        for pair in self.points.windows(2) {
            let dt = pair[1].0.since(pair[0].0).as_secs_f64();
            total += dt;
            if pair[0].1 >= threshold {
                above += dt;
            }
        }
        if total > 0.0 {
            above / total
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn online_stats_mean_and_variance() {
        let mut s = OnlineStats::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.variance() - 4.0).abs() < 1e-9);
        assert!((s.std_dev() - 2.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_ignores_non_finite_and_handles_empty() {
        let mut s = OnlineStats::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn online_stats_merge_matches_single_pass() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, v) in values.iter().enumerate() {
            all.record(*v);
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        let mut empty = OnlineStats::new();
        empty.merge(&all);
        assert_eq!(empty.count(), all.count());
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert!((49.0..=51.0).contains(&h.median()));
        assert_eq!(h.p95(), 95.0);
        assert_eq!(h.p99(), 99.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(h.min(), 1.0);
        assert!((h.fraction_above(90.0) - 0.10).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty_is_zeroes() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.median(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.fraction_above(1.0), 0.0);
    }

    #[test]
    fn bucket_histogram_quantiles_are_bucket_accurate() {
        let mut h = BucketHistogram::new(0.0, 100.0, 100);
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        // Bucket width is 1, so every quantile is within one width of the
        // exact nearest-rank answer (51, 95 and 99 respectively).
        assert!((h.p50() - 51.0).abs() <= 1.0, "p50 {}", h.p50());
        assert!((h.p95() - 95.0).abs() <= 1.0, "p95 {}", h.p95());
        assert!((h.p99() - 99.0).abs() <= 1.0, "p99 {}", h.p99());
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn bucket_histogram_underflow_overflow_and_empty() {
        let mut h = BucketHistogram::new(0.0, 10.0, 4);
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0.0);
        h.record(-5.0);
        h.record(25.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), -5.0);
        assert_eq!(h.max(), 25.0);
        // Out-of-range samples are represented by the exact extremes.
        assert_eq!(h.quantile(0.0), -5.0);
        assert_eq!(h.quantile(1.0), 25.0);
    }

    #[test]
    fn bucket_histogram_merge_matches_single_collector() {
        let mut all = BucketHistogram::new(0.0, 1.0, 32);
        let mut a = BucketHistogram::new(0.0, 1.0, 32);
        let mut b = BucketHistogram::new(0.0, 1.0, 32);
        for i in 0..1_000 {
            let v = (i as f64 * 0.37).fract();
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "quantile {q}");
        }
    }

    #[test]
    #[should_panic(expected = "bucket configuration")]
    fn bucket_histogram_rejects_mismatched_merge() {
        let mut a = BucketHistogram::new(0.0, 1.0, 8);
        let b = BucketHistogram::new(0.0, 2.0, 8);
        a.merge(&b);
    }

    #[test]
    fn online_stats_raw_state_round_trips_bit_exactly() {
        let mut s = OnlineStats::new();
        for v in [0.1, 0.2, 0.7, 123.456, -9.0] {
            s.record(v);
        }
        let mut restored = OnlineStats::from_raw_state(s.raw_state());
        // Continuing both streams produces bit-identical aggregates.
        s.record(0.333);
        restored.record(0.333);
        assert_eq!(s.count(), restored.count());
        assert_eq!(s.mean().to_bits(), restored.mean().to_bits());
        assert_eq!(s.variance().to_bits(), restored.variance().to_bits());
        assert_eq!(s.min().to_bits(), restored.min().to_bits());
        // Empty accumulators round-trip their ±∞ sentinels.
        let empty = OnlineStats::from_raw_state(OnlineStats::new().raw_state());
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.min(), 0.0, "public getter still saturates to 0");
    }

    #[test]
    fn bucket_histogram_raw_state_round_trips_bit_exactly() {
        let mut h = BucketHistogram::new(0.0, 10.0, 8);
        for v in [-1.0, 0.5, 3.3, 9.9, 42.0] {
            h.record(v);
        }
        let mut restored = BucketHistogram::from_raw_state(h.raw_state());
        h.record(7.7);
        restored.record(7.7);
        assert_eq!(h, restored);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q).to_bits(), restored.quantile(q).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn bucket_histogram_rejects_corrupt_raw_state() {
        let mut state = BucketHistogram::new(0.0, 1.0, 4).raw_state();
        state.counts.clear();
        let _ = BucketHistogram::from_raw_state(state);
    }

    #[test]
    fn counter_rates() {
        let mut c = Counter::new();
        c.increment();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert!((c.rate(10) - 0.5).abs() < 1e-12);
        assert_eq!(c.rate(0), 0.0);
    }

    #[test]
    fn time_series_time_weighted_mean() {
        let mut ts = TimeSeries::new();
        assert_eq!(ts.time_weighted_mean(), 0.0);
        ts.record(SimTime::from_secs(0), 1.0);
        ts.record(SimTime::from_secs(1), 3.0);
        ts.record(SimTime::from_secs(3), 3.0);
        // Value 1.0 held for 1 s, value 3.0 held for 2 s => (1*1 + 3*2)/3.
        assert!((ts.time_weighted_mean() - 7.0 / 3.0).abs() < 1e-9);
        assert!((ts.fraction_at_or_above(2.0) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(ts.last_value(), Some(3.0));
        assert_eq!(ts.len(), 3);
    }
}

//! Discrete-event and fixed-step simulation drivers.
//!
//! Two execution styles are provided because the KARYON experiments need
//! both:
//!
//! * [`Engine`] — a classic discrete-event loop (used by the network and
//!   middleware simulations where activity is bursty), and
//! * [`FixedStepSim`] — a fixed-period ticker (used by the vehicle dynamics
//!   and control loops, which the paper models as periodic tasks below the
//!   hybridization line).

use std::fmt;

use crate::events::{EventQueue, TrainId};
use crate::time::{SimDuration, SimTime};

/// Observer of an [`Engine`]'s internal transitions, installed with
/// [`Engine::set_observer`].
///
/// Every method has an empty default body, so an observer implements only the
/// transitions it cares about.  With no observer installed each hook site is
/// a single `Option` branch, which keeps the unobserved engine at its
/// original speed — observers exist for instrumentation (tracing,
/// queue-depth profiling), not for simulation logic: they receive shared
/// references only and cannot influence the run.
///
/// The observer sees:
/// * [`on_schedule`](EngineObserver::on_schedule) — every accepted schedule
///   (engine- or context-side), with the post-clamp firing time;
/// * [`on_clamp`](EngineObserver::on_clamp) — every causality clamp, with the
///   originally requested (past) time and the event, so clamp diagnostics can
///   carry the event's own label;
/// * [`on_periodic`](EngineObserver::on_periodic) — every periodic train
///   registration, with its (post-clamp) start and period.  Individual train
///   ticks are *not* reported as schedules (they never pass through the
///   queue's schedule path), but each dispatched tick still fires
///   [`on_pop`](EngineObserver::on_pop);
/// * [`on_pop`](EngineObserver::on_pop) — every event dispatch, with the
///   number of events still pending after the pop;
/// * [`on_stop`](EngineObserver::on_stop) — a handler's [`Context::stop`]
///   taking effect.
pub trait EngineObserver<E> {
    /// An event was accepted for execution at (post-clamp) time `time`.
    fn on_schedule(&mut self, now: SimTime, time: SimTime, event: &E) {
        let _ = (now, time, event);
    }

    /// A periodic train was registered: `event` fires at `start`,
    /// `start + period`, … until cancelled.  Fires once per
    /// [`Engine::schedule_periodic`] call, not per tick.
    fn on_periodic(&mut self, now: SimTime, start: SimTime, period: SimDuration, event: &E) {
        let _ = (now, start, period, event);
    }

    /// A schedule requested the past time `requested` and was clamped to
    /// `now`.  Fires in addition to (before) the matching
    /// [`on_schedule`](EngineObserver::on_schedule).
    fn on_clamp(&mut self, now: SimTime, requested: SimTime, event: &E) {
        let _ = (now, requested, event);
    }

    /// An event is about to be handled at `time`; `depth` is the queue length
    /// after the pop.
    fn on_pop(&mut self, time: SimTime, event: &E, depth: usize) {
        let _ = (time, event, depth);
    }

    /// A handler requested a stop; the run loop exits after this event.
    fn on_stop(&mut self, now: SimTime) {
        let _ = now;
    }
}

/// A train control operation staged by a handler through [`Context`] and
/// applied after the handler returns (after any staged schedules).
#[derive(Debug, Clone, Copy)]
enum TrainOp {
    Cancel(TrainId),
    Retune(TrainId, SimDuration),
}

/// Scheduling handle passed to the event handler of an [`Engine`].
///
/// The handler cannot touch the engine directly (it is being iterated), so new
/// events are staged in the context and merged after the handler returns —
/// same-timestamp groups are bulk-inserted into their bucket in one pass via
/// [`EventQueue::schedule_batch`].  The staging buffer is owned by the engine
/// and reused across events, so steady-state event handling allocates
/// nothing.  Train cancel/retune requests are staged the same way and applied
/// after the staged schedules.
pub struct Context<'a, E> {
    now: SimTime,
    staged: &'a mut Vec<(SimTime, E)>,
    train_ops: &'a mut Vec<TrainOp>,
    stop_requested: bool,
    clamped: u64,
    observer: Option<&'a mut (dyn EngineObserver<E> + 'a)>,
}

impl<E> fmt::Debug for Context<'_, E>
where
    E: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("now", &self.now)
            .field("staged", &self.staged)
            .field("train_ops", &self.train_ops)
            .field("stop_requested", &self.stop_requested)
            .field("clamped", &self.clamped)
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

impl<'a, E> Context<'a, E> {
    fn new(
        now: SimTime,
        staged: &'a mut Vec<(SimTime, E)>,
        train_ops: &'a mut Vec<TrainOp>,
        observer: Option<&'a mut (dyn EngineObserver<E> + 'a)>,
    ) -> Self {
        Context { now, staged, train_ops, stop_requested: false, clamped: 0, observer }
    }

    /// The current simulation time (the firing time of the event being handled).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at an absolute time.  Times in the past are clamped
    /// to "now" so causality is never violated; every clamp is counted and
    /// surfaced through [`Engine::clamped_schedules`], because a model that
    /// schedules into the past is usually a model with a causality bug.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        // Clamp policy: identical to `Engine::schedule_at` — keep in sync.
        let t = if time < self.now {
            self.clamped += 1;
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_clamp(self.now, time, &event);
            }
            self.now
        } else {
            time
        };
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_schedule(self.now, t, &event);
        }
        self.staged.push((t, event));
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        let t = self.now + delay;
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_schedule(self.now, t, &event);
        }
        self.staged.push((t, event));
    }

    /// Requests cancellation of a periodic train created with
    /// [`Engine::schedule_periodic`].  Applied after the current handler
    /// returns (after its staged schedules); unknown ids are ignored.
    pub fn cancel_train(&mut self, id: TrainId) {
        self.train_ops.push(TrainOp::Cancel(id));
    }

    /// Requests a period change for a periodic train, taking effect for the
    /// intervals after the train's next (already-materialized) tick.  Applied
    /// after the current handler returns; unknown ids are ignored.
    ///
    /// # Panics
    /// The engine panics when applying a zero `period`.
    pub fn retune_train(&mut self, id: TrainId, period: SimDuration) {
        self.train_ops.push(TrainOp::Retune(id, period));
    }

    /// Requests that the simulation stop after the current event is processed.
    pub fn stop(&mut self) {
        self.stop_requested = true;
    }
}

/// A deterministic discrete-event simulation engine.
///
/// `S` is the simulation state, `E` the event type.  Event handling is driven
/// by a closure passed to [`Engine::run`] / [`Engine::run_until`], which keeps
/// the engine free of trait-object plumbing and lets each experiment define
/// its own event enum.
pub struct Engine<S, E> {
    state: S,
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
    clamped: u64,
    /// Reusable staging buffer lent to the per-event [`Context`].
    staged: Vec<(SimTime, E)>,
    /// Reusable staging buffer for train cancel/retune requests.
    staged_train_ops: Vec<TrainOp>,
    observer: Option<Box<dyn EngineObserver<E>>>,
}

impl<S, E> fmt::Debug for Engine<S, E>
where
    S: fmt::Debug,
    E: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("state", &self.state)
            .field("queue", &self.queue)
            .field("now", &self.now)
            .field("processed", &self.processed)
            .field("clamped", &self.clamped)
            .field("staged", &self.staged)
            .field("staged_train_ops", &self.staged_train_ops)
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

impl<S, E> Engine<S, E> {
    /// Creates an engine at time zero with the given initial state.
    pub fn new(state: S) -> Self {
        Engine {
            state,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            clamped: 0,
            staged: Vec::new(),
            staged_train_ops: Vec::new(),
            observer: None,
        }
    }

    /// Installs an [`EngineObserver`] that will see every schedule, clamp,
    /// pop and stop from here on.  Replaces any previous observer.
    ///
    /// Observation is strictly read-only instrumentation: observers never
    /// change what the engine does, only record it, so an observed run and an
    /// unobserved run of the same model are identical.
    pub fn set_observer(&mut self, observer: Box<dyn EngineObserver<E>>) {
        self.observer = Some(observer);
    }

    /// Removes and returns the installed observer, if any.
    pub fn take_observer(&mut self) -> Option<Box<dyn EngineObserver<E>>> {
        self.observer.take()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of schedules (via [`Engine::schedule_at`] or
    /// [`Context::schedule_at`]) whose requested time lay in the past and was
    /// clamped to "now".  A non-zero value flags a causality-suspect model;
    /// campaign runners use it to mark runs as suspect instead of silently
    /// accepting the clamp.
    pub fn clamped_schedules(&self) -> u64 {
        self.clamped
    }

    /// Shared access to the simulation state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the simulation state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consumes the engine and returns the final state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// Schedules an event at an absolute simulation time (clamped to now).
    /// Clamps are counted in [`Engine::clamped_schedules`].
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        // Clamp policy: identical to `Context::schedule_at` — keep in sync.
        let t = if time < self.now {
            self.clamped += 1;
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_clamp(self.now, time, &event);
            }
            self.now
        } else {
            time
        };
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_schedule(self.now, t, &event);
        }
        self.queue.schedule(t, event);
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        let t = self.now + delay;
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_schedule(self.now, t, &event);
        }
        self.queue.schedule(t, event);
    }

    /// Registers a periodic event train: `event` fires at `start`,
    /// `start + period`, … until [cancelled](Engine::cancel_train), cloning
    /// the payload per tick.  A `start` in the past is clamped to "now" (and
    /// counted) exactly like [`Engine::schedule_at`].
    ///
    /// Ticks are lazily materialized by the queue (O(1) per tick, no wheel
    /// traffic) and keep exact FIFO tie semantics: the train consumes one
    /// sequence number at this call and behaves as if every tick had been
    /// scheduled up front here (see [`EventQueue::schedule_periodic`]).
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn schedule_periodic(&mut self, start: SimTime, period: SimDuration, event: E) -> TrainId {
        let t = if start < self.now {
            self.clamped += 1;
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_clamp(self.now, start, &event);
            }
            self.now
        } else {
            start
        };
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_periodic(self.now, t, period, &event);
        }
        self.queue.schedule_periodic(t, period, event)
    }

    /// Cancels a periodic train immediately, returning its payload (`None`
    /// if `id` is unknown or already cancelled).
    pub fn cancel_train(&mut self, id: TrainId) -> Option<E> {
        self.queue.cancel_train(id)
    }

    /// Changes a train's period for the intervals after its next
    /// (already-materialized) tick.  Returns false if `id` is unknown.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn retune_train(&mut self, id: TrainId, period: SimDuration) -> bool {
        self.queue.retune_train(id, period)
    }

    /// Number of pending events (each active periodic train counts as one).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Runs until the queue is empty or a handler calls [`Context::stop`].
    /// Returns the number of events processed by this call.
    ///
    /// Note that a queue with an active periodic train never drains on its
    /// own: bound such runs with [`Engine::run_until`] or a
    /// [`Context::stop`].
    pub fn run(&mut self, mut handler: impl FnMut(&mut S, &mut Context<'_, E>, E)) -> u64
    where
        E: Clone,
    {
        self.run_inner(SimTime::MAX, &mut handler).0
    }

    /// Runs until `deadline` (inclusive), the queue is empty, or a handler
    /// calls [`Context::stop`].  The engine clock is advanced to `deadline`
    /// if the queue drains earlier — but *not* after a stop: a stopped run
    /// stays at the stopping event's time, so events (or train ticks)
    /// between it and the deadline are not skipped on resume.  Returns
    /// events processed by this call.
    pub fn run_until(
        &mut self,
        deadline: SimTime,
        mut handler: impl FnMut(&mut S, &mut Context<'_, E>, E),
    ) -> u64
    where
        E: Clone,
    {
        let (n, stopped) = self.run_inner(deadline, &mut handler);
        if !stopped && self.now < deadline && deadline != SimTime::MAX {
            self.now = deadline;
        }
        n
    }

    /// Returns (events processed, whether a handler stopped the run).
    fn run_inner(
        &mut self,
        deadline: SimTime,
        handler: &mut impl FnMut(&mut S, &mut Context<'_, E>, E),
    ) -> (u64, bool)
    where
        E: Clone,
    {
        let mut count = 0;
        while let Some((t, ev)) = self.queue.pop_until(deadline) {
            self.now = t;
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_pop(t, &ev, self.queue.len());
            }
            let observer: Option<&mut (dyn EngineObserver<E> + '_)> = match &mut self.observer {
                Some(obs) => Some(obs.as_mut()),
                None => None,
            };
            let mut ctx = Context::new(t, &mut self.staged, &mut self.staged_train_ops, observer);
            handler(&mut self.state, &mut ctx, ev);
            let (stop, clamped) = (ctx.stop_requested, ctx.clamped);
            // Bulk-insert the handler's staged events (same-timestamp groups
            // are filed in one pass), then apply its train ops.
            self.queue.schedule_batch(&mut self.staged);
            for op in self.staged_train_ops.drain(..) {
                match op {
                    TrainOp::Cancel(id) => {
                        self.queue.cancel_train(id);
                    }
                    TrainOp::Retune(id, period) => {
                        self.queue.retune_train(id, period);
                    }
                }
            }
            self.clamped += clamped;
            self.processed += 1;
            count += 1;
            if stop {
                if let Some(obs) = self.observer.as_deref_mut() {
                    obs.on_stop(self.now);
                }
                return (count, true);
            }
        }
        (count, false)
    }
}

/// A fixed-step simulation driver: calls a step function every `period` until
/// a stop time is reached.
///
/// This mirrors how the paper's periodic control tasks (safety-manager cycle,
/// ACC control loop) execute: a statically known period with a design-time
/// bound on each cycle.
#[derive(Debug)]
pub struct FixedStepSim {
    now: SimTime,
    period: SimDuration,
    step_index: u64,
}

impl FixedStepSim {
    /// Creates a fixed-step driver with the given tick period.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn new(period: SimDuration) -> Self {
        assert!(!period.is_zero(), "FixedStepSim period must be non-zero");
        FixedStepSim { now: SimTime::ZERO, period, step_index: 0 }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The tick period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Index of the next step to execute (0 for the first).
    pub fn step_index(&self) -> u64 {
        self.step_index
    }

    /// Runs steps until simulated time reaches `until` (exclusive of steps
    /// that would start at or after it).  The step callback receives the
    /// current time and the step index.  Returns the number of steps run.
    pub fn run_until(&mut self, until: SimTime, mut step: impl FnMut(SimTime, u64)) -> u64 {
        let mut executed = 0;
        while self.now < until {
            step(self.now, self.step_index);
            self.step_index += 1;
            self.now += self.period;
            executed += 1;
        }
        executed
    }

    /// Runs exactly `n` steps.
    pub fn run_steps(&mut self, n: u64, mut step: impl FnMut(SimTime, u64)) {
        for _ in 0..n {
            step(self.now, self.step_index);
            self.step_index += 1;
            self.now += self.period;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Ev {
        Ping(u32),
        Stop,
    }

    #[test]
    fn engine_processes_in_order_and_reschedules() {
        let mut engine: Engine<Vec<u32>, Ev> = Engine::new(Vec::new());
        engine.schedule_in(SimDuration::from_millis(10), Ev::Ping(0));
        engine.run(|log, ctx, ev| {
            if let Ev::Ping(n) = ev {
                log.push(n);
                if n < 4 {
                    ctx.schedule_in(SimDuration::from_millis(10), Ev::Ping(n + 1));
                }
            }
        });
        assert_eq!(engine.state(), &vec![0, 1, 2, 3, 4]);
        assert_eq!(engine.now(), SimTime::from_millis(50));
        assert_eq!(engine.processed(), 5);
    }

    #[test]
    fn engine_stop_halts_early() {
        let mut engine: Engine<u32, Ev> = Engine::new(0);
        for i in 0..10 {
            engine.schedule_at(SimTime::from_millis(i), Ev::Ping(i as u32));
        }
        engine.schedule_at(SimTime::from_millis(3), Ev::Stop);
        engine.run(|count, ctx, ev| match ev {
            Ev::Ping(_) => *count += 1,
            Ev::Stop => ctx.stop(),
        });
        // Events at t=0..=3 ms processed (4 pings) plus the stop event.
        assert_eq!(*engine.state(), 4);
        assert!(engine.pending() > 0);
    }

    #[test]
    fn engine_run_until_advances_clock_to_deadline() {
        let mut engine: Engine<u32, Ev> = Engine::new(0);
        engine.schedule_at(SimTime::from_millis(5), Ev::Ping(1));
        engine.schedule_at(SimTime::from_millis(500), Ev::Ping(2));
        let n = engine.run_until(SimTime::from_millis(100), |c, _, _| *c += 1);
        assert_eq!(n, 1);
        assert_eq!(*engine.state(), 1);
        assert_eq!(engine.now(), SimTime::from_millis(100));
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut engine: Engine<Vec<u64>, Ev> = Engine::new(Vec::new());
        engine.schedule_at(SimTime::from_millis(10), Ev::Ping(0));
        engine.run(|log, ctx, _| {
            log.push(ctx.now().as_millis());
            if log.len() == 1 {
                // Attempt to schedule in the past; must fire "now", not before.
                ctx.schedule_at(SimTime::from_millis(1), Ev::Ping(1));
            }
        });
        assert_eq!(engine.state(), &vec![10, 10]);
        assert_eq!(engine.clamped_schedules(), 1, "the past-time schedule must be counted");
    }

    #[test]
    fn clamp_counter_covers_engine_and_context_schedules() {
        let mut engine: Engine<u32, Ev> = Engine::new(0);
        engine.schedule_at(SimTime::from_millis(10), Ev::Ping(0));
        engine.run(|c, _, _| *c += 1);
        assert_eq!(engine.clamped_schedules(), 0, "forward schedules never clamp");
        // The engine clock is now at 10 ms: a direct past schedule clamps too.
        engine.schedule_at(SimTime::from_millis(2), Ev::Ping(1));
        assert_eq!(engine.clamped_schedules(), 1);
        engine.run(|c, _, _| *c += 1);
        assert_eq!(*engine.state(), 2);
    }

    #[test]
    fn observer_sees_schedules_clamps_pops_and_stop() {
        #[derive(Default)]
        struct Log(std::rc::Rc<RefCell<Vec<String>>>);
        use std::cell::RefCell;
        impl EngineObserver<Ev> for Log {
            fn on_schedule(&mut self, now: SimTime, time: SimTime, _ev: &Ev) {
                self.0.borrow_mut().push(format!(
                    "sched {}->{}",
                    now.as_millis(),
                    time.as_millis()
                ));
            }
            fn on_clamp(&mut self, now: SimTime, requested: SimTime, ev: &Ev) {
                self.0.borrow_mut().push(format!(
                    "clamp {}<-{} {ev:?}",
                    now.as_millis(),
                    requested.as_millis()
                ));
            }
            fn on_pop(&mut self, time: SimTime, _ev: &Ev, depth: usize) {
                self.0.borrow_mut().push(format!("pop {} depth {depth}", time.as_millis()));
            }
            fn on_stop(&mut self, now: SimTime) {
                self.0.borrow_mut().push(format!("stop {}", now.as_millis()));
            }
        }

        let log = Log::default();
        let lines = log.0.clone();
        let mut engine: Engine<u32, Ev> = Engine::new(0);
        engine.set_observer(Box::new(log));
        engine.schedule_at(SimTime::from_millis(10), Ev::Ping(0));
        engine.run(|n, ctx, ev| {
            *n += 1;
            if ev == Ev::Ping(0) {
                // One clamped (past-time) and one forward schedule from the
                // handler context — both must be observed.
                ctx.schedule_at(SimTime::from_millis(1), Ev::Ping(1));
                ctx.schedule_in(SimDuration::from_millis(5), Ev::Stop);
            }
            if ev == Ev::Stop {
                ctx.stop();
            }
        });
        assert_eq!(
            *lines.borrow(),
            vec![
                "sched 0->10",
                "pop 10 depth 0",
                "clamp 10<-1 Ping(1)",
                "sched 10->10",
                "sched 10->15",
                "pop 10 depth 1",
                "pop 15 depth 0",
                "stop 15",
            ]
        );
        assert_eq!(engine.clamped_schedules(), 1, "observation does not change counting");
        assert!(engine.take_observer().is_some());
        assert!(engine.take_observer().is_none());
    }

    #[test]
    fn periodic_train_drives_the_engine() {
        let mut engine: Engine<Vec<u64>, Ev> = Engine::new(Vec::new());
        let id = engine.schedule_periodic(
            SimTime::from_millis(10),
            SimDuration::from_millis(10),
            Ev::Ping(7),
        );
        let n = engine.run_until(SimTime::from_millis(45), |log, ctx, _| {
            log.push(ctx.now().as_millis());
        });
        assert_eq!(n, 4, "ticks at 10/20/30/40 ms fall inside the window");
        assert_eq!(engine.state(), &vec![10, 20, 30, 40]);
        assert_eq!(engine.now(), SimTime::from_millis(45), "clock still advances to deadline");
        assert_eq!(engine.pending(), 1, "the train stays pending");
        assert_eq!(engine.cancel_train(id), Some(Ev::Ping(7)));
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn periodic_start_in_the_past_is_clamped() {
        let mut engine: Engine<u32, Ev> = Engine::new(0);
        engine.schedule_at(SimTime::from_millis(10), Ev::Ping(0));
        engine.run(|c, ctx, _| {
            *c += 1;
            if *c >= 3 {
                ctx.stop();
            }
        });
        let id = engine.schedule_periodic(
            SimTime::from_millis(1),
            SimDuration::from_millis(100),
            Ev::Ping(1),
        );
        assert_eq!(engine.clamped_schedules(), 1, "past train starts are causality-suspect too");
        let mut first = None;
        engine.run(|_, ctx, _| {
            first = Some(ctx.now());
            ctx.stop();
        });
        assert_eq!(first, Some(SimTime::from_millis(10)), "the start was clamped to now");
        engine.cancel_train(id);
    }

    #[test]
    fn context_can_cancel_and_retune_trains() {
        let mut engine: Engine<Vec<(u64, u32)>, Ev> = Engine::new(Vec::new());
        let slow = engine.schedule_periodic(
            SimTime::from_millis(10),
            SimDuration::from_millis(10),
            Ev::Ping(1),
        );
        let doomed = engine.schedule_periodic(
            SimTime::from_millis(15),
            SimDuration::from_millis(10),
            Ev::Ping(2),
        );
        engine.run_until(SimTime::from_millis(100), |log, ctx, ev| {
            let Ev::Ping(k) = ev else { return };
            log.push((ctx.now().as_millis(), k));
            if ctx.now() == SimTime::from_millis(15) {
                // Applied after this handler: train 2 never fires again, and
                // train 1's period stretches after its next tick (20 ms).
                ctx.cancel_train(doomed);
                ctx.retune_train(slow, SimDuration::from_millis(30));
            }
        });
        assert_eq!(
            engine.state(),
            &vec![(10, 1), (15, 2), (20, 1), (50, 1), (80, 1)],
            "cancel stops the doomed train; retune applies after the materialized tick"
        );
    }

    #[test]
    fn stopped_run_until_does_not_skip_ahead() {
        // After a stop, the clock must stay at the stopping event so a
        // resumed run replays nothing and skips nothing.
        let mut engine: Engine<Vec<u64>, Ev> = Engine::new(Vec::new());
        engine.schedule_at(SimTime::from_millis(10), Ev::Stop);
        engine.schedule_at(SimTime::from_millis(20), Ev::Ping(1));
        let n = engine.run_until(SimTime::from_millis(100), |_, ctx, ev| {
            if ev == Ev::Stop {
                ctx.stop();
            }
        });
        assert_eq!(n, 1);
        assert_eq!(engine.now(), SimTime::from_millis(10), "no fast-forward past a stop");
        let mut seen = Vec::new();
        engine.run_until(SimTime::from_millis(100), |_, ctx, _| seen.push(ctx.now().as_millis()));
        assert_eq!(seen, vec![20], "the pending event between stop and deadline still fires");
        assert_eq!(engine.now(), SimTime::from_millis(100));
    }

    #[test]
    fn staged_same_timestamp_bursts_keep_fifo_order() {
        // A handler fanning out several events at one instant exercises the
        // schedule_batch path; order must match one-by-one scheduling.
        let mut engine: Engine<Vec<u32>, Ev> = Engine::new(Vec::new());
        engine.schedule_at(SimTime::from_millis(1), Ev::Ping(0));
        engine.run(|log, ctx, ev| {
            let Ev::Ping(n) = ev else { return };
            log.push(n);
            if n == 0 {
                for k in 1..=8 {
                    ctx.schedule_in(SimDuration::from_millis(5), Ev::Ping(k));
                }
                ctx.schedule_in(SimDuration::from_millis(2), Ev::Ping(100));
            }
        });
        assert_eq!(engine.state(), &vec![0, 100, 1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn observer_sees_periodic_registrations() {
        use std::cell::RefCell;
        #[derive(Default)]
        struct Log(std::rc::Rc<RefCell<Vec<String>>>);
        impl EngineObserver<Ev> for Log {
            fn on_periodic(&mut self, now: SimTime, start: SimTime, period: SimDuration, _: &Ev) {
                self.0.borrow_mut().push(format!(
                    "train {}@{}+{}",
                    now.as_millis(),
                    start.as_millis(),
                    period.as_millis()
                ));
            }
        }
        let log = Log::default();
        let lines = log.0.clone();
        let mut engine: Engine<u32, Ev> = Engine::new(0);
        engine.set_observer(Box::new(log));
        engine.schedule_periodic(SimTime::from_millis(5), SimDuration::from_millis(2), Ev::Ping(0));
        engine.run_until(SimTime::from_millis(9), |c, _, _| *c += 1);
        assert_eq!(*engine.state(), 3);
        assert_eq!(*lines.borrow(), vec!["train 0@5+2"], "one hook per registration, not per tick");
    }

    #[test]
    fn fixed_step_runs_expected_number_of_steps() {
        let mut sim = FixedStepSim::new(SimDuration::from_millis(100));
        let mut times = Vec::new();
        let n = sim.run_until(SimTime::from_secs(1), |t, _| times.push(t.as_millis()));
        assert_eq!(n, 10);
        assert_eq!(times.first(), Some(&0));
        assert_eq!(times.last(), Some(&900));
        assert_eq!(sim.now(), SimTime::from_secs(1));
        sim.run_steps(3, |_, _| {});
        assert_eq!(sim.step_index(), 13);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn fixed_step_rejects_zero_period() {
        let _ = FixedStepSim::new(SimDuration::ZERO);
    }
}

//! # karyon-sim — deterministic discrete-event simulation substrate
//!
//! The KARYON paper (DSN 2013) evaluates its safety architecture through
//! "computer simulations with fault injection support".  This crate is the
//! substrate those simulations run on: a deterministic notion of time, a
//! seedable pseudo-random number generator, event queues, a small
//! discrete-event engine, 2-D/3-D geometry used by the vehicular scenarios
//! and statistics collection used by the experiment harnesses.
//!
//! Everything in this crate is deterministic: given the same seed and the
//! same sequence of API calls, a simulation produces bit-identical results.
//! This is what makes the ISO 26262-style fault-injection campaigns of the
//! reproduction repeatable.
//!
//! ## Quick tour
//!
//! ```
//! use karyon_sim::prelude::*;
//!
//! // Deterministic randomness.
//! let mut rng = Rng::seed_from(42);
//! let sample = rng.normal(0.0, 1.0);
//! assert!(sample.is_finite());
//!
//! // Simulation time is measured in integer microseconds.
//! let t = SimTime::from_millis(5) + SimDuration::from_micros(250);
//! assert_eq!(t.as_micros(), 5_250);
//!
//! // A tiny event-driven simulation.
//! let mut engine: Engine<u32, &'static str> = Engine::new(0);
//! engine.schedule_in(SimDuration::from_millis(1), "tick");
//! engine.run(|state, ctx, ev| {
//!     if ev == "tick" {
//!         *state += 1;
//!         if *state < 3 {
//!             ctx.schedule_in(SimDuration::from_millis(1), "tick");
//!         }
//!     }
//! });
//! assert_eq!(*engine.state(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod events;
pub mod geometry;
pub mod rng;
pub mod stats;
pub mod table;
pub mod time;

pub use engine::{Context, Engine, EngineObserver, FixedStepSim};
pub use events::{EventQueue, HeapEventQueue, TrainId};
pub use geometry::{Vec2, Vec3};
pub use rng::{splitmix64, Rng};
pub use stats::{
    BucketHistogram, BucketHistogramState, Counter, Histogram, OnlineStats, OnlineStatsState,
    TimeSeries,
};
pub use table::Table;
pub use time::{SimDuration, SimTime};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::engine::{Context, Engine, FixedStepSim};
    pub use crate::events::{EventQueue, TrainId};
    pub use crate::geometry::{Vec2, Vec3};
    pub use crate::rng::Rng;
    pub use crate::stats::{BucketHistogram, Counter, Histogram, OnlineStats, TimeSeries};
    pub use crate::table::Table;
    pub use crate::time::{SimDuration, SimTime};
}

//! Deterministic pseudo-random number generation.
//!
//! The fault-injection campaigns of the KARYON reproduction must be exactly
//! repeatable (same seed ⇒ same injected faults ⇒ same hazard counts), so the
//! simulator carries its own small, well-understood generator rather than
//! depending on an external crate whose output could change between versions.
//!
//! The generator is `splitmix64` for seeding feeding a `xoshiro256**`-style
//! state, which has excellent statistical quality for simulation purposes and
//! is trivially portable.

/// A deterministic pseudo-random number generator with convenience samplers
/// for the distributions used throughout the simulation.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second normal variate from the Box–Muller transform.
    spare_normal: Option<f64>,
}

/// One step of the `splitmix64` generator: advances `state` and returns the
/// next output.
///
/// Used internally to expand seeds into [`Rng`] state, and exported for seed
/// derivation schemes (e.g. campaign runners deriving per-run seeds from a
/// campaign seed and run coordinates) so they stay in lock-step with the
/// seeding used here.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Different seeds give statistically independent streams; the same seed
    /// always gives the same stream.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s, spare_normal: None }
    }

    /// Derives an independent child generator, useful to give each simulated
    /// node its own stream while keeping the parent deterministic.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let base = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng::seed_from(base)
    }

    /// Next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Returns 0 when `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Multiply-shift rejection-free mapping is fine for simulation use.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo > hi");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`. Returns `lo` when the range is empty or
    /// degenerate.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        // `partial_cmp` (not `hi <= lo`) so a NaN bound also yields `lo`.
        if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return lo;
        }
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli trial: returns `true` with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Normally distributed sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        if std_dev <= 0.0 {
            return mean;
        }
        let z = match self.spare_normal.take() {
            Some(z) => z,
            None => {
                // Box–Muller transform.
                let u1 = loop {
                    let u = self.next_f64();
                    if u > 1e-300 {
                        break u;
                    }
                };
                let u2 = self.next_f64();
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                self.spare_normal = Some(r * theta.sin());
                r * theta.cos()
            }
        };
        mean + std_dev * z
    }

    /// Exponentially distributed sample with the given mean (i.e. rate `1/mean`).
    ///
    /// Returns 0 for non-positive means.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u = loop {
            let u = self.next_f64();
            if u > 1e-300 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Poisson distributed sample with the given mean (Knuth's algorithm,
    /// adequate for the small means used by the traffic generators).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            k += 1;
            p *= self.next_f64();
            if p <= l {
                return k - 1;
            }
            if k > 10_000 {
                // Guard against pathological means; fall back to the mean.
                return mean.round() as u64;
            }
        }
    }

    /// Chooses an index in `[0, weights.len())` proportionally to the weights.
    /// Returns `None` if the slice is empty or all weights are non-positive.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
        if weights.is_empty() || total <= 0.0 {
            return None;
        }
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w <= 0.0 {
                continue;
            }
            if target < *w {
                return Some(i);
            }
            target -= *w;
        }
        // Floating point slack: return the last positive-weight index.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of the slice, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.range_usize(0, items.len() - 1)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = Rng::seed_from(4);
        for _ in 0..10_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..=20).contains(&v));
            let f = rng.range_f64(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        assert_eq!(rng.next_below(0), 0);
        assert_eq!(rng.range_f64(5.0, 5.0), 5.0);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Rng::seed_from(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = Rng::seed_from(6);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert_eq!(rng.exponential(0.0), 0.0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn weighted_index_follows_weights() {
        let mut rng = Rng::seed_from(9);
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            let i = rng.weighted_index(&[1.0, 2.0, 1.0]).unwrap();
            counts[i] += 1;
        }
        assert!(counts[1] > counts[0] && counts[1] > counts[2]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(10);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent_but_deterministic() {
        let mut parent1 = Rng::seed_from(11);
        let mut parent2 = Rng::seed_from(11);
        let mut a = parent1.fork(0);
        let mut b = parent2.fork(0);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = parent1.fork(1);
        let overlaps = (0..32).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(overlaps < 3);
    }

    #[test]
    fn choose_and_poisson() {
        let mut rng = Rng::seed_from(12);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let items = [1, 2, 3];
        assert!(items.contains(rng.choose(&items).unwrap()));
        let n = 20_000;
        let mean = (0..n).map(|_| rng.poisson(3.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "poisson mean {mean}");
        assert_eq!(rng.poisson(0.0), 0);
    }
}

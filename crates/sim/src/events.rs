//! Time-ordered event queues.
//!
//! The queue is the core of the discrete-event engine: events are popped in
//! non-decreasing time order, with FIFO order among events scheduled for the
//! same instant (insertion order breaks ties).  Deterministic tie-breaking is
//! required for reproducible fault-injection campaigns.
//!
//! Two implementations share that contract:
//!
//! * [`EventQueue`] — the default, a two-tier **calendar (bucket) queue**
//!   over an **arena of payloads**.  The near future is spread over a wheel
//!   of fixed-width time buckets, the far future lives in an overflow pool
//!   that is folded back into the wheel as simulation time advances.  The
//!   wheel itself never holds payloads: every `E` lives in a slab with a
//!   free list, and the buckets shuffle small `Copy` `(time, seq, slot_idx)`
//!   entries — so bucket rebase/rebuild moves a few machine words per event
//!   regardless of `size_of::<E>()`, and steady-state scheduling allocates
//!   nothing (freed slots are reused).  For the hold-model workloads a
//!   discrete-event simulation produces (pop the earliest event, schedule a
//!   handful a short delay ahead) scheduling is O(1) and popping is
//!   amortized O(1), independent of the number of pending events — where a
//!   binary heap pays O(log n) pointer-chasing per operation.
//! * [`HeapEventQueue`] — the classic `BinaryHeap` implementation, kept as
//!   the reference baseline: the calendar queue is property-tested to pop in
//!   exactly the same order, and `e16_campaign_throughput` measures the
//!   speedup against it.
//!
//! # Periodic event trains
//!
//! Fixed-period traffic (TDMA slot ticks, pulse-sync rounds, middleware
//! publish loops) dominates the KARYON workloads.  Instead of paying a full
//! schedule + pop through the wheel per tick, [`EventQueue::schedule_periodic`]
//! registers a **train**: one lazily-materialized generator that is merged at
//! pop time — no wheel traversal, no per-tick sequence allocation, no arena
//! traffic.  The calendar queue amortizes the merge through a **tick cache**:
//! a sorted window of upcoming ticks, each packed into one `u64`, refilled a
//! few periods at a time (see `refill_tick_cache`) so the hot pop is an
//! index bump instead of an O(trains) scan; the heap baseline uses the plain
//! `best_train` scan.  Both queues implement trains with identical
//! semantics, so the heap≡calendar identity property extends to mixed
//! train + one-shot workloads.
//!
//! Train determinism contract (the **seq allocation rules**):
//!
//! * `schedule_periodic` consumes exactly **one** sequence number from the
//!   same counter one-shot schedules use; every tick of the train carries
//!   that rank.  A train therefore behaves *exactly* as if all of its ticks
//!   had been scheduled up front, back-to-back, at the moment of the
//!   `schedule_periodic` call: its ticks win FIFO ties against anything
//!   scheduled later and lose them against anything scheduled earlier.
//! * Ticks of one train never tie with each other (the period is non-zero),
//!   and ticks of different trains tie-break by their trains' ranks.
//! * [`EventQueue::cancel_train`] stops a train immediately (no further
//!   ticks); [`EventQueue::retune_train`] changes the period for the
//!   intervals *after* the already-materialized next tick.  Neither affects
//!   any other event's order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A pending one-shot event inside [`HeapEventQueue`]: payload kept inline
/// (the baseline deliberately pays the payload-moving cost the calendar
/// queue's arena avoids).
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> Scheduled<E> {
    /// The total order of the queue: earliest time first, insertion order
    /// (`seq`) among simultaneous events.
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped first.
        other.key().cmp(&self.key())
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A pending one-shot inside the calendar queue: the `(time, seq, slot_idx)`
/// triple the wheel shuffles.  `Copy` regardless of the payload type — the
/// payload itself lives in the [`Arena`] at `slot`.
#[derive(Debug, Clone, Copy)]
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl Entry {
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Same max-heap inversion as `Scheduled`, for the `early` min-heap.
        other.key().cmp(&self.key())
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Slab of event payloads with free-list reuse: steady-state scheduling
/// (pop one, schedule one) recycles slots and never allocates.
#[derive(Debug, Clone)]
struct Arena<E> {
    slots: Vec<Option<E>>,
    free: Vec<u32>,
}

impl<E> Arena<E> {
    fn new() -> Self {
        Arena { slots: Vec::new(), free: Vec::new() }
    }

    fn insert(&mut self, payload: E) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(payload);
                slot
            }
            None => {
                assert!(self.slots.len() < u32::MAX as usize, "event arena exhausted");
                self.slots.push(Some(payload));
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn take(&mut self, slot: u32) -> E {
        let payload = self.slots[slot as usize].take().expect("arena slot is occupied");
        self.free.push(slot);
        payload
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }

    #[cfg(test)]
    fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Handle to a periodic event train created by
/// [`EventQueue::schedule_periodic`] / [`HeapEventQueue::schedule_periodic`],
/// used to cancel or retune it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrainId(u64);

/// A lazily-materialized fixed-period event generator.
#[derive(Debug, Clone)]
struct Train<E> {
    id: TrainId,
    /// FIFO tie-break rank of *every* tick: the sequence number consumed by
    /// the `schedule_periodic` call (see the module docs).
    seq: u64,
    /// Firing time of the next (not yet emitted) tick.
    next: SimTime,
    period: SimDuration,
    payload: E,
}

impl<E> Train<E> {
    fn tick_key(&self) -> (SimTime, u64) {
        (self.next, self.seq)
    }
}

/// Number of periods per train materialized into the tick cache on each
/// [`EventQueue::refill_tick_cache`] — the amortization window.  Bigger
/// windows amortize the refill sort further but waste more work when a
/// train is cancelled or retuned mid-window.
const TICK_CACHE_PERIODS: u64 = 8;

/// Index of the train whose next tick pops first, by `(time, seq)`.
/// O(number of trains) — used by the [`HeapEventQueue`] reference
/// implementation throughout, and by the calendar queue only on the cold
/// path when its tick cache can't represent the window.
fn best_train<E>(trains: &[Train<E>]) -> Option<usize> {
    trains.iter().enumerate().min_by_key(|(_, t)| t.tick_key()).map(|(i, _)| i)
}

/// Initial / minimum number of wheel slots (always a power of two so the
/// slot index is a mask).
const MIN_WHEEL_SLOTS: usize = 512;
/// Maximum number of wheel slots the adaptive resize may grow to.
const MAX_WHEEL_SLOTS: usize = 1 << 17;
/// Initial log2 of the bucket width in microseconds: 1024 µs ≈ 1 ms per
/// bucket, so the initial wheel spans ~0.5 s of simulated time —
/// comfortably more than the scheduling horizon of the periodic tasks and
/// MAC slots the KARYON models use, while keeping the wheel a few KiB.
const INITIAL_BUCKET_SHIFT: u32 = 10;
/// Widest bucket the adaptive resize may widen to (2^26 µs ≈ 67 s).
const MAX_BUCKET_SHIFT: u32 = 26;
/// Occupancy the resize aims for: a handful of events per bucket keeps the
/// per-bucket sort negligible while buckets stay dense enough to scan.
const TARGET_OCCUPANCY: usize = 16;
/// Occupancy that triggers a shrink (hysteresis above the target).
const HIGH_OCCUPANCY: usize = 64;

/// A priority queue of events ordered by firing time (earliest first), with
/// deterministic FIFO tie-breaking for simultaneous events.
///
/// Storage model: payloads live in a slab **arena** with free-list reuse;
/// the queue structure itself (the two-tier calendar wheel, see the module
/// docs) holds only `Copy` `(time, seq, slot_idx)` entries, so geometry
/// changes move a few machine words per event and steady-state operation
/// allocates nothing.  Fixed-period traffic can bypass the wheel entirely
/// via [`EventQueue::schedule_periodic`] trains, merged at pop time.
///
/// Pop order is bit-identical to [`HeapEventQueue`] — including FIFO ties
/// and mixed train + one-shot workloads — which the property tests assert.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// The entries of the current bucket (global index [`EventQueue::epoch`])
    /// only, sorted *descending* by `(time, seq)` so the earliest is popped
    /// from the back in O(1).
    current: Vec<Entry>,
    /// Entries scheduled *before* the current bucket (legal after pops, e.g.
    /// a bulk fill in arbitrary time order).  A small min-heap: the shared
    /// `(time, seq)` key makes the pop-side merge with `current` exact.
    early: BinaryHeap<Entry>,
    /// Wheel of unsorted buckets: an entry with global bucket index `g` in
    /// `(epoch, epoch + slots)` lives in slot `g & (slots - 1)`.  Allocated
    /// lazily on the first schedule beyond the current bucket.
    wheel: Vec<Vec<Entry>>,
    /// Entries at least a full wheel rotation ahead of `epoch`; folded back
    /// into the wheel when the cursor reaches them.
    overflow: Vec<Entry>,
    /// Smallest bucket index of any overflow entry (`u64::MAX` when empty):
    /// the wheel scan must never advance past it.
    overflow_min: u64,
    /// Global bucket index of `current` (time >> `shift`).
    epoch: u64,
    /// log2 of the bucket width in microseconds.  Adapted so bucket
    /// occupancy stays near [`TARGET_OCCUPANCY`].
    shift: u32,
    /// Number of wheel slots (power of two).  Adapted together with `shift`
    /// so one rotation covers the pending-event horizon.
    slots: usize,
    /// Number of pending *one-shot* events (trains are counted separately).
    one_shots: usize,
    next_seq: u64,
    /// Payload storage for one-shot events.
    arena: Arena<E>,
    /// Active periodic trains, merged at pop time.
    trains: Vec<Train<E>>,
    /// Merged upcoming train ticks, each packed `(time µs << 16) | train
    /// index`, sorted ascending; consumed from `tick_cursor`.  A pure cache
    /// of the merge order — the trains' `next` fields stay authoritative,
    /// so any membership or cadence change simply invalidates it (see
    /// [`EventQueue::refill_tick_cache`]).
    tick_cache: Vec<u64>,
    /// First unconsumed entry of `tick_cache`.
    tick_cursor: usize,
    next_train_id: u64,
    /// Scratch buffer reused by [`EventQueue::schedule_batch`].
    batch: Vec<Entry>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            current: Vec::new(),
            early: BinaryHeap::new(),
            wheel: Vec::new(),
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            epoch: 0,
            shift: INITIAL_BUCKET_SHIFT,
            slots: MIN_WHEEL_SLOTS,
            one_shots: 0,
            next_seq: 0,
            arena: Arena::new(),
            trains: Vec::new(),
            tick_cache: Vec::new(),
            tick_cursor: 0,
            next_train_id: 0,
            batch: Vec::new(),
        }
    }

    /// The global bucket index of an instant under the current bucket width.
    #[inline]
    fn bucket_of(&self, time: SimTime) -> u64 {
        time.as_micros() >> self.shift
    }

    /// Schedules `payload` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.arena.insert(payload);
        let entry = Entry { time, seq, slot };
        self.file(entry);
        self.one_shots += 1;
    }

    /// Files an entry under the current geometry, rebasing the wheel first
    /// when no one-shots are pending.
    fn file(&mut self, entry: Entry) {
        let g = self.bucket_of(entry.time);
        if self.one_shots == 0 {
            // No pending one-shots: rebase the wheel on the new entry so no
            // empty buckets ever need scanning to reach it.
            self.epoch = g;
            self.current.push(entry);
        } else if g < self.epoch {
            self.early.push(entry);
        } else if g == self.epoch {
            // Keep `current` sorted descending by (time, seq); `seq` is
            // unique, so the search never finds an equal key.
            let key = entry.key();
            let at =
                self.current.binary_search_by(|probe| probe.key().cmp(&key).reverse()).unwrap_err();
            self.current.insert(at, entry);
        } else if g - self.epoch < self.slots as u64 {
            if self.wheel.is_empty() {
                // Lazy allocation; a rebuild keeps `wheel.len() == slots`.
                self.wheel.resize_with(self.slots, Vec::new);
            }
            self.wheel[(g & (self.slots as u64 - 1)) as usize].push(entry);
        } else {
            self.overflow_min = self.overflow_min.min(g);
            self.overflow.push(entry);
        }
    }

    /// Schedules every `(time, payload)` in `events`, draining the vector.
    ///
    /// Equivalent to calling [`EventQueue::schedule`] in order — events
    /// receive sequence numbers in their staging order, so FIFO tie order is
    /// identical — but same-bucket groups (in particular same-timestamp
    /// bursts, the common case for a handler that fans out several events at
    /// one instant) are filed with **one** bucket computation and one
    /// insertion per group instead of one binary-search insert per event.
    pub fn schedule_batch(&mut self, events: &mut Vec<(SimTime, E)>) {
        if events.len() <= 1 {
            if let Some((time, payload)) = events.pop() {
                self.schedule(time, payload);
            }
            return;
        }
        let mut batch = std::mem::take(&mut self.batch);
        batch.clear();
        for (time, payload) in events.drain(..) {
            let seq = self.next_seq;
            self.next_seq += 1;
            let slot = self.arena.insert(payload);
            batch.push(Entry { time, seq, slot });
        }
        if self.one_shots == 0 {
            // Same rebase a single schedule on an empty queue performs.
            let lo = batch.iter().map(|e| e.time).min().expect("batch has >= 2 events");
            self.epoch = self.bucket_of(lo);
        }
        self.one_shots += batch.len();
        // Ascending (time, seq) order makes same-bucket events contiguous
        // runs; seq assignment already happened in staging order above, so
        // sorting here cannot perturb FIFO ties.
        batch.sort_unstable_by_key(Entry::key);
        let mut i = 0;
        while i < batch.len() {
            let g = self.bucket_of(batch[i].time);
            let mut j = i + 1;
            while j < batch.len() && self.bucket_of(batch[j].time) == g {
                j += 1;
            }
            let run = &batch[i..j];
            if g < self.epoch {
                for entry in run {
                    self.early.push(*entry);
                }
            } else if g == self.epoch {
                Self::merge_into_current(&mut self.current, run);
            } else if g - self.epoch < self.slots as u64 {
                if self.wheel.is_empty() {
                    self.wheel.resize_with(self.slots, Vec::new);
                }
                self.wheel[(g & (self.slots as u64 - 1)) as usize].extend_from_slice(run);
            } else {
                self.overflow_min = self.overflow_min.min(g);
                self.overflow.extend_from_slice(run);
            }
            i = j;
        }
        self.batch = batch;
    }

    /// Merges an ascending-sorted run into the descending-sorted `current`
    /// bucket.  The fast path — the whole run falls into one gap, which is
    /// always true for a same-timestamp burst (existing entries at that time
    /// have strictly smaller seqs) — costs one binary search and one splice.
    fn merge_into_current(current: &mut Vec<Entry>, run: &[Entry]) {
        let lo_key = run[0].key();
        let hi_key = run[run.len() - 1].key();
        let at = current.binary_search_by(|probe| probe.key().cmp(&lo_key).reverse()).unwrap_err();
        if at == 0 || current[at - 1].key() > hi_key {
            current.splice(at..at, run.iter().rev().copied());
        } else {
            // Existing entries interleave with the run's time span: fall
            // back to per-entry sorted insertion.
            for entry in run {
                let key = entry.key();
                let at =
                    current.binary_search_by(|probe| probe.key().cmp(&key).reverse()).unwrap_err();
                current.insert(at, *entry);
            }
        }
    }

    /// Registers a periodic event **train**: `payload` fires at `start`,
    /// `start + period`, `start + 2·period`, … until
    /// [cancelled](EventQueue::cancel_train).  Each tick clones the payload.
    ///
    /// Ticks are lazily materialized and merged at pop time in O(number of
    /// trains) — no per-tick wheel traffic.  The train consumes one sequence
    /// number at this call; see the module docs for the resulting FIFO
    /// tie-order contract (the train behaves as if every tick had been
    /// scheduled up front at this instant).
    ///
    /// # Panics
    /// Panics if `period` is zero (the tick train would never advance time).
    pub fn schedule_periodic(
        &mut self,
        start: SimTime,
        period: SimDuration,
        payload: E,
    ) -> TrainId {
        assert!(!period.is_zero(), "a periodic train needs a non-zero period");
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = TrainId(self.next_train_id);
        self.next_train_id += 1;
        self.trains.push(Train { id, seq, next: start, period, payload });
        self.invalidate_tick_cache();
        id
    }

    /// Cancels a train: no further ticks fire.  Returns the train's payload,
    /// or `None` if `id` is unknown (e.g. already cancelled).
    pub fn cancel_train(&mut self, id: TrainId) -> Option<E> {
        let at = self.trains.iter().position(|t| t.id == id)?;
        self.invalidate_tick_cache();
        Some(self.trains.remove(at).payload)
    }

    /// Drops all cached (not yet popped) train ticks.  Called on every
    /// train membership or cadence change: the cache is derived purely from
    /// the trains' `next`/`period` fields, so this is always safe.
    fn invalidate_tick_cache(&mut self) {
        self.tick_cache.clear();
        self.tick_cursor = 0;
    }

    /// Rebuilds the merged-tick cache: materializes every train tick below
    /// the window bound `T = minᵢ(nextᵢ + TICK_CACHE_PERIODS · periodᵢ)`
    /// and sorts the packed entries once.  The bound shape guarantees both
    /// progress (`T` exceeds the earliest `next`, so at least one tick
    /// materializes) and a size cap (train *i* contributes at most
    /// `TICK_CACHE_PERIODS` ticks, since `T − nextᵢ ≤ TICK_CACHE_PERIODS ·
    /// periodᵢ`).  Ties at one instant sort by train index, which equals
    /// seq order: trains are stored in creation order.
    ///
    /// Returns false — cache left empty, callers fall back to the
    /// [`best_train`] scan — when the packing can't represent the window:
    /// 2¹⁶ or more trains, or tick times at 2⁴⁸ µs (≈ 8.9 simulated years)
    /// and beyond.
    ///
    /// # Panics
    /// Panics if no train is live (callers check).
    fn refill_tick_cache(&mut self) -> bool {
        self.invalidate_tick_cache();
        if self.trains.len() >= 1 << 16 {
            return false;
        }
        let bound = self
            .trains
            .iter()
            .map(|t| {
                t.next
                    .as_micros()
                    .saturating_add(t.period.as_micros().saturating_mul(TICK_CACHE_PERIODS))
            })
            .min()
            .expect("refill_tick_cache needs a live train");
        if bound >= 1 << 48 {
            return false;
        }
        for (i, t) in self.trains.iter().enumerate() {
            let mut tick = t.next.as_micros();
            while tick < bound {
                self.tick_cache.push((tick << 16) | i as u64);
                tick += t.period.as_micros();
            }
        }
        self.tick_cache.sort_unstable();
        debug_assert!(!self.tick_cache.is_empty(), "the window bound exceeds the earliest tick");
        true
    }

    /// Changes a train's period for the intervals *after* its next
    /// (already-materialized) tick.  Returns false if `id` is unknown.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn retune_train(&mut self, id: TrainId, period: SimDuration) -> bool {
        assert!(!period.is_zero(), "a periodic train needs a non-zero period");
        match self.trains.iter_mut().find(|t| t.id == id) {
            Some(train) => {
                train.period = period;
                self.invalidate_tick_cache();
                true
            }
            None => false,
        }
    }

    /// Number of active periodic trains.
    pub fn active_trains(&self) -> usize {
        self.trains.len()
    }

    /// The earliest pending one-shot key, if any.  The advance invariant
    /// guarantees `current`/`early` hold the global one-shot minimum.
    fn one_shot_head(&self) -> Option<(SimTime, u64)> {
        match (self.early.peek(), self.current.last()) {
            (Some(e), Some(c)) => Some(e.key().min(c.key())),
            (Some(e), None) => Some(e.key()),
            (None, Some(c)) => Some(c.key()),
            (None, None) => None,
        }
    }

    /// The firing time of the earliest pending event (one-shot or train
    /// tick), if any.
    pub fn next_time(&self) -> Option<SimTime> {
        let one_shot = self.one_shot_head().map(|(t, _)| t);
        // The cache head, when live, *is* the earliest train tick; otherwise
        // scan (`&self` can't refill).
        let tick = match self.tick_cache.get(self.tick_cursor) {
            Some(&packed) => Some(SimTime::from_micros(packed >> 16)),
            None => self.trains.iter().map(|t| t.next).min(),
        };
        match (one_shot, tick) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of pending events.  Each active train counts as one (its
    /// materialized next tick); popping a tick does not shrink the queue,
    /// because the following tick takes its place.
    pub fn len(&self) -> usize {
        self.one_shots + self.trains.len()
    }

    /// True when no events are pending and no train is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all pending events and cancels all trains.
    pub fn clear(&mut self) {
        self.current.clear();
        self.early.clear();
        for slot in &mut self.wheel {
            slot.clear();
        }
        self.overflow.clear();
        self.overflow_min = u64::MAX;
        self.one_shots = 0;
        self.arena.clear();
        self.trains.clear();
        self.invalidate_tick_cache();
    }

    /// Refills `current` with the next pending bucket.  Called only while
    /// one-shots are pending and `current`/`early` are empty, and guaranteed
    /// to leave `current` non-empty.
    ///
    /// The wheel scan must stop at [`EventQueue::overflow_min`]: an overflow
    /// entry's bucket may lie *inside* the current rotation (the window has
    /// moved over it since it was parked), so advancing past it would pop
    /// out of order.  When the scan cannot proceed, [`EventQueue::rebase`]
    /// folds wheel and overflow back together under a fresh geometry.
    fn advance(&mut self) {
        if !self.wheel.is_empty() {
            // The next non-empty slot in global-bucket order holds exactly
            // the entries of one bucket: slots are only populated within one
            // rotation of `epoch`, so indices cannot collide.
            for step in 1..self.slots as u64 {
                let g = self.epoch + step;
                if g >= self.overflow_min {
                    break;
                }
                let slot = (g & (self.slots as u64 - 1)) as usize;
                if !self.wheel[slot].is_empty() {
                    self.epoch = g;
                    std::mem::swap(&mut self.current, &mut self.wheel[slot]);
                    self.sort_current();
                    if self.current.len() > HIGH_OCCUPANCY && self.shift > 0 {
                        self.rebuild();
                    }
                    return;
                }
            }
        }
        self.rebase();
    }

    /// Drains every wheel slot and the overflow into one vector.
    fn gather_far(&mut self) -> Vec<Entry> {
        let mut all = Vec::new();
        for slot in &mut self.wheel {
            all.append(slot);
        }
        all.append(&mut self.overflow);
        self.overflow_min = u64::MAX;
        all
    }

    /// Re-anchors the queue on the earliest entry still pending in the wheel
    /// or overflow, re-deriving the geometry from the observed density, and
    /// redistributes everything.  This is the adaptation point for *sparse*
    /// or far-jumping workloads (and the recovery path when overflow entries
    /// block the wheel scan).  O(pending) over `Copy` entries — payloads
    /// never move — amortised over the rotation that made it necessary.
    fn rebase(&mut self) {
        let all = self.gather_far();
        debug_assert!(!all.is_empty(), "advance() called on an empty queue");
        let lo = all.iter().map(|s| s.time).min().expect("non-empty");
        let hi = all.iter().map(|s| s.time).max().expect("non-empty");
        self.adopt_geometry(lo, hi, all.len());
        self.epoch = self.bucket_of(lo);
        self.redistribute(all);
        self.sort_current();
    }

    /// Re-derives the geometry from the (too dense) freshly-adopted
    /// `current` bucket and redistributes the wheel and overflow under it,
    /// merging entries that now share the current bucket into `current`.
    /// This is the adaptation point for *dense* workloads.  O(pending),
    /// amortised by the occupancy hysteresis that triggers it.
    fn rebuild(&mut self) {
        let occupancy = self.current.len();
        let width = 1u64 << self.shift;
        // Estimated pending span at the observed density, for sizing.
        let pending = (self.one_shots - self.early.len()).max(1);
        let span = (width.saturating_mul(pending as u64) / occupancy.max(1) as u64).max(1);
        let far = self.gather_far();
        let lo = self.current.last().expect("rebuild needs a current bucket").time;
        self.adopt_geometry(lo, SimTime::from_micros(lo.as_micros().saturating_add(span)), pending);
        // `current` holds the earliest pending bucket, so its largest member
        // anchors the new epoch; wheel/overflow entries are all later and
        // redistribute to buckets ≥ it.
        self.epoch = self.bucket_of(self.current.first().expect("non-empty").time);
        self.redistribute(far);
        self.sort_current();
    }

    /// Files each entry under the current geometry: the current bucket (or
    /// earlier), the wheel window, or the overflow.
    fn redistribute(&mut self, entries: Vec<Entry>) {
        if self.wheel.len() != self.slots {
            self.wheel = Vec::new();
            self.wheel.resize_with(self.slots, Vec::new);
        }
        for entry in entries {
            let g = self.bucket_of(entry.time);
            if g <= self.epoch {
                self.current.push(entry);
            } else if g - self.epoch < self.slots as u64 {
                self.wheel[(g & (self.slots as u64 - 1)) as usize].push(entry);
            } else {
                self.overflow_min = self.overflow_min.min(g);
                self.overflow.push(entry);
            }
        }
    }

    /// Picks a bucket width and wheel size so that `count` events spread
    /// over `[lo, hi]` land near [`TARGET_OCCUPANCY`] per bucket with the
    /// whole span inside one wheel rotation.
    fn adopt_geometry(&mut self, lo: SimTime, hi: SimTime, count: usize) {
        let span = (hi.as_micros().saturating_sub(lo.as_micros())).max(1);
        // Bucket width ≈ span × target / count, as a power of two.
        let ideal_width =
            (span.saturating_mul(TARGET_OCCUPANCY as u64) / count.max(1) as u64).max(1);
        let shift = (63 - ideal_width.leading_zeros()).min(MAX_BUCKET_SHIFT);
        // One rotation must cover the span at that width.
        let needed = (span >> shift) + 2;
        let slots = needed.next_power_of_two().clamp(MIN_WHEEL_SLOTS as u64, MAX_WHEEL_SLOTS as u64)
            as usize;
        self.shift = shift;
        self.slots = slots;
    }

    /// Sorts `current` descending by `(time, seq)`; keys are unique, so an
    /// unstable sort is exact.
    fn sort_current(&mut self) {
        self.current.sort_unstable_by_key(|s| std::cmp::Reverse(s.key()));
    }
}

impl<E: Clone> EventQueue<E> {
    /// Removes and returns the earliest pending event as `(time, payload)`.
    ///
    /// A train tick clones the train's payload and materializes the
    /// following tick in place.  Steady state reads the sorted tick cache
    /// at a cursor — the per-tick merge cost is one packed compare, with
    /// the O(n log n) window refill amortized over ~`TICK_CACHE_PERIODS ×
    /// active_trains` pops — and never touches the wheel.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.tick_cursor == self.tick_cache.len() && !self.trains.is_empty() {
            self.refill_tick_cache();
        }
        // (time, seq, index, cached) of the due train tick, if any.
        let tick = match self.tick_cache.get(self.tick_cursor) {
            Some(&packed) => {
                let ti = (packed & 0xFFFF) as usize;
                Some((SimTime::from_micros(packed >> 16), self.trains[ti].seq, ti, true))
            }
            // Cache unrepresentable (see refill_tick_cache): exact scan.
            None => best_train(&self.trains).map(|ti| {
                let t = &self.trains[ti];
                (t.next, t.seq, ti, false)
            }),
        };
        let take_train = match (self.one_shot_head(), tick) {
            // Keys never collide: train seqs come from the same counter.
            (Some(key), Some((t, s, _, _))) => (t, s) < key,
            (None, Some(_)) => true,
            (_, None) => false,
        };
        if take_train {
            let (time, _, ti, cached) = tick.expect("matched above");
            self.tick_cursor += usize::from(cached);
            let train = &mut self.trains[ti];
            debug_assert_eq!(train.next, time, "cache head tracks the train's next tick");
            train.next = time + train.period;
            return Some((time, train.payload.clone()));
        }
        let take_early = match (self.early.peek(), self.current.last()) {
            (Some(e), Some(c)) => e.key() < c.key(),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let entry = if take_early {
            self.early.pop().expect("peeked above")
        } else {
            self.current.pop().expect("peeked above")
        };
        self.one_shots -= 1;
        if self.current.is_empty() && self.early.is_empty() && self.one_shots > 0 {
            self.advance();
        }
        Some((entry.time, self.arena.take(entry.slot)))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.next_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }
}

/// The classic `BinaryHeap` event queue: the reference implementation of the
/// pop-order contract and the baseline `e16_campaign_throughput` measures the
/// calendar queue against.  Implements the same [periodic
/// train](EventQueue::schedule_periodic) semantics, so the property tests can
/// assert heap≡calendar identity over mixed train + one-shot workloads.
#[derive(Debug, Clone)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    trains: Vec<Train<E>>,
    next_seq: u64,
    next_train_id: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            trains: Vec::new(),
            next_seq: 0,
            next_train_id: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Schedules every `(time, payload)` in `events`, draining the vector.
    /// Behaviorally identical to scheduling them in order.
    pub fn schedule_batch(&mut self, events: &mut Vec<(SimTime, E)>) {
        for (time, payload) in events.drain(..) {
            self.schedule(time, payload);
        }
    }

    /// Registers a periodic event train — identical semantics to
    /// [`EventQueue::schedule_periodic`].
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn schedule_periodic(
        &mut self,
        start: SimTime,
        period: SimDuration,
        payload: E,
    ) -> TrainId {
        assert!(!period.is_zero(), "a periodic train needs a non-zero period");
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = TrainId(self.next_train_id);
        self.next_train_id += 1;
        self.trains.push(Train { id, seq, next: start, period, payload });
        id
    }

    /// Cancels a train — identical semantics to
    /// [`EventQueue::cancel_train`].
    pub fn cancel_train(&mut self, id: TrainId) -> Option<E> {
        let at = self.trains.iter().position(|t| t.id == id)?;
        Some(self.trains.remove(at).payload)
    }

    /// Retunes a train — identical semantics to
    /// [`EventQueue::retune_train`].
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn retune_train(&mut self, id: TrainId, period: SimDuration) -> bool {
        assert!(!period.is_zero(), "a periodic train needs a non-zero period");
        match self.trains.iter_mut().find(|t| t.id == id) {
            Some(train) => {
                train.period = period;
                true
            }
            None => false,
        }
    }

    /// Number of active periodic trains.
    pub fn active_trains(&self) -> usize {
        self.trains.len()
    }

    /// The firing time of the earliest pending event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        let one_shot = self.heap.peek().map(|s| s.time);
        let tick = self.trains.iter().map(|t| t.next).min();
        match (one_shot, tick) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of pending events (each active train counts as one).
    pub fn len(&self) -> usize {
        self.heap.len() + self.trains.len()
    }

    /// True when no events are pending and no train is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all pending events and cancels all trains.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.trains.clear();
    }
}

impl<E: Clone> HeapEventQueue<E> {
    /// Removes and returns the earliest pending event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let take_train = match (self.heap.peek(), best_train(&self.trains)) {
            (Some(s), Some(ti)) => self.trains[ti].tick_key() < s.key(),
            (None, Some(_)) => true,
            (_, None) => false,
        };
        if take_train {
            let ti = best_train(&self.trains).expect("matched above");
            let train = &mut self.trains[ti];
            let time = train.next;
            train.next = time + train.period;
            return Some((time, train.payload.clone()));
        }
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.next_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::time::SimDuration;

    #[test]
    #[ignore = "manual microbenchmark"]
    fn train_micro() {
        let periods: Vec<SimDuration> =
            (0..16u64).map(|i| SimDuration::from_micros(50 + 7 * i)).collect();
        let ops = 4_000_000u64;

        // A: full public pop loop.
        let mut q: EventQueue<u64> = EventQueue::new();
        for (i, p) in periods.iter().enumerate() {
            q.schedule_periodic(SimTime::from_micros(i as u64), *p, i as u64);
        }
        let start = std::time::Instant::now();
        let mut acc = 0u64;
        for _ in 0..ops {
            let (t, p) = q.pop().unwrap();
            acc ^= t.as_micros().wrapping_add(p);
        }
        println!(
            "A full pop       : {:.1} ns/op (acc {acc})",
            start.elapsed().as_nanos() as f64 / ops as f64
        );

        // B: family-sized fleet (2 trains).
        let mut q2: EventQueue<u64> = EventQueue::new();
        for (i, p) in periods.iter().take(2).enumerate() {
            q2.schedule_periodic(SimTime::from_micros(i as u64), *p, i as u64);
        }
        let start = std::time::Instant::now();
        let mut acc = 0u64;
        for _ in 0..ops {
            let (t, p) = q2.pop().unwrap();
            acc ^= t.as_micros().wrapping_add(p);
        }
        println!(
            "B 2-train pop    : {:.1} ns/op (acc {acc})",
            start.elapsed().as_nanos() as f64 / ops as f64
        );

        // C: heap one-shot baseline (pop + reschedule), same workload.
        let mut h: HeapEventQueue<u64> = HeapEventQueue::new();
        for (i, _) in periods.iter().enumerate() {
            h.schedule(SimTime::from_micros(i as u64), i as u64);
        }
        let start = std::time::Instant::now();
        let mut acc = 0u64;
        for _ in 0..ops {
            let (t, task) = h.pop().unwrap();
            h.schedule(t + periods[task as usize], task);
            acc ^= t.as_micros();
        }
        println!(
            "C heap one-shots : {:.1} ns/op (acc {acc})",
            start.elapsed().as_nanos() as f64 / ops as f64
        );

        // D: single-train fast path — isolates pop()'s fixed overhead.
        let mut q3: EventQueue<u64> = EventQueue::new();
        q3.schedule_periodic(SimTime::ZERO, SimDuration::from_micros(50), 7);
        let start = std::time::Instant::now();
        let mut acc = 0u64;
        for _ in 0..ops {
            let (t, p) = q3.pop().unwrap();
            acc ^= t.as_micros().wrapping_add(p);
        }
        println!(
            "D 1-train pop    : {:.1} ns/op (acc {acc})",
            start.elapsed().as_nanos() as f64 / ops as f64
        );
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(q.pop_until(SimTime::from_millis(15)), Some((SimTime::from_millis(10), 1)));
        assert_eq!(q.pop_until(SimTime::from_millis(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn next_time_and_clear() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.next_time(), Some(SimTime::from_secs(1)));
        q.clear();
        assert!(q.is_empty());
        // The queue is reusable after a clear.
        q.schedule(SimTime::from_millis(2), ());
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), ())));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 0u64);
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, v)) = q.pop() {
            assert!(t >= last);
            last = t;
            popped += 1;
            if v < 20 {
                q.schedule(t + SimDuration::from_millis(3), v + 1);
                q.schedule(t + SimDuration::from_millis(1), v + 1);
            }
        }
        assert!(popped > 20);
    }

    #[test]
    fn scheduling_earlier_than_the_last_pop_is_honoured() {
        // The calendar cursor must not lose events scheduled "behind" it.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        q.schedule(SimTime::from_secs(20), "later");
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), "late")));
        q.schedule(SimTime::from_secs(1), "early");
        q.schedule(SimTime::from_millis(500), "earlier");
        assert_eq!(q.pop(), Some((SimTime::from_millis(500), "earlier")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(20), "later")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_events_survive_the_overflow_path() {
        // Events far beyond one wheel rotation (≈ 0.5 s) are parked in the
        // overflow and must come back in exact order, including FIFO ties.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3600), 1u32);
        q.schedule(SimTime::from_millis(1), 0);
        q.schedule(SimTime::from_secs(3600), 2);
        q.schedule(SimTime::from_secs(7200), 3);
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), 0)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3600), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3600), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(7200), 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn arena_recycles_slots_in_steady_state() {
        // Hold model at a fixed resident size: after warm-up, the slab must
        // stop growing — freed slots are reused, so steady-state scheduling
        // allocates nothing.
        let mut q = EventQueue::new();
        for i in 0..64u64 {
            q.schedule(SimTime::from_micros(i * 10), i);
        }
        let warm = q.arena.capacity();
        for _ in 0..10_000 {
            let (t, v) = q.pop().expect("hold model never drains");
            q.schedule(t + SimDuration::from_micros(997), v);
        }
        assert_eq!(q.arena.capacity(), warm, "steady-state hold model must not grow the arena");
    }

    #[test]
    fn batch_preserves_fifo_and_time_order() {
        // A same-timestamp burst staged as a batch must interleave exactly
        // like individual schedules: earlier schedules win ties.
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(7);
        q.schedule(t, 0u64);
        let mut staged: Vec<(SimTime, u64)> =
            vec![(t, 1), (SimTime::from_millis(3), 2), (t, 3), (SimTime::from_millis(9), 4)];
        q.schedule_batch(&mut staged);
        assert!(staged.is_empty(), "the batch drains the staging buffer");
        q.schedule(t, 5);
        assert_eq!(q.pop(), Some((SimTime::from_millis(3), 2)));
        assert_eq!(q.pop(), Some((t, 0)));
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 3)));
        assert_eq!(q.pop(), Some((t, 5)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(9), 4)));
        assert!(q.is_empty());
    }

    #[test]
    fn batch_on_an_empty_queue_rebases_like_a_single_schedule() {
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        let mut a = vec![
            (SimTime::from_secs(100), 0u64),
            (SimTime::from_micros(3), 1),
            (SimTime::from_secs(100), 2),
        ];
        let mut b = a.clone();
        cal.schedule_batch(&mut a);
        heap.schedule_batch(&mut b);
        for _ in 0..3 {
            assert_eq!(cal.pop(), heap.pop());
        }
        assert!(cal.is_empty());
    }

    #[test]
    fn periodic_train_emits_the_expected_ticks() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule_periodic(SimTime::from_millis(10), SimDuration::from_millis(5), "tick");
        assert_eq!(q.len(), 1, "a train counts as one pending event");
        assert!(!q.is_empty());
        for k in 0..5u64 {
            assert_eq!(q.next_time(), Some(SimTime::from_millis(10 + 5 * k)));
            assert_eq!(q.pop(), Some((SimTime::from_millis(10 + 5 * k), "tick")));
        }
        assert_eq!(q.len(), 1, "the train regenerates after every tick");
    }

    #[test]
    fn train_ticks_win_ties_against_later_one_shots_and_lose_to_earlier() {
        // Rank contract: the train holds the seq of its creation call.
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "before");
        q.schedule_periodic(SimTime::from_millis(5), SimDuration::from_millis(5), "tick");
        q.schedule(SimTime::from_millis(5), "after");
        assert_eq!(q.pop(), Some((SimTime::from_millis(5), "tick")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(5), "after")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "before")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "tick")));
    }

    #[test]
    fn coincident_trains_tie_break_by_creation_order() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule_periodic(SimTime::from_millis(1), SimDuration::from_millis(2), 1);
        q.schedule_periodic(SimTime::from_millis(1), SimDuration::from_millis(2), 2);
        for _ in 0..3 {
            let (ta, a) = q.pop().unwrap();
            let (tb, b) = q.pop().unwrap();
            assert_eq!(ta, tb);
            assert_eq!((a, b), (1, 2), "creation order breaks coincident-tick ties");
        }
    }

    #[test]
    fn cancel_train_stops_ticks_and_returns_the_payload() {
        let mut q: EventQueue<&str> = EventQueue::new();
        let id = q.schedule_periodic(SimTime::ZERO, SimDuration::from_millis(1), "tick");
        assert_eq!(q.pop(), Some((SimTime::ZERO, "tick")));
        assert_eq!(q.cancel_train(id), Some("tick"));
        assert_eq!(q.cancel_train(id), None, "double cancel is inert");
        assert_eq!(q.active_trains(), 0);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn retune_train_changes_the_cadence_after_the_next_tick() {
        let mut q: EventQueue<&str> = EventQueue::new();
        let id = q.schedule_periodic(SimTime::ZERO, SimDuration::from_millis(10), "tick");
        assert_eq!(q.pop(), Some((SimTime::ZERO, "tick")));
        // The next tick (10 ms) is already materialized; the new 3 ms period
        // applies to the intervals after it.
        assert!(q.retune_train(id, SimDuration::from_millis(3)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "tick")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(13), "tick")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(16), "tick")));
        assert!(!q.retune_train(TrainId(99), SimDuration::from_millis(1)));
    }

    #[test]
    fn clear_cancels_trains_too() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule_periodic(SimTime::ZERO, SimDuration::from_millis(1), 1);
        q.schedule(SimTime::from_millis(4), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.active_trains(), 0);
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "non-zero period")]
    fn zero_period_trains_are_rejected() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule_periodic(SimTime::ZERO, SimDuration::ZERO, 1);
    }

    /// A train must behave exactly as if every tick had been scheduled up
    /// front at the `schedule_periodic` call (the eager-materialization
    /// reading of the seq contract), for any interleaving with one-shots.
    #[test]
    fn train_matches_eager_materialization() {
        let horizon = SimTime::from_millis(200);
        let mut train_q: EventQueue<u64> = EventQueue::new();
        let mut eager_q: EventQueue<u64> = EventQueue::new();
        // one-shot before the train, coincident with tick times
        for q in [&mut train_q, &mut eager_q] {
            q.schedule(SimTime::from_millis(30), 100);
        }
        train_q.schedule_periodic(SimTime::from_millis(10), SimDuration::from_millis(10), 7);
        let mut t = SimTime::from_millis(10);
        while t <= horizon {
            eager_q.schedule(t, 7);
            t += SimDuration::from_millis(10);
        }
        // one-shots after the train, again coincident
        for q in [&mut train_q, &mut eager_q] {
            q.schedule(SimTime::from_millis(30), 200);
            q.schedule(SimTime::from_millis(70), 201);
        }
        loop {
            let expected = eager_q.pop_until(horizon);
            assert_eq!(train_q.pop_until(horizon), expected);
            if expected.is_none() {
                break;
            }
        }
    }

    /// Exhaustive randomized parity check: the calendar queue and the heap
    /// queue must produce identical `(time, payload)` sequences under mixed
    /// schedule/pop workloads with dense ties and sparse far jumps.
    #[test]
    fn calendar_and_heap_queues_pop_identically() {
        for seed in 0..20u64 {
            let mut rng = Rng::seed_from(0xE16 + seed);
            let mut cal: EventQueue<u64> = EventQueue::new();
            let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
            let mut payload = 0u64;
            for _ in 0..2_000 {
                if rng.range_u64(0, 3) == 0 {
                    assert_eq!(cal.pop(), heap.pop());
                } else {
                    // Mix of dense (µs apart), tied, and far-future times.
                    let t = match rng.range_u64(0, 10) {
                        0..=5 => rng.range_u64(0, 50_000),
                        6..=7 => (rng.range_u64(0, 50) * 1_000) + 5_000,
                        8 => rng.range_u64(0, 5_000_000),
                        _ => rng.range_u64(0, 20_000_000_000),
                    };
                    cal.schedule(SimTime::from_micros(t), payload);
                    heap.schedule(SimTime::from_micros(t), payload);
                    payload += 1;
                }
                assert_eq!(cal.len(), heap.len());
                assert_eq!(cal.next_time(), heap.next_time());
            }
            while let Some(expected) = heap.pop() {
                assert_eq!(cal.pop(), Some(expected));
            }
            assert!(cal.is_empty());
        }
    }

    /// Relative hold-model parity: new events are scheduled relative to the
    /// popped time with a mix of tiny, tied, and huge deltas — the pattern
    /// that drives the adaptive resize (and once exposed an overflow event
    /// being passed by the wheel cursor).
    #[test]
    fn calendar_matches_heap_under_hold_model_with_resizes() {
        for seed in 0..10u64 {
            let mut rng = Rng::seed_from(0xCA1 + seed);
            let mut cal: EventQueue<u64> = EventQueue::new();
            let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
            cal.schedule(SimTime::from_millis(1), 0);
            heap.schedule(SimTime::from_millis(1), 0);
            let mut payload = 1u64;
            for _ in 0..5_000 {
                let expected = heap.pop();
                assert_eq!(cal.pop(), expected);
                let Some((t, _)) = expected else { break };
                let fanout = rng.range_u64(0, 2);
                for _ in 0..fanout {
                    let delta = match rng.range_u64(0, 9) {
                        0..=3 => rng.range_u64(0, 3),                     // ties / adjacent µs
                        4..=6 => rng.range_u64(500, 2_000),               // same-ish bucket
                        7 => rng.range_u64(100_000, 1_000_000),           // beyond the window
                        _ => rng.range_u64(1_000_000_000, 5_000_000_000), // deep overflow
                    };
                    cal.schedule(t + SimDuration::from_micros(delta), payload);
                    heap.schedule(t + SimDuration::from_micros(delta), payload);
                    payload += 1;
                }
                assert_eq!(cal.next_time(), heap.next_time());
            }
        }
    }

    #[test]
    fn heap_queue_baseline_contract() {
        let mut q = HeapEventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(SimTime::from_millis(2), "b");
        q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(1), "a2");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "a")));
        assert_eq!(q.pop_until(SimTime::from_millis(1)), Some((SimTime::from_millis(1), "a2")));
        assert_eq!(q.pop_until(SimTime::from_millis(1)), None);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn heap_queue_trains_match_calendar_trains() {
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        let cal_id = cal.schedule_periodic(SimTime::from_millis(2), SimDuration::from_millis(3), 1);
        let heap_id =
            heap.schedule_periodic(SimTime::from_millis(2), SimDuration::from_millis(3), 1);
        assert_eq!(cal_id, heap_id, "both queues allocate train ids identically");
        for q_step in 0..20 {
            assert_eq!(cal.next_time(), heap.next_time());
            assert_eq!(cal.len(), heap.len());
            if q_step == 7 {
                assert!(cal.retune_train(cal_id, SimDuration::from_millis(9)));
                assert!(heap.retune_train(heap_id, SimDuration::from_millis(9)));
            }
            assert_eq!(cal.pop(), heap.pop());
        }
        assert_eq!(cal.cancel_train(cal_id), heap.cancel_train(heap_id));
        assert_eq!(cal.pop(), None);
        assert_eq!(heap.pop(), None);
    }
}

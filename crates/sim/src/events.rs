//! Time-ordered event queue.
//!
//! The queue is the core of the discrete-event engine: events are popped in
//! non-decreasing time order, with FIFO order among events scheduled for the
//! same instant (insertion order breaks ties).  Deterministic tie-breaking is
//! required for reproducible fault-injection campaigns.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: the payload plus the instant at which it fires.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of events ordered by firing time (earliest first),
/// with deterministic FIFO tie-breaking for simultaneous events.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// The firing time of the earliest pending event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Removes and returns the earliest pending event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.next_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(q.pop_until(SimTime::from_millis(15)), Some((SimTime::from_millis(10), 1)));
        assert_eq!(q.pop_until(SimTime::from_millis(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn next_time_and_clear() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.next_time(), Some(SimTime::from_secs(1)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 0u64);
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, v)) = q.pop() {
            assert!(t >= last);
            last = t;
            popped += 1;
            if v < 20 {
                q.schedule(t + SimDuration::from_millis(3), v + 1);
                q.schedule(t + SimDuration::from_millis(1), v + 1);
            }
        }
        assert!(popped > 20);
    }
}

//! Time-ordered event queues.
//!
//! The queue is the core of the discrete-event engine: events are popped in
//! non-decreasing time order, with FIFO order among events scheduled for the
//! same instant (insertion order breaks ties).  Deterministic tie-breaking is
//! required for reproducible fault-injection campaigns.
//!
//! Two implementations share that contract:
//!
//! * [`EventQueue`] — the default, a two-tier **calendar (bucket) queue**.
//!   The near future is spread over a wheel of fixed-width time buckets, the
//!   far future lives in an overflow pool that is folded back into the wheel
//!   as simulation time advances.  For the hold-model workloads a
//!   discrete-event simulation produces (pop the earliest event, schedule a
//!   handful a short delay ahead) scheduling is O(1) and popping is amortized
//!   O(1), independent of the number of pending events — where a binary heap
//!   pays O(log n) pointer-chasing per operation.
//! * [`HeapEventQueue`] — the classic `BinaryHeap` implementation, kept as
//!   the reference baseline: the calendar queue is property-tested to pop in
//!   exactly the same order, and `e16_campaign_throughput` measures the
//!   speedup against it.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: the payload plus the instant at which it fires.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> Scheduled<E> {
    /// The total order of the queue: earliest time first, insertion order
    /// (`seq`) among simultaneous events.
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped first.
        other.key().cmp(&self.key())
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Initial / minimum number of wheel slots (always a power of two so the
/// slot index is a mask).
const MIN_WHEEL_SLOTS: usize = 512;
/// Maximum number of wheel slots the adaptive resize may grow to.
const MAX_WHEEL_SLOTS: usize = 1 << 17;
/// Initial log2 of the bucket width in microseconds: 1024 µs ≈ 1 ms per
/// bucket, so the initial wheel spans ~0.5 s of simulated time —
/// comfortably more than the scheduling horizon of the periodic tasks and
/// MAC slots the KARYON models use, while keeping the wheel a few KiB.
const INITIAL_BUCKET_SHIFT: u32 = 10;
/// Widest bucket the adaptive resize may widen to (2^26 µs ≈ 67 s).
const MAX_BUCKET_SHIFT: u32 = 26;
/// Occupancy the resize aims for: a handful of events per bucket keeps the
/// per-bucket sort negligible while buckets stay dense enough to scan.
const TARGET_OCCUPANCY: usize = 16;
/// Occupancy that triggers a shrink (hysteresis above the target).
const HIGH_OCCUPANCY: usize = 64;

/// A priority queue of events ordered by firing time (earliest first), with
/// deterministic FIFO tie-breaking for simultaneous events.
///
/// Implemented as a two-tier calendar queue (see the module docs); pop order
/// is bit-identical to [`HeapEventQueue`], which the property tests assert.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// The events of the current bucket (global index [`EventQueue::epoch`])
    /// only, sorted *descending* by `(time, seq)` so the earliest is popped
    /// from the back in O(1).
    current: Vec<Scheduled<E>>,
    /// Events scheduled *before* the current bucket (legal after pops, e.g.
    /// a bulk fill in arbitrary time order).  A small min-heap: the shared
    /// `(time, seq)` key makes the pop-side merge with `current` exact.
    early: BinaryHeap<Scheduled<E>>,
    /// Wheel of unsorted buckets: an event with global bucket index `g` in
    /// `(epoch, epoch + slots)` lives in slot `g & (slots - 1)`.  Allocated
    /// lazily on the first schedule beyond the current bucket.
    wheel: Vec<Vec<Scheduled<E>>>,
    /// Events at least a full wheel rotation ahead of `epoch`; folded back
    /// into the wheel when the cursor reaches them.
    overflow: Vec<Scheduled<E>>,
    /// Smallest bucket index of any overflow event (`u64::MAX` when empty):
    /// the wheel scan must never advance past it.
    overflow_min: u64,
    /// Global bucket index of `current` (time >> `shift`).
    epoch: u64,
    /// log2 of the bucket width in microseconds.  Adapted so bucket
    /// occupancy stays near [`TARGET_OCCUPANCY`].
    shift: u32,
    /// Number of wheel slots (power of two).  Adapted together with `shift`
    /// so one rotation covers the pending-event horizon.
    slots: usize,
    len: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            current: Vec::new(),
            early: BinaryHeap::new(),
            wheel: Vec::new(),
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            epoch: 0,
            shift: INITIAL_BUCKET_SHIFT,
            slots: MIN_WHEEL_SLOTS,
            len: 0,
            next_seq: 0,
        }
    }

    /// The global bucket index of an instant under the current bucket width.
    #[inline]
    fn bucket_of(&self, time: SimTime) -> u64 {
        time.as_micros() >> self.shift
    }

    /// Schedules `payload` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let event = Scheduled { time, seq, payload };
        let g = self.bucket_of(time);
        if self.len == 0 {
            // Empty queue: rebase the wheel on the new event so no empty
            // buckets ever need scanning to reach it.
            self.epoch = g;
            self.current.push(event);
        } else if g < self.epoch {
            self.early.push(event);
        } else if g == self.epoch {
            // Keep `current` sorted descending by (time, seq); `seq` is
            // unique, so the search never finds an equal key.
            let key = event.key();
            let at =
                self.current.binary_search_by(|probe| probe.key().cmp(&key).reverse()).unwrap_err();
            self.current.insert(at, event);
        } else if g - self.epoch < self.slots as u64 {
            if self.wheel.is_empty() {
                // Lazy allocation; a rebuild keeps `wheel.len() == slots`.
                self.wheel.resize_with(self.slots, Vec::new);
            }
            self.wheel[(g & (self.slots as u64 - 1)) as usize].push(event);
        } else {
            self.overflow_min = self.overflow_min.min(g);
            self.overflow.push(event);
        }
        self.len += 1;
    }

    /// The firing time of the earliest pending event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        match (self.early.peek(), self.current.last()) {
            (Some(e), Some(c)) => Some(e.time.min(c.time)),
            (Some(e), None) => Some(e.time),
            (None, Some(c)) => Some(c.time),
            (None, None) => None,
        }
    }

    /// Removes and returns the earliest pending event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let take_early = match (self.early.peek(), self.current.last()) {
            (Some(e), Some(c)) => e.key() < c.key(),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let event = if take_early {
            self.early.pop().expect("peeked above")
        } else {
            self.current.pop().expect("peeked above")
        };
        self.len -= 1;
        if self.current.is_empty() && self.early.is_empty() && self.len > 0 {
            self.advance();
        }
        Some((event.time, event.payload))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.next_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.current.clear();
        self.early.clear();
        for slot in &mut self.wheel {
            slot.clear();
        }
        self.overflow.clear();
        self.overflow_min = u64::MAX;
        self.len = 0;
    }

    /// Refills `current` with the next pending bucket.  Called only while
    /// events are pending and `current`/`early` are empty, and guaranteed to
    /// leave `current` non-empty.
    ///
    /// The wheel scan must stop at [`EventQueue::overflow_min`]: an overflow
    /// event's bucket may lie *inside* the current rotation (the window has
    /// moved over it since it was parked), so advancing past it would pop
    /// out of order.  When the scan cannot proceed, [`EventQueue::rebase`]
    /// folds wheel and overflow back together under a fresh geometry.
    fn advance(&mut self) {
        if !self.wheel.is_empty() {
            // The next non-empty slot in global-bucket order holds exactly
            // the events of one bucket: slots are only populated within one
            // rotation of `epoch`, so indices cannot collide.
            for step in 1..self.slots as u64 {
                let g = self.epoch + step;
                if g >= self.overflow_min {
                    break;
                }
                let slot = (g & (self.slots as u64 - 1)) as usize;
                if !self.wheel[slot].is_empty() {
                    self.epoch = g;
                    std::mem::swap(&mut self.current, &mut self.wheel[slot]);
                    self.sort_current();
                    if self.current.len() > HIGH_OCCUPANCY && self.shift > 0 {
                        self.rebuild();
                    }
                    return;
                }
            }
        }
        self.rebase();
    }

    /// Drains every wheel slot and the overflow into one vector.
    fn gather_far(&mut self) -> Vec<Scheduled<E>> {
        let mut all = Vec::new();
        for slot in &mut self.wheel {
            all.append(slot);
        }
        all.append(&mut self.overflow);
        self.overflow_min = u64::MAX;
        all
    }

    /// Re-anchors the queue on the earliest event still pending in the wheel
    /// or overflow, re-deriving the geometry from the observed density, and
    /// redistributes everything.  This is the adaptation point for *sparse*
    /// or far-jumping workloads (and the recovery path when overflow events
    /// block the wheel scan).  O(pending), amortised over the rotation that
    /// made it necessary.
    fn rebase(&mut self) {
        let all = self.gather_far();
        debug_assert!(!all.is_empty(), "advance() called on an empty queue");
        let lo = all.iter().map(|s| s.time).min().expect("non-empty");
        let hi = all.iter().map(|s| s.time).max().expect("non-empty");
        self.adopt_geometry(lo, hi, all.len());
        self.epoch = self.bucket_of(lo);
        self.redistribute(all);
        self.sort_current();
    }

    /// Re-derives the geometry from the (too dense) freshly-adopted
    /// `current` bucket and redistributes the wheel and overflow under it,
    /// merging events that now share the current bucket into `current`.
    /// This is the adaptation point for *dense* workloads.  O(pending),
    /// amortised by the occupancy hysteresis that triggers it.
    fn rebuild(&mut self) {
        let occupancy = self.current.len();
        let width = 1u64 << self.shift;
        // Estimated pending span at the observed density, for sizing.
        let pending = (self.len - self.early.len()).max(1);
        let span = (width.saturating_mul(pending as u64) / occupancy.max(1) as u64).max(1);
        let far = self.gather_far();
        let lo = self.current.last().expect("rebuild needs a current bucket").time;
        self.adopt_geometry(lo, SimTime::from_micros(lo.as_micros().saturating_add(span)), pending);
        // `current` holds the earliest pending bucket, so its largest member
        // anchors the new epoch; wheel/overflow events are all later and
        // redistribute to buckets ≥ it.
        self.epoch = self.bucket_of(self.current.first().expect("non-empty").time);
        self.redistribute(far);
        self.sort_current();
    }

    /// Files each event under the current geometry: the current bucket (or
    /// earlier), the wheel window, or the overflow.
    fn redistribute(&mut self, events: Vec<Scheduled<E>>) {
        if self.wheel.len() != self.slots {
            self.wheel = Vec::new();
            self.wheel.resize_with(self.slots, Vec::new);
        }
        for event in events {
            let g = self.bucket_of(event.time);
            if g <= self.epoch {
                self.current.push(event);
            } else if g - self.epoch < self.slots as u64 {
                self.wheel[(g & (self.slots as u64 - 1)) as usize].push(event);
            } else {
                self.overflow_min = self.overflow_min.min(g);
                self.overflow.push(event);
            }
        }
    }

    /// Picks a bucket width and wheel size so that `count` events spread
    /// over `[lo, hi]` land near [`TARGET_OCCUPANCY`] per bucket with the
    /// whole span inside one wheel rotation.
    fn adopt_geometry(&mut self, lo: SimTime, hi: SimTime, count: usize) {
        let span = (hi.as_micros().saturating_sub(lo.as_micros())).max(1);
        // Bucket width ≈ span × target / count, as a power of two.
        let ideal_width =
            (span.saturating_mul(TARGET_OCCUPANCY as u64) / count.max(1) as u64).max(1);
        let shift = (63 - ideal_width.leading_zeros()).min(MAX_BUCKET_SHIFT);
        // One rotation must cover the span at that width.
        let needed = (span >> shift) + 2;
        let slots = needed.next_power_of_two().clamp(MIN_WHEEL_SLOTS as u64, MAX_WHEEL_SLOTS as u64)
            as usize;
        self.shift = shift;
        self.slots = slots;
    }

    /// Sorts `current` descending by `(time, seq)`; keys are unique, so an
    /// unstable sort is exact.
    fn sort_current(&mut self) {
        self.current.sort_unstable_by_key(|s| std::cmp::Reverse(s.key()));
    }
}

/// The classic `BinaryHeap` event queue: the reference implementation of the
/// pop-order contract and the baseline `e16_campaign_throughput` measures the
/// calendar queue against.
#[derive(Debug, Clone)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapEventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// The firing time of the earliest pending event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Removes and returns the earliest pending event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.next_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(q.pop_until(SimTime::from_millis(15)), Some((SimTime::from_millis(10), 1)));
        assert_eq!(q.pop_until(SimTime::from_millis(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn next_time_and_clear() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.next_time(), Some(SimTime::from_secs(1)));
        q.clear();
        assert!(q.is_empty());
        // The queue is reusable after a clear.
        q.schedule(SimTime::from_millis(2), ());
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), ())));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 0u64);
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, v)) = q.pop() {
            assert!(t >= last);
            last = t;
            popped += 1;
            if v < 20 {
                q.schedule(t + SimDuration::from_millis(3), v + 1);
                q.schedule(t + SimDuration::from_millis(1), v + 1);
            }
        }
        assert!(popped > 20);
    }

    #[test]
    fn scheduling_earlier_than_the_last_pop_is_honoured() {
        // The calendar cursor must not lose events scheduled "behind" it.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        q.schedule(SimTime::from_secs(20), "later");
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), "late")));
        q.schedule(SimTime::from_secs(1), "early");
        q.schedule(SimTime::from_millis(500), "earlier");
        assert_eq!(q.pop(), Some((SimTime::from_millis(500), "earlier")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(20), "later")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_events_survive_the_overflow_path() {
        // Events far beyond one wheel rotation (≈ 0.5 s) are parked in the
        // overflow and must come back in exact order, including FIFO ties.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3600), 1u32);
        q.schedule(SimTime::from_millis(1), 0);
        q.schedule(SimTime::from_secs(3600), 2);
        q.schedule(SimTime::from_secs(7200), 3);
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), 0)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3600), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3600), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(7200), 3)));
        assert!(q.is_empty());
    }

    /// Exhaustive randomized parity check: the calendar queue and the heap
    /// queue must produce identical `(time, payload)` sequences under mixed
    /// schedule/pop workloads with dense ties and sparse far jumps.
    #[test]
    fn calendar_and_heap_queues_pop_identically() {
        for seed in 0..20u64 {
            let mut rng = Rng::seed_from(0xE16 + seed);
            let mut cal: EventQueue<u64> = EventQueue::new();
            let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
            let mut payload = 0u64;
            for _ in 0..2_000 {
                if rng.range_u64(0, 3) == 0 {
                    assert_eq!(cal.pop(), heap.pop());
                } else {
                    // Mix of dense (µs apart), tied, and far-future times.
                    let t = match rng.range_u64(0, 10) {
                        0..=5 => rng.range_u64(0, 50_000),
                        6..=7 => (rng.range_u64(0, 50) * 1_000) + 5_000,
                        8 => rng.range_u64(0, 5_000_000),
                        _ => rng.range_u64(0, 20_000_000_000),
                    };
                    cal.schedule(SimTime::from_micros(t), payload);
                    heap.schedule(SimTime::from_micros(t), payload);
                    payload += 1;
                }
                assert_eq!(cal.len(), heap.len());
                assert_eq!(cal.next_time(), heap.next_time());
            }
            while let Some(expected) = heap.pop() {
                assert_eq!(cal.pop(), Some(expected));
            }
            assert!(cal.is_empty());
        }
    }

    /// Relative hold-model parity: new events are scheduled relative to the
    /// popped time with a mix of tiny, tied, and huge deltas — the pattern
    /// that drives the adaptive resize (and once exposed an overflow event
    /// being passed by the wheel cursor).
    #[test]
    fn calendar_matches_heap_under_hold_model_with_resizes() {
        for seed in 0..10u64 {
            let mut rng = Rng::seed_from(0xCA1 + seed);
            let mut cal: EventQueue<u64> = EventQueue::new();
            let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
            cal.schedule(SimTime::from_millis(1), 0);
            heap.schedule(SimTime::from_millis(1), 0);
            let mut payload = 1u64;
            for _ in 0..5_000 {
                let expected = heap.pop();
                assert_eq!(cal.pop(), expected);
                let Some((t, _)) = expected else { break };
                let fanout = rng.range_u64(0, 2);
                for _ in 0..fanout {
                    let delta = match rng.range_u64(0, 9) {
                        0..=3 => rng.range_u64(0, 3),                     // ties / adjacent µs
                        4..=6 => rng.range_u64(500, 2_000),               // same-ish bucket
                        7 => rng.range_u64(100_000, 1_000_000),           // beyond the window
                        _ => rng.range_u64(1_000_000_000, 5_000_000_000), // deep overflow
                    };
                    cal.schedule(t + SimDuration::from_micros(delta), payload);
                    heap.schedule(t + SimDuration::from_micros(delta), payload);
                    payload += 1;
                }
                assert_eq!(cal.next_time(), heap.next_time());
            }
        }
    }

    #[test]
    fn heap_queue_baseline_contract() {
        let mut q = HeapEventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(SimTime::from_millis(2), "b");
        q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(1), "a2");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "a")));
        assert_eq!(q.pop_until(SimTime::from_millis(1)), Some((SimTime::from_millis(1), "a2")));
        assert_eq!(q.pop_until(SimTime::from_millis(1)), None);
        q.clear();
        assert!(q.is_empty());
    }
}

//! Plain-text table rendering for the experiment harnesses.
//!
//! Every experiment prints its results as an aligned ASCII table (the
//! reproduction's equivalent of the paper's tables/figures); EXPERIMENTS.md
//! quotes these tables verbatim.

use std::fmt::Write as _;

/// A simple column-aligned ASCII table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.  Rows shorter than the header are padded with blanks;
    /// longer rows are truncated to the header width.
    pub fn add_row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.iter().take(self.headers.len()).cloned().collect();
        while row.len() < self.headers.len() {
            row.push(String::new());
        }
        self.rows.push(row);
    }

    /// Convenience for rows built from `&str` literals and formatted values.
    pub fn add_row_str(&mut self, cells: &[&str]) {
        self.add_row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:<width$}", h, width = widths[i]))
            .collect();
        let _ = writeln!(out, "| {} |", header_line.join(" | "));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with 3 decimal places (the default precision used in the
/// experiment tables).
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a float as a percentage with one decimal place.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.add_row(&["alpha".to_string(), "1".to_string()]);
        t.add_row(&["b".to_string(), "12345".to_string()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| name  | value |"));
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.contains("| b     | 12345 |"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new("", &["a", "b", "c"]);
        t.add_row(&["1".to_string()]);
        t.add_row(&["1".to_string(), "2".to_string(), "3".to_string(), "4".to_string()]);
        let s = t.render();
        assert!(!s.contains('4'));
        assert_eq!(t.rows[0].len(), 3);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt_pct(0.3333), "33.3%");
        let mut t = Table::new("x", &["h"]);
        t.add_row_str(&["v"]);
        assert!(t.render().contains("| v |"));
    }
}

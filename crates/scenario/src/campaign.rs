//! The campaign runner: grid × seed-sweep expansion and parallel chunked
//! execution.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::{Duration, Instant};

use karyon_sim::{splitmix64, SimDuration};
use karyon_telemetry::{trace, RunCoords, TraceRecord};

use crate::aggregate::{CampaignAccumulator, ChunkPartial, DEFAULT_CHUNK_SIZE};
use crate::checkpoint::{self, Checkpointer};
use crate::fault::FaultInjector;
use crate::grid::ParamGrid;
use crate::json::JsonValue;
use crate::recovery::WallClockBackoff;
use crate::registry::ScenarioRegistry;
use crate::report::{CampaignReport, PointReport};
use crate::scenario::{RunRecord, Scenario};
use crate::sink::{RunMeta, RunSink};
use crate::spec::{ParamValue, ScenarioSpec};
use crate::telemetry::CampaignTelemetry;

/// Derives the RNG seed of one run from the campaign seed and the run's
/// canonical coordinates (global parameter-point index, replication index).
///
/// The derivation depends only on those coordinates — never on thread
/// identity or execution order — which is what makes campaign results
/// reproducible regardless of the worker count.  Two splitmix64 rounds over
/// the mixed-in coordinates give well-separated streams even for adjacent
/// points and replications.
pub fn derive_run_seed(campaign_seed: u64, point: u64, replication: u64) -> u64 {
    let mut state = campaign_seed ^ point.wrapping_mul(0xA076_1D64_78BD_642F);
    let first = splitmix64(&mut state);
    let mut state = first ^ replication.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    splitmix64(&mut state)
}

/// One scenario family's slice of a campaign: the family name, the parameter
/// grid to expand and the Monte-Carlo seed sweep per parameter point.
#[derive(Debug, Clone)]
pub struct CampaignEntry {
    scenario: String,
    grid: ParamGrid,
    replications: u64,
    duration: Option<SimDuration>,
}

impl CampaignEntry {
    /// Creates an entry for the named scenario family with an empty grid and
    /// a single replication.
    pub fn new(scenario: &str) -> Self {
        CampaignEntry {
            scenario: scenario.to_string(),
            grid: ParamGrid::new(),
            replications: 1,
            duration: None,
        }
    }

    /// Sets the parameter grid.
    pub fn grid(mut self, grid: ParamGrid) -> Self {
        self.grid = grid;
        self
    }

    /// Sets the number of Monte-Carlo replications (distinct derived seeds)
    /// per parameter point.
    ///
    /// # Panics
    /// Panics if `replications` is zero.
    pub fn replications(mut self, replications: u64) -> Self {
        assert!(replications > 0, "a campaign entry needs at least one replication");
        self.replications = replications;
        self
    }

    /// Overrides the simulated duration of every run of this entry.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.duration = Some(duration);
        self
    }

    /// Overrides the simulated duration in whole seconds.
    pub fn duration_secs(self, secs: u64) -> Self {
        self.duration(SimDuration::from_secs(secs))
    }

    /// Number of runs this entry contributes.
    pub fn run_count(&self) -> u64 {
        self.grid.len() as u64 * self.replications
    }

    /// The scenario family this entry sweeps.
    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    /// Builds an entry from one member of a campaign spec file's `entries`
    /// array: `{"scenario": "platoon", "replications": 30, "duration_secs":
    /// 140, "grid": {"mode": ["kernel", "los0"]}}`.  Every field but
    /// `scenario` is optional; unknown fields are rejected so a typo cannot
    /// silently configure a different sweep than the file reads.
    pub fn from_json(value: &JsonValue) -> Result<CampaignEntry, String> {
        let members = value.as_object().ok_or_else(|| {
            format!("a campaign entry must be a JSON object, not {}", value.type_name())
        })?;
        for (key, _) in members {
            if !matches!(
                key.as_str(),
                "scenario" | "replications" | "duration_secs" | "duration_micros" | "grid"
            ) {
                return Err(format!(
                    "unknown entry field {key:?} (known: scenario, replications, \
                     duration_secs, duration_micros, grid)"
                ));
            }
        }
        let scenario = value
            .get("scenario")
            .and_then(JsonValue::as_str)
            .ok_or("an entry needs a string \"scenario\" field")?;
        let mut entry = CampaignEntry::new(scenario);
        if let Some(reps) = value.get("replications") {
            let reps = reps
                .as_u64()
                .filter(|n| *n > 0)
                .ok_or("\"replications\" must be a positive integer")?;
            entry = entry.replications(reps);
        }
        match (value.get("duration_secs"), value.get("duration_micros")) {
            (Some(_), Some(_)) => {
                return Err(
                    "set either \"duration_secs\" or \"duration_micros\", not both".to_string()
                )
            }
            (Some(secs), None) => {
                let secs =
                    secs.as_u64().ok_or("\"duration_secs\" must be a non-negative integer")?;
                entry = entry.duration_secs(secs);
            }
            (None, Some(micros)) => {
                let micros =
                    micros.as_u64().ok_or("\"duration_micros\" must be a non-negative integer")?;
                entry = entry.duration(SimDuration::from_micros(micros));
            }
            (None, None) => {}
        }
        if let Some(grid) = value.get("grid") {
            entry = entry.grid(ParamGrid::from_json(grid)?);
        }
        Ok(entry)
    }
}

/// One fully expanded parameter point: the coordinates every run of the point
/// shares.  The canonical work list is *not* materialised per run — a run is
/// reconstructed from its global index, which keeps campaign memory
/// proportional to the number of points, not the number of runs.
#[derive(Debug, Clone)]
struct PointDef {
    scenario: String,
    params: BTreeMap<String, ParamValue>,
    replications: u64,
    duration: Option<SimDuration>,
    /// Global index of the point's first run.
    first_run: u64,
}

/// Execution statistics of one campaign run, returned by
/// [`Campaign::run_instrumented`].  Deliberately *not* part of
/// [`CampaignReport`]: these numbers depend on scheduling (worker count,
/// chunk completion order) and would break the bit-identity contract if they
/// travelled with the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerStats {
    /// Worker threads used.
    pub workers: usize,
    /// Canonical chunks executed **by this session** (a resumed session
    /// counts only the chunks past the checkpoint watermark).
    pub chunks: u64,
    /// Peak number of completed chunks held for in-order merging.
    pub peak_pending_chunks: usize,
    /// Peak number of raw [`RunRecord`]s resident awaiting canonical-order
    /// processing (0 unless a sink is attached).  Bounded by
    /// `chunk_size × in-flight window`, never by the run count.
    pub peak_resident_records: u64,
}

/// How a checkpointed campaign session ended: with the full report, or at a
/// bounded-session boundary with a checkpoint on disk to resume from.
///
/// Returned by [`Campaign::run_checkpointed`] and [`Campaign::resume`]; the
/// plain [`Campaign::run`] family always runs to completion and returns the
/// report directly.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignOutcome {
    /// Every canonical chunk was merged; this is the final report —
    /// bit-identical to an uninterrupted run's, whatever the session history.
    Complete(CampaignReport),
    /// The session hit its
    /// [bounded work slice](Checkpointer::max_chunks_per_session) with work
    /// remaining; the checkpoint manifest at the session's end boundary is on
    /// disk and [`Campaign::resume`] continues from it.
    Interrupted {
        /// Canonical chunks merged so far (across all sessions).
        chunks_done: usize,
        /// Runs covered by the watermark.
        runs_done: u64,
    },
}

impl CampaignOutcome {
    /// True when the campaign ran to completion.
    pub fn is_complete(&self) -> bool {
        matches!(self, CampaignOutcome::Complete(_))
    }

    /// The final report, if the campaign completed.
    pub fn into_report(self) -> Option<CampaignReport> {
        match self {
            CampaignOutcome::Complete(report) => Some(report),
            CampaignOutcome::Interrupted { .. } => None,
        }
    }
}

/// A worker's result for one canonical chunk.
struct ChunkOutput {
    partial: ChunkPartial,
    /// `(global run index, record)` pairs, captured only when a sink needs
    /// them; drained in canonical order by the collector.
    records: Vec<(u64, RunRecord)>,
    /// `(global run index, trace records)` pairs, captured only when a trace
    /// sink is attached; drained in canonical order by the collector so the
    /// trace stream is bit-identical for any worker count.
    traces: Vec<(u64, Vec<TraceRecord>)>,
    /// Runs actually executed (the full chunk unless the abort flag cut it
    /// short).
    runs: u64,
    /// False when the worker observed the abort flag and stopped mid-chunk:
    /// the output covers only a prefix of the chunk's runs and must never be
    /// merged into the accumulator or covered by a checkpoint watermark.
    completed: bool,
    /// Wall-clock execution time of the chunk (telemetry only — never part
    /// of the deterministic report).
    elapsed: Duration,
    /// Index of the worker that executed the chunk (0 on the sequential
    /// path), for per-worker busy-time attribution.
    worker: usize,
}

/// Claim/merge coordination: workers may only claim a chunk while it is
/// within the in-flight window above the merge floor, which is what bounds
/// the memory the collector can ever have to buffer.
struct ChunkGate {
    state: Mutex<(usize, usize)>, // (next chunk to claim, chunks merged)
    ready: Condvar,
}

impl ChunkGate {
    /// A gate whose claim and merge frontiers start at chunk `start` (0 for
    /// a fresh campaign, the checkpoint watermark for a resumed one).
    fn new(start: usize) -> Self {
        ChunkGate { state: Mutex::new((start, start)), ready: Condvar::new() }
    }

    /// Claims the next chunk, waiting while the window is full.  Returns
    /// `None` when all chunks up to `end` are claimed or the campaign is
    /// aborting.
    fn claim(&self, end: usize, window: usize, abort: &AtomicBool) -> Option<usize> {
        let mut state = self.state.lock().expect("gate lock");
        loop {
            if abort.load(Ordering::Relaxed) || state.0 >= end {
                return None;
            }
            if state.0 < state.1 + window {
                let k = state.0;
                state.0 += 1;
                return Some(k);
            }
            state = self.ready.wait(state).expect("gate lock");
        }
    }

    /// Records one chunk as merged (or abandoned) and wakes waiting workers.
    fn advance(&self) {
        self.state.lock().expect("gate lock").1 += 1;
        self.ready.notify_all();
    }

    /// Wakes every waiting worker (used when aborting).
    fn wake_all(&self) {
        self.ready.notify_all();
    }

    /// Chunks claimed but not yet merged — the in-flight window's current
    /// occupancy (telemetry only).
    fn occupancy(&self) -> usize {
        let state = self.state.lock().expect("gate lock");
        state.0 - state.1
    }
}

/// A batch-runnable campaign: one or more [`CampaignEntry`]s executed over
/// `std::thread` workers with deterministic per-run seeds.
///
/// Determinism contract: for a fixed campaign seed, entry list and
/// [chunk size](Campaign::with_chunk_size), the [`CampaignReport`] is
/// bit-identical for every `threads` setting.  Workers only *execute* runs;
/// each run's seed is derived from its canonical coordinates
/// ([`derive_run_seed`]), each canonical chunk is reduced sequentially in
/// canonical run order, and chunk partials merge in canonical chunk order.
///
/// Memory model: runs are partitioned into canonical chunks and each run's
/// compact [`RunRecord`] is folded into its chunk's per-point streaming
/// aggregates ([`OnlineStats`](karyon_sim::OnlineStats) + bounded quantile
/// state, see [`crate::aggregate`]) the moment it finishes — no record
/// outlives its run unless a [`RunSink`] asked for it.  Workers may only be
/// a bounded window of chunks ahead of the canonical merge frontier, so peak
/// memory is O(points × chunks-in-flight) plus, with a sink attached, at
/// most `chunk_size × window` buffered records — independent of the total
/// run count either way.  A 10⁶-run campaign aggregates in the same
/// footprint as a 10³-run one.
#[derive(Debug, Clone)]
pub struct Campaign {
    name: String,
    seed: u64,
    threads: usize,
    chunk_size: usize,
    entries: Vec<CampaignEntry>,
}

impl Campaign {
    /// Creates an empty campaign with the given name and campaign seed.
    pub fn new(name: &str, seed: u64) -> Self {
        Campaign {
            name: name.to_string(),
            seed,
            threads: 0,
            chunk_size: DEFAULT_CHUNK_SIZE,
            entries: Vec::new(),
        }
    }

    /// Adds a scenario entry.
    pub fn entry(mut self, entry: CampaignEntry) -> Self {
        self.entries.push(entry);
        self
    }

    /// Sets the worker-thread count.  `0` (the default) uses the machine's
    /// available parallelism.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the canonical chunk size (runs per chunk; default
    /// [`DEFAULT_CHUNK_SIZE`]).
    ///
    /// The chunk size is part of the aggregation contract: reports are
    /// bit-identical across worker counts for a fixed chunk size, but
    /// changing it regroups the floating-point reduction and may change
    /// results in the last ulp.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "the canonical chunk size must be at least 1");
        self.chunk_size = chunk_size;
        self
    }

    /// The canonical chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// The campaign name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The campaign seed every per-run seed is derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured worker-thread count (0 = machine parallelism).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The campaign's entries, in declaration order.
    pub fn entries(&self) -> &[CampaignEntry] {
        &self.entries
    }

    /// Total number of runs the campaign will execute.
    pub fn run_count(&self) -> u64 {
        self.entries.iter().map(CampaignEntry::run_count).sum()
    }

    /// Number of canonical chunks the campaign partitions into.
    pub fn canonical_chunks(&self) -> usize {
        (self.run_count() as usize).div_ceil(self.chunk_size)
    }

    /// A stable 64-bit fingerprint of everything that determines the
    /// campaign's canonical run list and reduction: name, seed, chunk size
    /// and the full entry list (scenario families, replication counts,
    /// durations, grid axes **in order** with exactly typed values).
    ///
    /// The worker-thread count is deliberately excluded — a checkpoint taken
    /// by a 32-way run resumes fine on a single core.  Checkpoint manifests
    /// embed the fingerprint and [`Campaign::resume`] refuses one written by
    /// a different campaign definition, since its partials would be merged
    /// into the wrong reduction.
    pub fn fingerprint(&self) -> u64 {
        use std::fmt::Write as _;
        let mut text = format!(
            "karyon-campaign-fingerprint-v1 name={:?} seed={} chunk={}",
            self.name, self.seed, self.chunk_size
        );
        for entry in &self.entries {
            let _ = write!(
                text,
                " entry={:?} reps={} dur={:?}",
                entry.scenario,
                entry.replications,
                entry.duration.map(SimDuration::as_micros)
            );
            for (axis, values) in entry.grid.axes() {
                let _ = write!(text, " axis={axis:?}=[");
                for value in values {
                    // Type-tagged so Int(1), Float(1.0) and Text("1") hash
                    // apart; float identity is the bit pattern.
                    match value {
                        ParamValue::Int(i) => {
                            let _ = write!(text, "i{i},");
                        }
                        ParamValue::Float(f) => {
                            let _ = write!(text, "f{:016x},", f.to_bits());
                        }
                        ParamValue::Bool(b) => {
                            let _ = write!(text, "b{b},");
                        }
                        ParamValue::Text(s) => {
                            let _ = write!(text, "t{s:?},");
                        }
                    }
                }
                text.push(']');
            }
        }
        fnv1a64(text.as_bytes())
    }

    /// Builds a campaign from a JSON spec document — the format the
    /// `karyon-campaign` CLI consumes:
    ///
    /// ```
    /// use karyon_scenario::Campaign;
    ///
    /// let campaign = Campaign::from_json_str(r#"{
    ///     "name": "demo",
    ///     "seed": 42,
    ///     "chunk_size": 64,
    ///     "entries": [
    ///         {"scenario": "lane-change", "replications": 8,
    ///          "duration_secs": 30,
    ///          "grid": {"coordination": ["agreement", "none"]}}
    ///     ]
    /// }"#).expect("well-formed spec");
    /// assert_eq!(campaign.run_count(), 16);
    /// ```
    ///
    /// `chunk_size` and `threads` are optional (defaults: 4096 and machine
    /// parallelism); `entries` must name at least one scenario family.  Grid
    /// axes keep their file order, so the spec file pins the canonical run
    /// order — and with it the [fingerprint](Campaign::fingerprint) —
    /// exactly as written.
    pub fn from_json_str(text: &str) -> Result<Campaign, String> {
        let doc = JsonValue::parse(text)?;
        let members = doc.as_object().ok_or_else(|| {
            format!("a campaign spec must be a JSON object, not {}", doc.type_name())
        })?;
        for (key, _) in members {
            if !matches!(key.as_str(), "name" | "seed" | "chunk_size" | "threads" | "entries") {
                return Err(format!(
                    "unknown campaign field {key:?} (known: name, seed, chunk_size, threads, \
                     entries)"
                ));
            }
        }
        let name = doc
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("a campaign spec needs a string \"name\" field")?;
        let seed = doc
            .get("seed")
            .and_then(JsonValue::as_u64)
            .ok_or("a campaign spec needs a non-negative integer \"seed\" field")?;
        let mut campaign = Campaign::new(name, seed);
        if let Some(chunk) = doc.get("chunk_size") {
            let chunk = chunk
                .as_u64()
                .filter(|n| *n > 0)
                .ok_or("\"chunk_size\" must be a positive integer")?;
            campaign = campaign.with_chunk_size(chunk as usize);
        }
        if let Some(threads) = doc.get("threads") {
            let threads = threads
                .as_u64()
                .ok_or("\"threads\" must be a non-negative integer (0 = machine parallelism)")?;
            campaign = campaign.with_threads(threads as usize);
        }
        let entries = doc
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or("a campaign spec needs an \"entries\" array")?;
        if entries.is_empty() {
            return Err("a campaign spec needs at least one entry".to_string());
        }
        for (index, entry) in entries.iter().enumerate() {
            campaign = campaign.entry(
                CampaignEntry::from_json(entry).map_err(|e| format!("entry #{index}: {e}"))?,
            );
        }
        Ok(campaign)
    }

    /// Expands the entries into the flattened parameter-point list.
    fn expand_points(&self) -> (Vec<PointDef>, u64) {
        let mut points = Vec::new();
        let mut next_run = 0u64;
        for entry in &self.entries {
            for params in entry.grid.expand() {
                points.push(PointDef {
                    scenario: entry.scenario.clone(),
                    params,
                    replications: entry.replications,
                    duration: entry.duration,
                    first_run: next_run,
                });
                next_run += entry.replications;
            }
        }
        (points, next_run)
    }

    /// Instantiates the spec of one run of `point`.
    fn spec_for(&self, point_index: usize, point: &PointDef, replication: u64) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(&point.scenario)
            .with_params(point.params.clone())
            .with_seed(derive_run_seed(self.seed, point_index as u64, replication));
        if let Some(duration) = point.duration {
            spec = spec.with_duration(duration);
        }
        spec
    }

    /// Expands every entry's grid and seed sweep into the canonical run list,
    /// executes it in chunks across worker threads, and aggregates per
    /// parameter point in bounded memory.
    ///
    /// Returns an error naming the first entry whose scenario family is not
    /// in `registry` (checked up front, before any run executes).  A run that
    /// panics mid-campaign — e.g. an invalid parameter *value* that only the
    /// family's adapter can detect — also surfaces as an `Err` naming the
    /// offending spec, after in-flight runs wind down.
    pub fn run(&self, registry: &ScenarioRegistry) -> Result<CampaignReport, String> {
        self.run_instrumented(registry, None).map(|(report, _)| report)
    }

    /// Like [`Campaign::run`], additionally streaming every run's raw record
    /// to `sink` in canonical run order (see [`RunSink`]).
    pub fn run_with_sink(
        &self,
        registry: &ScenarioRegistry,
        sink: &mut dyn RunSink,
    ) -> Result<CampaignReport, String> {
        self.run_instrumented(registry, Some(sink)).map(|(report, _)| report)
    }

    /// Like [`Campaign::run`], additionally returning the runner's execution
    /// statistics (which are intentionally kept out of the deterministic
    /// report — see [`RunnerStats`]).
    pub fn run_instrumented(
        &self,
        registry: &ScenarioRegistry,
        sink: Option<&mut dyn RunSink>,
    ) -> Result<(CampaignReport, RunnerStats), String> {
        self.run_instrumented_with(registry, sink, CampaignTelemetry::none())
    }

    /// Like [`Campaign::run_instrumented`], with a
    /// [telemetry attachment](CampaignTelemetry): an optional deterministic
    /// trace sink (fed every run's virtual-time records in canonical run
    /// order — bit-identical for any worker count) and an optional wall-clock
    /// [`MetricsRegistry`](karyon_telemetry::MetricsRegistry) of runner
    /// throughput/latency metrics.
    ///
    /// Telemetry never changes the campaign's results: the report (and any
    /// `sink` stream) is bit-identical to an untraced run's.
    pub fn run_instrumented_with(
        &self,
        registry: &ScenarioRegistry,
        sink: Option<&mut dyn RunSink>,
        telemetry: CampaignTelemetry<'_>,
    ) -> Result<(CampaignReport, RunnerStats), String> {
        match self.run_from(registry, sink, None, 0, None, None, telemetry, None, None)? {
            (CampaignOutcome::Complete(report), stats) => Ok((report, stats)),
            (CampaignOutcome::Interrupted { .. }, _) => {
                unreachable!("without a checkpointer the session covers every chunk")
            }
        }
    }

    /// Like [`Campaign::run_instrumented`], additionally persisting a
    /// [checkpoint manifest](crate::checkpoint) through `ckpt` at its
    /// configured chunk cadence (and always at the session's final chunk
    /// boundary), so a killed process can [resume](Campaign::resume) instead
    /// of restarting.
    ///
    /// With a [bounded work slice](Checkpointer::max_chunks_per_session) the
    /// session may end early, returning
    /// [`CampaignOutcome::Interrupted`]; otherwise the outcome is
    /// [`CampaignOutcome::Complete`] with a report bit-identical to
    /// [`Campaign::run`]'s.  When `sink` streams JSONL artifacts alongside,
    /// it is flushed before every manifest write so the stream on disk never
    /// lags the checkpoint.
    pub fn run_checkpointed(
        &self,
        registry: &ScenarioRegistry,
        ckpt: &mut Checkpointer,
        sink: Option<&mut dyn RunSink>,
    ) -> Result<(CampaignOutcome, RunnerStats), String> {
        self.run_checkpointed_with(registry, ckpt, sink, CampaignTelemetry::none())
    }

    /// Like [`Campaign::run_checkpointed`], with a
    /// [telemetry attachment](CampaignTelemetry).  An attached trace sink is
    /// flushed (like the run sink) before every manifest write, so the trace
    /// stream on disk never lags the checkpoint.
    pub fn run_checkpointed_with(
        &self,
        registry: &ScenarioRegistry,
        ckpt: &mut Checkpointer,
        sink: Option<&mut dyn RunSink>,
        telemetry: CampaignTelemetry<'_>,
    ) -> Result<(CampaignOutcome, RunnerStats), String> {
        self.run_from(registry, sink, Some(ckpt), 0, None, None, telemetry, None, None)
    }

    /// Like [`Campaign::run_checkpointed_with`], executing under an armed
    /// [`FaultInjector`]: the runner probes the injector at its canonical
    /// points (chunk claims, per-run boundaries, pre-checkpoint sink flushes,
    /// post-manifest writes) and injected failures surface as ordinary runner
    /// errors carrying [`crate::fault::INJECTED_PREFIX`].
    ///
    /// Transient injected sink errors are healed in place by the
    /// checkpointer's [retry policy](Checkpointer::with_retry); fatal ones
    /// (worker death, torn manifests, mid-chunk aborts) end the session like
    /// a crash would, leaving checkpoint state a later
    /// [`Campaign::resume_chaos`] (or plain [`Campaign::resume`]) continues
    /// from — with a final report **bit-identical** to a fault-free run's.
    pub fn run_checkpointed_chaos(
        &self,
        registry: &ScenarioRegistry,
        ckpt: &mut Checkpointer,
        sink: Option<&mut dyn RunSink>,
        telemetry: CampaignTelemetry<'_>,
        faults: &FaultInjector,
    ) -> Result<(CampaignOutcome, RunnerStats), String> {
        self.run_from(registry, sink, Some(ckpt), 0, None, None, telemetry, Some(faults), None)
    }

    /// Resumes a checkpointed campaign from the manifest at `ckpt`'s path:
    /// validates the [fingerprint](Campaign::fingerprint) (same name, seed,
    /// chunk size and entry list — resume with a *different* worker count is
    /// fine), restores the aggregation state from the persisted partials,
    /// skips every canonical chunk at or below the watermark and continues
    /// with live workers.
    ///
    /// The final report is **bit-identical** to an uninterrupted run's, for
    /// any worker count and any interruption point.  A sink attached here
    /// receives only the runs *after* the watermark; to continue a JSONL
    /// stream, first cut it back to the manifest's `runs_done` lines with
    /// [`truncate_jsonl`](crate::checkpoint::truncate_jsonl) and reopen it
    /// in append mode.  Resuming an already-complete manifest executes
    /// nothing and re-emits the final report.
    pub fn resume(
        &self,
        registry: &ScenarioRegistry,
        ckpt: &mut Checkpointer,
        sink: Option<&mut dyn RunSink>,
    ) -> Result<(CampaignOutcome, RunnerStats), String> {
        self.resume_with(registry, ckpt, sink, CampaignTelemetry::none())
    }

    /// Like [`Campaign::resume`], with a
    /// [telemetry attachment](CampaignTelemetry).  A trace sink attached here
    /// receives only the runs *after* the watermark — appending the resumed
    /// session's trace stream to the interrupted session's yields a file
    /// bit-identical to an uninterrupted traced run's.
    pub fn resume_with(
        &self,
        registry: &ScenarioRegistry,
        ckpt: &mut Checkpointer,
        sink: Option<&mut dyn RunSink>,
        telemetry: CampaignTelemetry<'_>,
    ) -> Result<(CampaignOutcome, RunnerStats), String> {
        let manifest = ckpt.load()?;
        let (points, total_runs) = self.expand_points();
        manifest.validate_for(self, total_runs, points.len(), self.canonical_chunks())?;
        let start_chunk = manifest.chunks_done;
        let accumulator = manifest.into_accumulator();
        self.run_from(
            registry,
            sink,
            Some(ckpt),
            start_chunk,
            None,
            Some(accumulator),
            telemetry,
            None,
            None,
        )
    }

    /// Like [`Campaign::resume_with`], continuing under an armed
    /// [`FaultInjector`] — the resumed session of a chaos drill, sharing the
    /// injector (and its spent fault budgets) with the session that crashed.
    pub fn resume_chaos(
        &self,
        registry: &ScenarioRegistry,
        ckpt: &mut Checkpointer,
        sink: Option<&mut dyn RunSink>,
        telemetry: CampaignTelemetry<'_>,
        faults: &FaultInjector,
    ) -> Result<(CampaignOutcome, RunnerStats), String> {
        let manifest = ckpt.load()?;
        let (points, total_runs) = self.expand_points();
        manifest.validate_for(self, total_runs, points.len(), self.canonical_chunks())?;
        let start_chunk = manifest.chunks_done;
        let accumulator = manifest.into_accumulator();
        self.run_from(
            registry,
            sink,
            Some(ckpt),
            start_chunk,
            None,
            Some(accumulator),
            telemetry,
            Some(faults),
            None,
        )
    }

    /// Executes only the canonical chunks `[start_chunk, end_chunk)` — one
    /// shard of the campaign — returning the **per-chunk partials** in
    /// canonical chunk order, plus the session's [`RunnerStats`].
    ///
    /// This is the execution half of the shard protocol ([`crate::shard`]):
    /// each shard session runs an independent window of the canonical chunk
    /// range (with its own worker count — the window, like everything else,
    /// is thread-count-invariant) and persists the partials it produced.
    /// The merge half replays every shard's partials in global canonical
    /// chunk order through the same left-fold a single-machine run performs,
    /// which is why the merged report is **bit-identical** to an
    /// uninterrupted run's: per-chunk partials are the only shard artifact
    /// that preserves the exact floating-point operation sequence (merging
    /// pre-reduced per-shard accumulators would regroup it).
    ///
    /// A `sink` (and a trace sink in `telemetry`) attached here receives
    /// only the shard's runs, with **global** run indices/coordinates —
    /// shard JSONL/trace segments therefore concatenate byte-exactly, in
    /// shard order, into the stream an uninterrupted run writes.
    ///
    /// An empty window (`start_chunk == end_chunk`) is valid and executes
    /// nothing.  Errors if the window does not lie within the campaign's
    /// canonical chunk range.  There is no checkpointing inside a shard: the
    /// shard is the unit of retry — a faulted shard session is simply rerun
    /// from its window start.
    pub fn run_shard(
        &self,
        registry: &ScenarioRegistry,
        start_chunk: usize,
        end_chunk: usize,
        sink: Option<&mut dyn RunSink>,
    ) -> Result<(Vec<ChunkPartial>, RunnerStats), String> {
        self.run_shard_with(registry, start_chunk, end_chunk, sink, CampaignTelemetry::none(), None)
    }

    /// Like [`Campaign::run_shard`], with a
    /// [telemetry attachment](CampaignTelemetry) and an optional armed
    /// [`FaultInjector`] (probed exactly like
    /// [`Campaign::run_checkpointed_chaos`], with global chunk coordinates).
    pub fn run_shard_with(
        &self,
        registry: &ScenarioRegistry,
        start_chunk: usize,
        end_chunk: usize,
        sink: Option<&mut dyn RunSink>,
        telemetry: CampaignTelemetry<'_>,
        faults: Option<&FaultInjector>,
    ) -> Result<(Vec<ChunkPartial>, RunnerStats), String> {
        let chunks = self.canonical_chunks();
        if start_chunk > end_chunk || end_chunk > chunks {
            return Err(format!(
                "shard window [{start_chunk}, {end_chunk}) does not lie within campaign \
                 {:?}'s {chunks} canonical chunks",
                self.name
            ));
        }
        let mut partials: Vec<ChunkPartial> = Vec::with_capacity(end_chunk - start_chunk);
        let mut tap = |_chunk: usize, partial: &ChunkPartial| partials.push(partial.clone());
        let (_, stats) = self.run_from(
            registry,
            sink,
            None,
            start_chunk,
            Some(end_chunk),
            None,
            telemetry,
            faults,
            Some(&mut tap),
        )?;
        debug_assert_eq!(partials.len(), end_chunk - start_chunk);
        Ok((partials, stats))
    }
}

/// An optional observer invoked with each chunk partial at the
/// canonical-order merge frontier (see [`Campaign::run_from`]'s
/// `chunk_tap` parameter).
type ChunkTap<'a> = Option<&'a mut dyn FnMut(usize, &ChunkPartial)>;

impl Campaign {
    /// The shared session runner: executes canonical chunks
    /// `start_chunk..end` (where `end` is the chunk count, or earlier for a
    /// bounded checkpoint session or an explicit shard window) on 1..N
    /// workers, merging strictly in canonical order into `restored` (or a
    /// fresh accumulator).
    ///
    /// `chunk_tap`, when attached, observes every chunk partial at the
    /// canonical-order merge frontier — immediately before the partial is
    /// folded into the accumulator — which is how a shard session retains
    /// the per-chunk partials its manifest persists without disturbing the
    /// reduction.
    #[allow(clippy::too_many_arguments)]
    fn run_from(
        &self,
        registry: &ScenarioRegistry,
        mut sink: Option<&mut dyn RunSink>,
        mut ckpt: Option<&mut Checkpointer>,
        start_chunk: usize,
        end_override: Option<usize>,
        restored: Option<CampaignAccumulator>,
        mut telemetry: CampaignTelemetry<'_>,
        faults: Option<&FaultInjector>,
        mut chunk_tap: ChunkTap<'_>,
    ) -> Result<(CampaignOutcome, RunnerStats), String> {
        let (points, total_runs) = self.expand_points();
        let families = self.resolve_families(registry, &points)?;
        let chunks = (total_runs as usize).div_ceil(self.chunk_size);
        let end_chunk = match end_override {
            Some(end) => end,
            None => match &ckpt {
                Some(c) => c.session_end_chunk(start_chunk, chunks),
                None => chunks,
            },
        };
        let session_chunks = end_chunk - start_chunk;
        let workers = match self.threads {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
        .min(session_chunks.max(1));

        let mut accumulator = restored.unwrap_or_else(|| CampaignAccumulator::new(points.len()));
        let mut stats = RunnerStats {
            workers,
            chunks: session_chunks as u64,
            peak_pending_chunks: 0,
            peak_resident_records: 0,
        };
        let tracing = telemetry.tracing();
        let mut worker_busy = vec![Duration::ZERO; workers];

        if workers <= 1 {
            for chunk in start_chunk..end_chunk {
                let outcome = self.run_chunk(
                    &points,
                    &families,
                    chunk,
                    sink.is_some(),
                    tracing,
                    None,
                    faults,
                );
                let output = match outcome {
                    Ok(output) => output,
                    Err(error) => {
                        finish_session_metrics(&mut telemetry, &stats, &worker_busy, faults);
                        return Err(error);
                    }
                };
                debug_assert!(output.completed, "no abort flag on the sequential path");
                stats.peak_pending_chunks = stats.peak_pending_chunks.max(1);
                stats.peak_resident_records =
                    stats.peak_resident_records.max(output.records.len() as u64);
                worker_busy[0] += output.elapsed;
                if let Some(tap) = chunk_tap.as_deref_mut() {
                    tap(chunk, &output.partial);
                }
                self.merge_chunk(&points, &mut accumulator, output, &mut sink, &mut telemetry);
                if let Err(error) = self.checkpoint_if_due(
                    &mut ckpt,
                    &mut sink,
                    &mut telemetry,
                    chunk + 1,
                    end_chunk,
                    total_runs,
                    &accumulator,
                    faults,
                ) {
                    finish_session_metrics(&mut telemetry, &stats, &worker_busy, faults);
                    return Err(error);
                }
            }
            finish_session_metrics(&mut telemetry, &stats, &worker_busy, faults);
            return Ok(self.conclude(points, total_runs, accumulator, chunks, end_chunk, stats));
        }

        // Parallel path: workers claim canonical chunks through a windowed
        // gate, the main thread merges completed chunks strictly in
        // canonical order.  The window bounds how far execution may run
        // ahead of the merge frontier, which is what bounds peak memory.
        let window = workers * 2;
        let gate = ChunkGate::new(start_chunk);
        let abort = AtomicBool::new(false);
        let capture = sink.is_some();
        let (tx, rx) = mpsc::channel::<(usize, Result<ChunkOutput, String>)>();
        let mut first_error: Option<(usize, String)> = None;
        let mut saw_aborted_chunk = false;

        std::thread::scope(|scope| {
            for worker_index in 0..workers {
                let tx = tx.clone();
                let (gate, abort, points, families) = (&gate, &abort, &points, &families);
                scope.spawn(move || {
                    while let Some(chunk) = gate.claim(end_chunk, window, abort) {
                        let outcome = self
                            .run_chunk(
                                points,
                                families,
                                chunk,
                                capture,
                                tracing,
                                Some(abort),
                                faults,
                            )
                            .map(|mut output| {
                                output.worker = worker_index;
                                output
                            });
                        if outcome.is_err() {
                            abort.store(true, Ordering::Relaxed);
                            gate.wake_all();
                        }
                        if tx.send((chunk, outcome)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);

            let mut pending: BTreeMap<usize, ChunkOutput> = BTreeMap::new();
            let mut resident_records = 0u64;
            let mut next_merge = start_chunk;
            for (chunk, outcome) in rx {
                if let Some(metrics) = telemetry.metrics.as_deref_mut() {
                    // Sampled at every chunk completion: how full the
                    // in-flight window is (its mean near `window` means the
                    // merge frontier, not execution, is the bottleneck).
                    metrics
                        .configure_timer("campaign.gate_occupancy", 0.0, window as f64, window)
                        .record(gate.occupancy() as f64);
                }
                match outcome {
                    Err(error) => {
                        if first_error.as_ref().map_or(true, |(c, _)| chunk < *c) {
                            first_error = Some((chunk, error));
                        }
                        // Keep the window moving so workers drain quickly.
                        gate.advance();
                        if chunk == next_merge {
                            next_merge += 1;
                        }
                    }
                    Ok(output) if !output.completed => {
                        // A worker saw the abort flag mid-chunk: this output
                        // covers only a prefix of the chunk's runs.  The
                        // `Err` that raised the flag may still be in flight
                        // (mpsc ordering across senders is arbitrary), so
                        // merging — or letting a later merge checkpoint past
                        // this hole — would durably record runs that never
                        // executed.  Drop it, remember the session has a
                        // hole, and keep the window moving so workers drain.
                        saw_aborted_chunk = true;
                        worker_busy[output.worker] += output.elapsed;
                        gate.advance();
                        if chunk == next_merge {
                            next_merge += 1;
                        }
                    }
                    Ok(output) => {
                        resident_records += output.records.len() as u64;
                        worker_busy[output.worker] += output.elapsed;
                        pending.insert(chunk, output);
                        stats.peak_pending_chunks = stats.peak_pending_chunks.max(pending.len());
                        stats.peak_resident_records =
                            stats.peak_resident_records.max(resident_records);
                    }
                }
                while let Some(output) = pending.remove(&next_merge) {
                    resident_records -= output.records.len() as u64;
                    let merged_chunk = next_merge;
                    next_merge += 1;
                    gate.advance();
                    if first_error.is_some() || saw_aborted_chunk {
                        // The session is doomed to return Err: drop the
                        // output instead of merging — no checkpoint may
                        // cover it, and streaming its records would only
                        // write a sink tail the next resume truncates.
                        continue;
                    }
                    if let Some(tap) = chunk_tap.as_deref_mut() {
                        tap(merged_chunk, &output.partial);
                    }
                    self.merge_chunk(&points, &mut accumulator, output, &mut sink, &mut telemetry);
                    if let Err(error) = self.checkpoint_if_due(
                        &mut ckpt,
                        &mut sink,
                        &mut telemetry,
                        next_merge,
                        end_chunk,
                        total_runs,
                        &accumulator,
                        faults,
                    ) {
                        // A checkpoint that cannot be persisted voids the
                        // crash-safety contract: wind the campaign down
                        // and surface the I/O failure.
                        first_error = Some((next_merge, error));
                        abort.store(true, Ordering::Relaxed);
                        gate.wake_all();
                    }
                }
            }
        });

        finish_session_metrics(&mut telemetry, &stats, &worker_busy, faults);
        if let Some((_, error)) = first_error {
            return Err(error);
        }
        if saw_aborted_chunk {
            // The flag is only ever raised alongside a worker `Err` (which
            // always reaches the collector before the channel closes) or a
            // checkpoint failure (which sets `first_error` directly), so
            // this is unreachable — but never bless a session with a hole.
            return Err("a worker aborted mid-chunk without a recorded failure".to_string());
        }
        Ok(self.conclude(points, total_runs, accumulator, chunks, end_chunk, stats))
    }

    /// Writes a checkpoint manifest when the cadence (or the session's final
    /// boundary) calls for one, flushing the sink — and an attached trace
    /// sink — first so the streams on disk always cover at least the
    /// checkpointed runs.
    ///
    /// Every I/O edge here (sink flush, trace flush, manifest write) runs
    /// under the checkpointer's [`RetryPolicy`](crate::RetryPolicy): transient
    /// failures — including injected [`Fault::SinkIoError`](crate::Fault)s —
    /// heal with bounded backoff, and only the last error of an exhausted
    /// budget propagates.
    #[allow(clippy::too_many_arguments)]
    fn checkpoint_if_due(
        &self,
        ckpt: &mut Option<&mut Checkpointer>,
        sink: &mut Option<&mut dyn RunSink>,
        telemetry: &mut CampaignTelemetry<'_>,
        chunks_done: usize,
        end_chunk: usize,
        total_runs: u64,
        accumulator: &CampaignAccumulator,
        faults: Option<&FaultInjector>,
    ) -> Result<(), String> {
        let Some(ckpt) = ckpt else { return Ok(()) };
        if !ckpt.due(chunks_done) && chunks_done != end_chunk {
            return Ok(());
        }
        let policy = ckpt.retry().clone();
        let mut backoff = WallClockBackoff;
        let mut extra_attempts = 0u32;
        let flush_started = Instant::now();
        if let Some(sink) = sink {
            match policy.run(&mut backoff, |_| {
                if let Some(injector) = faults {
                    if let Some(e) = injector.sink_flush_error(chunks_done) {
                        return Err(e);
                    }
                }
                sink.flush()
            }) {
                Ok(recovered) => extra_attempts += recovered.retried(),
                Err(e) => {
                    note_retry_exhausted(telemetry, extra_attempts + policy.max_attempts() - 1);
                    return Err(format!("flushing the run sink before a checkpoint: {e}"));
                }
            }
        }
        let mut trace_error: Option<std::io::Error> = None;
        if let Some(trace_sink) = telemetry.trace.as_deref_mut() {
            match policy.run(&mut backoff, |_| trace_sink.flush()) {
                Ok(recovered) => extra_attempts += recovered.retried(),
                Err(e) => trace_error = Some(e),
            }
        }
        if let Some(e) = trace_error {
            note_retry_exhausted(telemetry, extra_attempts + policy.max_attempts() - 1);
            return Err(format!("flushing the trace sink before a checkpoint: {e}"));
        }
        let flushed = flush_started.elapsed();
        let runs_done = (chunks_done as u64 * self.chunk_size as u64).min(total_runs);
        let manifest =
            checkpoint::render_manifest(self, total_runs, chunks_done, runs_done, accumulator);
        let write_started = Instant::now();
        match policy.run(&mut backoff, |_| ckpt.write(&manifest)) {
            Ok(recovered) => extra_attempts += recovered.retried(),
            Err(e) => {
                note_retry_exhausted(telemetry, extra_attempts + policy.max_attempts() - 1);
                return Err(e);
            }
        }
        if let Some(injector) = faults {
            injector.after_manifest_write(chunks_done, ckpt.path())?;
        }
        if let Some(metrics) = telemetry.metrics.as_deref_mut() {
            metrics.record_timer("campaign.sink_flush_ms", flushed.as_secs_f64() * 1e3);
            metrics.record_timer(
                "campaign.checkpoint_write_ms",
                write_started.elapsed().as_secs_f64() * 1e3,
            );
            if extra_attempts > 0 {
                metrics.add("retry.attempts", extra_attempts as u64);
                metrics.inc("recovery.outcome.recovered");
            }
        }
        Ok(())
    }

    /// Wraps up a session: the final report when every chunk is merged, the
    /// interruption watermark otherwise.
    fn conclude(
        &self,
        points: Vec<PointDef>,
        total_runs: u64,
        accumulator: CampaignAccumulator,
        chunks: usize,
        end_chunk: usize,
        stats: RunnerStats,
    ) -> (CampaignOutcome, RunnerStats) {
        if end_chunk < chunks {
            let runs_done = (end_chunk as u64 * self.chunk_size as u64).min(total_runs);
            (CampaignOutcome::Interrupted { chunks_done: end_chunk, runs_done }, stats)
        } else {
            (CampaignOutcome::Complete(self.finish(points, total_runs, accumulator)), stats)
        }
    }

    /// Re-aggregates retained per-run records (e.g. parsed back from a
    /// [`JsonlRunWriter`](crate::JsonlRunWriter) artifact) through the same
    /// canonical chunk pipeline the streaming runner uses.
    ///
    /// `records` must hold exactly one record per run, in canonical run
    /// order.  The result is **bit-identical** to what [`Campaign::run`]
    /// produces for any worker count with the same chunk size — the property
    /// the integration tests pin down.
    pub fn reduce_records(
        &self,
        registry: &ScenarioRegistry,
        records: &[RunRecord],
    ) -> Result<CampaignReport, String> {
        let (points, total_runs) = self.expand_points();
        let families = self.resolve_families(registry, &points)?;
        if records.len() as u64 != total_runs {
            return Err(format!(
                "campaign {:?} expands to {total_runs} runs but {} records were supplied",
                self.name,
                records.len()
            ));
        }
        let mut accumulator = CampaignAccumulator::new(points.len());
        for chunk in 0..(records.len().div_ceil(self.chunk_size)) {
            let start = chunk * self.chunk_size;
            let end = (start + self.chunk_size).min(records.len());
            let mut partial = ChunkPartial::new();
            let mut point_index = point_of(&points, start as u64);
            for (run, record) in (start as u64..).zip(&records[start..end]) {
                while !run_belongs_to(&points, point_index, run) {
                    point_index += 1;
                }
                let family = &families[point_index];
                partial.record_run(point_index, record, &|metric| family.metric_range(metric));
            }
            accumulator.merge_chunk(partial);
        }
        Ok(self.finish(points, total_runs, accumulator))
    }

    /// Folds per-chunk partials — one per canonical chunk, **in canonical
    /// chunk order** — into the final report, performing exactly the
    /// left-fold the streaming runner performs.  The shard `merge` path
    /// ([`crate::shard`]) feeds this the partials every shard persisted.
    ///
    /// Errors if a partial references a parameter point outside the
    /// campaign's expansion (a foreign or corrupt shard manifest).
    pub(crate) fn finish_from_chunks(
        &self,
        partials: impl IntoIterator<Item = ChunkPartial>,
    ) -> Result<CampaignReport, String> {
        let (points, total_runs) = self.expand_points();
        let mut accumulator = CampaignAccumulator::new(points.len());
        for (index, partial) in partials.into_iter().enumerate() {
            if let Some(out_of_range) = partial.points.keys().find(|p| **p >= points.len()) {
                return Err(format!(
                    "chunk partial #{index} references parameter point {out_of_range}, but \
                     campaign {:?} expands to only {} points",
                    self.name,
                    points.len()
                ));
            }
            accumulator.merge_chunk(partial);
        }
        Ok(self.finish(points, total_runs, accumulator))
    }

    /// Resolves each expanded point's scenario family, erroring on the first
    /// unknown entry before anything executes.
    fn resolve_families(
        &self,
        registry: &ScenarioRegistry,
        points: &[PointDef],
    ) -> Result<Vec<std::sync::Arc<dyn Scenario>>, String> {
        for entry in &self.entries {
            if registry.get(&entry.scenario).is_none() {
                return Err(format!(
                    "campaign {:?} references unknown scenario family {:?} (known: {})",
                    self.name,
                    entry.scenario,
                    registry.names().join(", ")
                ));
            }
        }
        Ok(points
            .iter()
            .map(|p| registry.get(&p.scenario).expect("validated above").clone())
            .collect())
    }

    /// Executes the canonical chunk `chunk` sequentially in run order,
    /// streaming every record into a fresh [`ChunkPartial`].  Returns the
    /// first run failure (canonical within the chunk) as `Err`; an output
    /// with `completed == false` when the abort flag cut the chunk short.
    #[allow(clippy::too_many_arguments)]
    fn run_chunk(
        &self,
        points: &[PointDef],
        families: &[std::sync::Arc<dyn Scenario>],
        chunk: usize,
        capture: bool,
        tracing: bool,
        abort: Option<&AtomicBool>,
        faults: Option<&FaultInjector>,
    ) -> Result<ChunkOutput, String> {
        let started = Instant::now();
        if let Some(injector) = faults {
            injector.before_chunk(chunk)?;
        }
        let total = points.last().map(|p| p.first_run + p.replications).unwrap_or(0);
        let start = (chunk * self.chunk_size) as u64;
        let end = (start + self.chunk_size as u64).min(total);
        let mut partial = ChunkPartial::new();
        let mut records = Vec::new();
        let mut traces = Vec::new();
        let mut runs = 0u64;
        let mut completed = true;
        let mut point_index = point_of(points, start);
        for run in start..end {
            if abort.is_some_and(|a| a.load(Ordering::Relaxed)) {
                completed = false;
                break;
            }
            if let Some(injector) = faults {
                injector.before_run(chunk, runs)?;
            }
            while !run_belongs_to(points, point_index, run) {
                point_index += 1;
            }
            let point = &points[point_index];
            let spec = self.spec_for(point_index, point, run - point.first_run);
            let record = if tracing {
                // The collection scope makes every `karyon_telemetry::trace`
                // call inside the run land in this run's record list; the
                // records contain only virtual-time data, so the list is a
                // pure function of the spec.
                let (record, run_trace) =
                    trace::collect(|| run_one(&*families[point_index], &spec));
                traces.push((run, run_trace));
                record?
            } else {
                run_one(&*families[point_index], &spec)?
            };
            let family = &families[point_index];
            partial.record_run(point_index, &record, &|metric| family.metric_range(metric));
            runs += 1;
            if capture {
                records.push((run, record));
            }
        }
        Ok(ChunkOutput {
            partial,
            records,
            traces,
            runs,
            completed,
            elapsed: started.elapsed(),
            worker: 0,
        })
    }

    /// Folds one canonical chunk into the campaign accumulator, drains its
    /// captured records (already in canonical order) into the sink and its
    /// trace records into the trace sink, and notes the chunk's wall-clock
    /// metrics.
    ///
    /// Draining traces *here* — at the canonical-order merge frontier, never
    /// at execution time — is what makes the trace stream bit-identical for
    /// any worker count.
    fn merge_chunk(
        &self,
        points: &[PointDef],
        accumulator: &mut CampaignAccumulator,
        output: ChunkOutput,
        sink: &mut Option<&mut dyn RunSink>,
        telemetry: &mut CampaignTelemetry<'_>,
    ) {
        accumulator.merge_chunk(output.partial);
        if let Some(sink) = sink {
            let mut point_index = output.records.first().map(|(run, _)| point_of(points, *run));
            for (run, record) in &output.records {
                let mut index = point_index.expect("records imply a first record");
                while !run_belongs_to(points, index, *run) {
                    index += 1;
                }
                point_index = Some(index);
                let point = &points[index];
                let replication = run - point.first_run;
                let meta = RunMeta {
                    run_index: *run,
                    point: index,
                    scenario: &point.scenario,
                    params: &point.params,
                    replication,
                    seed: derive_run_seed(self.seed, index as u64, replication),
                };
                sink.on_run(&meta, record);
            }
        }
        if let Some(trace_sink) = telemetry.trace.as_deref_mut() {
            let mut point_index = output.traces.first().map(|(run, _)| point_of(points, *run));
            for (run, run_trace) in &output.traces {
                let mut index = point_index.expect("traces imply a first trace");
                while !run_belongs_to(points, index, *run) {
                    index += 1;
                }
                point_index = Some(index);
                let point = &points[index];
                let replication = run - point.first_run;
                let coords = RunCoords {
                    run_index: *run,
                    point: index as u64,
                    replication,
                    seed: derive_run_seed(self.seed, index as u64, replication),
                };
                trace_sink.on_run_records(&coords, run_trace);
            }
        }
        if let Some(metrics) = telemetry.metrics.as_deref_mut() {
            metrics.inc("campaign.chunks");
            metrics.add("campaign.runs", output.runs);
            metrics.record_timer("campaign.chunk_ms", output.elapsed.as_secs_f64() * 1e3);
        }
    }

    /// Builds the final report from the merged accumulator.
    fn finish(
        &self,
        points: Vec<PointDef>,
        total_runs: u64,
        accumulator: CampaignAccumulator,
    ) -> CampaignReport {
        let reports = points
            .into_iter()
            .zip(accumulator.points())
            .map(|(point, acc)| PointReport {
                scenario: point.scenario,
                params: point.params,
                runs: acc.runs,
                suspect_runs: acc.suspect_runs,
                metrics: acc.summaries(),
            })
            .collect();
        CampaignReport { name: self.name.clone(), seed: self.seed, total_runs, points: reports }
    }
}

/// Writes a session's end-of-run gauges into an attached metrics registry:
/// the worker count, the runner's peak-memory statistics and each worker's
/// accumulated busy time (chunk execution only — a worker idling at a full
/// window accrues nothing, so `busy / wall` per worker reads as utilisation).
fn finish_session_metrics(
    telemetry: &mut CampaignTelemetry<'_>,
    stats: &RunnerStats,
    worker_busy: &[Duration],
    faults: Option<&FaultInjector>,
) {
    let Some(metrics) = telemetry.metrics.as_deref_mut() else { return };
    metrics.set_gauge("campaign.workers", stats.workers as f64);
    metrics.set_gauge("campaign.peak_pending_chunks", stats.peak_pending_chunks as f64);
    metrics.set_gauge("campaign.peak_resident_records", stats.peak_resident_records as f64);
    for (index, busy) in worker_busy.iter().enumerate() {
        metrics.set_gauge(&format!("campaign.worker.{index}.busy_ms"), busy.as_secs_f64() * 1e3);
    }
    if let Some(injector) = faults {
        for (name, count) in injector.drain_counts() {
            metrics.add(name, count);
        }
    }
}

/// Records that a retried I/O edge exhausted its attempt budget: the attempts
/// spent show up under `retry.attempts` and the failure under
/// `recovery.outcome.exhausted`.
fn note_retry_exhausted(telemetry: &mut CampaignTelemetry<'_>, attempts: u32) {
    let Some(metrics) = telemetry.metrics.as_deref_mut() else { return };
    if attempts > 0 {
        metrics.add("retry.attempts", attempts as u64);
    }
    metrics.inc("recovery.outcome.exhausted");
}

/// FNV-1a over `bytes`: a small, stable, dependency-free 64-bit hash for the
/// campaign fingerprint (collision resistance against *accidental* edits is
/// all a checkpoint needs; manifests are not an attack surface).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in bytes {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Index of the point containing global run `run` (binary search over the
/// points' first-run offsets).
fn point_of(points: &[PointDef], run: u64) -> usize {
    points.partition_point(|p| p.first_run <= run).saturating_sub(1)
}

/// True when `run` falls inside `points[index]`.
fn run_belongs_to(points: &[PointDef], index: usize, run: u64) -> bool {
    let point = &points[index];
    run >= point.first_run && run < point.first_run + point.replications
}

/// Executes one run, converting a scenario panic (e.g. an invalid parameter
/// value that only surfaces inside the family's adapter) into an `Err`
/// naming the offending spec, so a mid-campaign failure reaches the caller
/// as `Campaign::run`'s error instead of a cross-thread panic.
fn run_one(scenario: &dyn Scenario, spec: &ScenarioSpec) -> Result<RunRecord, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| scenario.run(spec))).map_err(
        |payload| {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            format!(
                "scenario {:?} failed for params [{}] seed {}: {message}",
                spec.name,
                spec.params_label(),
                spec.seed
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ScenarioRegistry;
    use crate::scenario::Scenario;
    use std::sync::Arc;

    /// A trivial deterministic scenario: metrics are pure functions of the
    /// spec, so campaign determinism failures can only come from the runner.
    struct Echo;

    impl Scenario for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn run(&self, spec: &ScenarioSpec) -> RunRecord {
            let mut record = RunRecord::new();
            record.set("seed_lo", (spec.seed % 1_000) as f64);
            record.set("x", spec.f64_or("x", 0.0) * 2.0);
            record
        }
    }

    fn echo_registry() -> ScenarioRegistry {
        let mut registry = ScenarioRegistry::new();
        registry.register(Arc::new(Echo));
        registry
    }

    #[test]
    fn derive_run_seed_is_pure_and_spread_out() {
        assert_eq!(derive_run_seed(1, 2, 3), derive_run_seed(1, 2, 3));
        let mut seen = std::collections::BTreeSet::new();
        for point in 0..50u64 {
            for rep in 0..50u64 {
                seen.insert(derive_run_seed(42, point, rep));
            }
        }
        assert_eq!(seen.len(), 2_500, "no collisions across a 50×50 sweep");
        assert_ne!(
            derive_run_seed(1, 0, 1),
            derive_run_seed(1, 1, 0),
            "coordinates are not interchangeable"
        );
    }

    #[test]
    fn work_list_expansion_counts() {
        let campaign = Campaign::new("c", 1)
            .entry(
                CampaignEntry::new("echo")
                    .grid(ParamGrid::new().axis("x", [1, 2, 3]))
                    .replications(4),
            )
            .entry(CampaignEntry::new("echo").replications(2));
        assert_eq!(campaign.run_count(), 14);
        let report = campaign.with_threads(1).run(&echo_registry()).unwrap();
        assert_eq!(report.total_runs, 14);
        assert_eq!(report.points.len(), 4, "3 grid points + 1 empty point");
        assert_eq!(report.points[0].runs, 4);
        assert_eq!(report.points[3].runs, 2);
    }

    #[test]
    fn single_and_multi_thread_reports_are_bit_identical() {
        let build = || {
            Campaign::new("det", 2_026).entry(
                CampaignEntry::new("echo")
                    .grid(ParamGrid::new().axis("x", [0.5, 1.5, 2.5]))
                    .replications(16),
            )
        };
        let one = build().with_threads(1).run(&echo_registry()).unwrap();
        let many = build().with_threads(8).run(&echo_registry()).unwrap();
        assert_eq!(one, many);
        assert_eq!(one.to_json(), many.to_json());
    }

    #[test]
    fn small_chunks_keep_reports_thread_count_invariant() {
        // Chunk boundaries cut through points and entries; every worker
        // count must still reduce identically.
        let build = || {
            Campaign::new("chunky", 99)
                .with_chunk_size(3)
                .entry(
                    CampaignEntry::new("echo")
                        .grid(ParamGrid::new().axis("x", [1.0, 2.0]))
                        .replications(7),
                )
                .entry(CampaignEntry::new("echo").replications(5))
        };
        let one = build().with_threads(1).run(&echo_registry()).unwrap();
        for threads in [2, 3, 8] {
            let many = build().with_threads(threads).run(&echo_registry()).unwrap();
            assert_eq!(one, many, "threads = {threads}");
        }
        assert_eq!(one.total_runs, 19);
    }

    #[test]
    fn an_aborted_chunk_reports_itself_incomplete() {
        let campaign = Campaign::new("abort", 3)
            .with_chunk_size(4)
            .entry(CampaignEntry::new("echo").replications(8));
        let (points, _) = campaign.expand_points();
        let families = campaign.resolve_families(&echo_registry(), &points).unwrap();
        let clear = AtomicBool::new(false);
        let output =
            campaign.run_chunk(&points, &families, 0, true, false, Some(&clear), None).unwrap();
        assert!(output.completed);
        assert_eq!(output.records.len(), 4);
        assert_eq!(output.runs, 4);
        // With the abort flag raised, the chunk covers only a prefix (here:
        // nothing) and must say so — the collector relies on this to never
        // merge or checkpoint a hole.
        let raised = AtomicBool::new(true);
        let output =
            campaign.run_chunk(&points, &families, 0, true, false, Some(&raised), None).unwrap();
        assert!(!output.completed, "an aborted chunk must flag itself incomplete");
        assert!(output.records.is_empty(), "no run executes after the abort flag");
        assert_eq!(output.runs, 0);
    }

    #[test]
    fn sink_receives_every_run_in_canonical_order() {
        for threads in [1, 4] {
            let mut seen: Vec<(u64, u64, f64)> = Vec::new();
            let mut sink = |meta: &RunMeta<'_>, record: &RunRecord| {
                seen.push((meta.run_index, meta.seed, record.get("x").unwrap()));
            };
            let report = Campaign::new("stream", 5)
                .with_threads(threads)
                .with_chunk_size(4)
                .entry(
                    CampaignEntry::new("echo")
                        .grid(ParamGrid::new().axis("x", [1.0, 2.0, 3.0]))
                        .replications(6),
                )
                .run_with_sink(&echo_registry(), &mut sink)
                .unwrap();
            assert_eq!(report.total_runs, 18);
            assert_eq!(seen.len(), 18, "threads = {threads}");
            let indices: Vec<u64> = seen.iter().map(|(i, _, _)| *i).collect();
            assert_eq!(
                indices,
                (0..18).collect::<Vec<_>>(),
                "canonical order, threads = {threads}"
            );
            assert_eq!(seen[0].1, derive_run_seed(5, 0, 0), "seeds match canonical coordinates");
            assert_eq!(seen[17].2, 6.0, "x=3 doubles to 6");
        }
    }

    #[test]
    fn instrumented_run_reports_bounded_residency() {
        let campaign = Campaign::new("bounded", 1)
            .with_chunk_size(8)
            .entry(CampaignEntry::new("echo").replications(100));
        let mut count = 0u64;
        let mut sink = |_: &RunMeta<'_>, _: &RunRecord| count += 1;
        let (report, stats) =
            campaign.with_threads(4).run_instrumented(&echo_registry(), Some(&mut sink)).unwrap();
        assert_eq!(report.total_runs, 100);
        assert_eq!(count, 100);
        assert_eq!(stats.chunks, 13);
        let window = stats.workers * 2;
        assert!(
            stats.peak_resident_records <= (window * 8) as u64,
            "resident {} must stay within window × chunk ({})",
            stats.peak_resident_records,
            window * 8
        );
    }

    #[test]
    fn reduce_records_matches_streaming_run() {
        let campaign = Campaign::new("replay", 7).with_chunk_size(5).entry(
            CampaignEntry::new("echo")
                .grid(ParamGrid::new().axis("x", [0.25, 0.75]))
                .replications(13),
        );
        let registry = echo_registry();
        let mut records = Vec::new();
        let mut sink = |_: &RunMeta<'_>, record: &RunRecord| records.push(record.clone());
        let streamed =
            campaign.clone().with_threads(4).run_with_sink(&registry, &mut sink).unwrap();
        let replayed = campaign.reduce_records(&registry, &records).unwrap();
        assert_eq!(streamed, replayed);
        let err = campaign.reduce_records(&registry, &records[1..]).unwrap_err();
        assert!(err.contains("26 runs"), "record-count mismatch is reported: {err}");
    }

    /// A scenario that panics on demand (an invalid-parameter stand-in).
    struct Fussy;

    impl Scenario for Fussy {
        fn name(&self) -> &str {
            "fussy"
        }
        fn run(&self, spec: &ScenarioSpec) -> RunRecord {
            if spec.bool_or("explode", false) {
                panic!("unknown mode \"los3\"");
            }
            RunRecord::new()
        }
    }

    #[test]
    fn mid_campaign_run_panic_becomes_an_error() {
        let mut registry = ScenarioRegistry::new();
        registry.register(Arc::new(Fussy));
        for threads in [1, 4] {
            let err = Campaign::new("c", 1)
                .with_threads(threads)
                .with_chunk_size(2)
                .entry(
                    CampaignEntry::new("fussy")
                        .grid(ParamGrid::new().axis("explode", [false, true]))
                        .replications(3),
                )
                .run(&registry)
                .unwrap_err();
            assert!(err.contains("explode=true"), "error names the offending spec: {err}");
            assert!(err.contains("los3"), "error carries the panic message: {err}");
        }
    }

    #[test]
    fn unknown_scenario_is_rejected_before_running() {
        let campaign = Campaign::new("c", 1).entry(CampaignEntry::new("no-such-family"));
        let err = campaign.run(&echo_registry()).unwrap_err();
        assert!(err.contains("no-such-family"), "{err}");
        assert!(err.contains("echo"), "error lists known families: {err}");
    }

    #[test]
    fn fingerprint_tracks_everything_that_shapes_the_reduction() {
        let base = || {
            Campaign::new("fp", 7).with_chunk_size(8).entry(
                CampaignEntry::new("echo").grid(ParamGrid::new().axis("x", [1, 2])).replications(3),
            )
        };
        let fp = base().fingerprint();
        assert_eq!(fp, base().fingerprint(), "stable across rebuilds");
        assert_eq!(fp, base().with_threads(32).fingerprint(), "worker count is excluded");
        for (label, other) in [
            ("name", Campaign::new("fp2", 7).with_chunk_size(8)),
            ("seed", Campaign::new("fp", 8).with_chunk_size(8)),
            ("chunk size", Campaign::new("fp", 7).with_chunk_size(9)),
        ] {
            let other = other.entry(
                CampaignEntry::new("echo").grid(ParamGrid::new().axis("x", [1, 2])).replications(3),
            );
            assert_ne!(fp, other.fingerprint(), "{label} must change the fingerprint");
        }
        let int_axis = base().fingerprint();
        let float_axis = Campaign::new("fp", 7)
            .with_chunk_size(8)
            .entry(
                CampaignEntry::new("echo")
                    .grid(ParamGrid::new().axis("x", [1.0, 2.0]))
                    .replications(3),
            )
            .fingerprint();
        assert_ne!(int_axis, float_axis, "Int(1) and Float(1.0) hash apart");
    }

    #[test]
    fn campaign_spec_json_round_trips_the_builder() {
        let from_json = Campaign::from_json_str(
            r#"{
                "name": "spec-demo",
                "seed": 2026,
                "chunk_size": 16,
                "threads": 2,
                "entries": [
                    {"scenario": "echo", "replications": 5,
                     "grid": {"x": [0.5, 1.5], "mode": ["a", "b"]}},
                    {"scenario": "echo", "duration_secs": 45}
                ]
            }"#,
        )
        .expect("well-formed spec");
        let builder = Campaign::new("spec-demo", 2026)
            .with_chunk_size(16)
            .with_threads(2)
            .entry(
                CampaignEntry::new("echo")
                    .grid(ParamGrid::new().axis("x", [0.5, 1.5]).axis("mode", ["a", "b"]))
                    .replications(5),
            )
            .entry(CampaignEntry::new("echo").duration_secs(45));
        assert_eq!(from_json.run_count(), builder.run_count());
        assert_eq!(from_json.fingerprint(), builder.fingerprint());
        // And the two produce bit-identical reports.
        let a = from_json.run(&echo_registry()).unwrap();
        let b = builder.run(&echo_registry()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn campaign_spec_json_rejects_typos_and_bad_shapes() {
        for (doc, needle) in [
            (r#"[1]"#, "must be a JSON object"),
            (r#"{"seed": 1, "entries": []}"#, "\"name\""),
            (r#"{"name": "x", "entries": []}"#, "\"seed\""),
            (r#"{"name": "x", "seed": 1}"#, "\"entries\""),
            (r#"{"name": "x", "seed": 1, "entries": []}"#, "at least one entry"),
            (r#"{"name": "x", "seed": 1, "chunk_size": 0, "entries": [1]}"#, "chunk_size"),
            (
                r#"{"name": "x", "seed": 1, "entires": [], "entries": [1]}"#,
                "unknown campaign field",
            ),
            (
                r#"{"name": "x", "seed": 1, "entries": [{"scenario": "e", "reps": 2}]}"#,
                "unknown entry field",
            ),
            (
                r#"{"name": "x", "seed": 1, "entries": [{"scenario": "e", "replications": 0}]}"#,
                "positive integer",
            ),
            (
                r#"{"name": "x", "seed": 1, "entries":
                   [{"scenario": "e", "duration_secs": 1, "duration_micros": 2}]}"#,
                "not both",
            ),
        ] {
            let err = Campaign::from_json_str(doc).unwrap_err();
            assert!(err.contains(needle), "{doc}: {err}");
        }
    }

    #[test]
    fn checkpointed_run_resumes_bit_identically_at_every_boundary() {
        let dir = std::env::temp_dir().join(format!("karyon-campaign-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let build = || {
            Campaign::new("ckpt", 11).with_chunk_size(3).entry(
                CampaignEntry::new("echo")
                    .grid(ParamGrid::new().axis("x", [0.25, 0.75, 1.25]))
                    .replications(7),
            )
        };
        let registry = echo_registry();
        let uninterrupted = build().with_threads(1).run(&registry).unwrap();
        let chunks = build().canonical_chunks();
        assert_eq!(chunks, 7, "21 runs / chunk 3");
        for boundary in 1..chunks {
            let path = dir.join(format!("boundary-{boundary}.json"));
            let mut first = Checkpointer::new(&path).max_chunks_per_session(boundary);
            let (outcome, stats) =
                build().with_threads(2).run_checkpointed(&registry, &mut first, None).unwrap();
            assert_eq!(
                outcome,
                CampaignOutcome::Interrupted {
                    chunks_done: boundary,
                    runs_done: (boundary as u64 * 3).min(21),
                },
                "boundary {boundary}"
            );
            assert_eq!(stats.chunks, boundary as u64);
            let mut second = Checkpointer::new(&path);
            let (outcome, stats) =
                build().with_threads(4).resume(&registry, &mut second, None).unwrap();
            assert_eq!(stats.chunks, (chunks - boundary) as u64);
            let resumed = outcome.into_report().expect("completed");
            assert_eq!(resumed, uninterrupted, "boundary {boundary}");
            assert_eq!(resumed.to_json(), uninterrupted.to_json());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_a_mismatched_fingerprint_and_rereads_finished_manifests() {
        let dir =
            std::env::temp_dir().join(format!("karyon-campaign-ckpt2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("done.json");
        let registry = echo_registry();
        let campaign = Campaign::new("done", 3)
            .with_chunk_size(4)
            .entry(CampaignEntry::new("echo").replications(10));
        let mut ckpt = Checkpointer::new(&path).every_chunks(2);
        let (outcome, _) = campaign.run_checkpointed(&registry, &mut ckpt, None).unwrap();
        let report = outcome.into_report().expect("ran to completion");
        // Resuming a finished manifest re-emits the report without running.
        let (again, stats) = campaign.resume(&registry, &mut ckpt, None).unwrap();
        assert_eq!(stats.chunks, 0);
        assert_eq!(again.into_report().unwrap(), report);
        // A different campaign definition must be refused.
        let other = Campaign::new("done", 4)
            .with_chunk_size(4)
            .entry(CampaignEntry::new("echo").replications(10));
        let err = other.resume(&registry, &mut Checkpointer::new(&path), None).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_rejected() {
        let _ = CampaignEntry::new("echo").replications(0);
    }

    #[test]
    #[should_panic(expected = "chunk size must be at least 1")]
    fn zero_chunk_size_rejected() {
        let _ = Campaign::new("c", 1).with_chunk_size(0);
    }

    // ---- ChunkGate window edge cases --------------------------------------
    //
    // The gate is the primitive both the parallel runner and the shard
    // windows lean on; these pin the degenerate windows a shard plan can
    // legally produce.

    #[test]
    fn gate_claim_on_an_empty_window_returns_none_immediately() {
        // start == end: a shard slice covering zero chunks must not block.
        let gate = ChunkGate::new(7);
        let abort = AtomicBool::new(false);
        assert_eq!(gate.claim(7, 4, &abort), None);
        assert_eq!(gate.occupancy(), 0);
    }

    #[test]
    fn gate_hands_out_a_single_chunk_window_exactly_once() {
        // A single-chunk shard: one claim succeeds, the next returns None.
        let gate = ChunkGate::new(3);
        let abort = AtomicBool::new(false);
        assert_eq!(gate.claim(4, 8, &abort), Some(3));
        assert_eq!(gate.claim(4, 8, &abort), None);
        assert_eq!(gate.occupancy(), 1);
        gate.advance();
        assert_eq!(gate.occupancy(), 0);
    }

    #[test]
    fn gate_respects_the_abort_flag_and_the_window_bound() {
        let gate = ChunkGate::new(0);
        let abort = AtomicBool::new(false);
        // Window of 2: two claims fill it; a worker thread blocks on the
        // third until the collector advances the merge frontier.
        assert_eq!(gate.claim(10, 2, &abort), Some(0));
        assert_eq!(gate.claim(10, 2, &abort), Some(1));
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| gate.claim(10, 2, &abort));
            std::thread::sleep(Duration::from_millis(10));
            gate.advance();
            assert_eq!(handle.join().unwrap(), Some(2));
        });
        // Aborting makes every further claim return None, even mid-window.
        abort.store(true, Ordering::Relaxed);
        assert_eq!(gate.claim(10, 2, &abort), None);
    }

    #[test]
    fn shard_windows_cover_their_chunks_and_reject_bad_bounds() {
        let registry = echo_registry();
        let campaign = Campaign::new("window", 5)
            .with_chunk_size(4)
            .entry(CampaignEntry::new("echo").replications(22)); // 6 chunks, ragged tail
        let chunks = campaign.canonical_chunks();
        assert_eq!(chunks, 6);

        // An empty window executes nothing.
        let (partials, stats) = campaign.run_shard(&registry, 2, 2, None).unwrap();
        assert!(partials.is_empty());
        assert_eq!(stats.chunks, 0);

        // A single-chunk window produces exactly one partial with the
        // chunk's runs.
        let (partials, _) = campaign.run_shard(&registry, 1, 2, None).unwrap();
        assert_eq!(partials.len(), 1);
        let runs: u64 = partials[0].points.values().map(|p| p.runs).sum();
        assert_eq!(runs, 4);

        // The ragged final chunk holds only the tail runs.
        let (partials, _) = campaign.run_shard(&registry, chunks - 1, chunks, None).unwrap();
        let runs: u64 = partials[0].points.values().map(|p| p.runs).sum();
        assert_eq!(runs, 22 - 4 * (chunks as u64 - 1));

        // Bounds outside the canonical range are refused up front.
        assert!(campaign.run_shard(&registry, 3, 2, None).unwrap_err().contains("shard window"));
        assert!(campaign
            .run_shard(&registry, 0, chunks + 1, None)
            .unwrap_err()
            .contains("shard window"));
    }

    #[test]
    fn shard_boundary_on_a_checkpoint_cadence_boundary_stays_byte_identical() {
        // A shard boundary that coincides with a checkpoint cadence boundary
        // must not perturb the reduction: folding the shard partials equals
        // running checkpointed sessions over the same split.
        let registry = echo_registry();
        let campaign = Campaign::new("cadence", 11)
            .with_chunk_size(3)
            .entry(CampaignEntry::new("echo").replications(27)); // 9 chunks
        let reference = campaign.run(&registry).unwrap();

        // Shard split at chunk 6 == cadence 3 × 2 checkpoint boundary.
        let (mut left, _) = campaign.run_shard(&registry, 0, 6, None).unwrap();
        let (right, _) = campaign.clone().with_threads(3).run_shard(&registry, 6, 9, None).unwrap();
        left.extend(right);
        let merged = campaign.finish_from_chunks(left).unwrap();
        assert_eq!(merged, reference);
        assert_eq!(merged.to_json(), reference.to_json());
    }

    #[test]
    fn sharded_partials_fold_to_the_single_session_report_for_any_split() {
        let registry = echo_registry();
        let campaign = Campaign::new("fold", 19)
            .with_chunk_size(2)
            .entry(CampaignEntry::new("echo").replications(13)); // 7 chunks
        let chunks = campaign.canonical_chunks();
        let reference = campaign.run(&registry).unwrap();
        for boundary in 0..=chunks {
            let (mut partials, _) = campaign.run_shard(&registry, 0, boundary, None).unwrap();
            let (tail, _) = campaign
                .clone()
                .with_threads(2)
                .run_shard(&registry, boundary, chunks, None)
                .unwrap();
            partials.extend(tail);
            let merged = campaign.finish_from_chunks(partials).unwrap();
            assert_eq!(merged, reference, "boundary {boundary}");
            assert_eq!(merged.to_json(), reference.to_json(), "boundary {boundary}");
        }
    }
}

//! The campaign runner: grid × seed-sweep expansion and parallel execution.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

use karyon_sim::{splitmix64, SimDuration};

use crate::grid::ParamGrid;
use crate::registry::ScenarioRegistry;
use crate::report::{CampaignReport, MetricSummary, PointReport};
use crate::scenario::RunRecord;
use crate::spec::{ParamValue, ScenarioSpec};

/// Derives the RNG seed of one run from the campaign seed and the run's
/// canonical coordinates (global parameter-point index, replication index).
///
/// The derivation depends only on those coordinates — never on thread
/// identity or execution order — which is what makes campaign results
/// reproducible regardless of the worker count.  Two splitmix64 rounds over
/// the mixed-in coordinates give well-separated streams even for adjacent
/// points and replications.
pub fn derive_run_seed(campaign_seed: u64, point: u64, replication: u64) -> u64 {
    let mut state = campaign_seed ^ point.wrapping_mul(0xA076_1D64_78BD_642F);
    let first = splitmix64(&mut state);
    let mut state = first ^ replication.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    splitmix64(&mut state)
}

/// One scenario family's slice of a campaign: the family name, the parameter
/// grid to expand and the Monte-Carlo seed sweep per parameter point.
#[derive(Debug, Clone)]
pub struct CampaignEntry {
    scenario: String,
    grid: ParamGrid,
    replications: u64,
    duration: Option<SimDuration>,
}

impl CampaignEntry {
    /// Creates an entry for the named scenario family with an empty grid and
    /// a single replication.
    pub fn new(scenario: &str) -> Self {
        CampaignEntry {
            scenario: scenario.to_string(),
            grid: ParamGrid::new(),
            replications: 1,
            duration: None,
        }
    }

    /// Sets the parameter grid.
    pub fn grid(mut self, grid: ParamGrid) -> Self {
        self.grid = grid;
        self
    }

    /// Sets the number of Monte-Carlo replications (distinct derived seeds)
    /// per parameter point.
    ///
    /// # Panics
    /// Panics if `replications` is zero.
    pub fn replications(mut self, replications: u64) -> Self {
        assert!(replications > 0, "a campaign entry needs at least one replication");
        self.replications = replications;
        self
    }

    /// Overrides the simulated duration of every run of this entry.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.duration = Some(duration);
        self
    }

    /// Overrides the simulated duration in whole seconds.
    pub fn duration_secs(self, secs: u64) -> Self {
        self.duration(SimDuration::from_secs(secs))
    }

    /// Number of runs this entry contributes.
    pub fn run_count(&self) -> u64 {
        self.grid.len() as u64 * self.replications
    }
}

/// One executable unit of work: a fully instantiated [`ScenarioSpec`] plus
/// the coordinates it aggregates under.
#[derive(Debug, Clone)]
struct WorkItem {
    /// Index into the flattened point list.
    point: usize,
    spec: ScenarioSpec,
}

/// A batch-runnable campaign: one or more [`CampaignEntry`]s executed over
/// `std::thread` workers with deterministic per-run seeds.
///
/// Determinism contract: for a fixed campaign seed and entry list, the
/// [`CampaignReport`] is bit-identical for every `threads` setting.  Workers
/// only *execute* runs; each run's seed is derived from its canonical
/// coordinates ([`derive_run_seed`]), results are collected by run index, and
/// aggregation walks them in canonical order.
///
/// Memory model: each run streams its own metrics internally, but the runner
/// retains one compact [`RunRecord`] per run (a handful of `f64`s) until the
/// canonical-order reduction.  That O(runs × metrics) buffer is a deliberate
/// trade — floating-point reduction is order-sensitive, so merging partial
/// aggregates in worker-completion order would break the bit-identity
/// contract.  It is negligible up to ~10⁶ runs; truly unbounded campaigns
/// need pre-agreed histogram ranges and canonical chunked reduction (see
/// ROADMAP open items).
#[derive(Debug, Clone)]
pub struct Campaign {
    name: String,
    seed: u64,
    threads: usize,
    entries: Vec<CampaignEntry>,
}

impl Campaign {
    /// Creates an empty campaign with the given name and campaign seed.
    pub fn new(name: &str, seed: u64) -> Self {
        Campaign { name: name.to_string(), seed, threads: 0, entries: Vec::new() }
    }

    /// Adds a scenario entry.
    pub fn entry(mut self, entry: CampaignEntry) -> Self {
        self.entries.push(entry);
        self
    }

    /// Sets the worker-thread count.  `0` (the default) uses the machine's
    /// available parallelism.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Total number of runs the campaign will execute.
    pub fn run_count(&self) -> u64 {
        self.entries.iter().map(CampaignEntry::run_count).sum()
    }

    /// Expands every entry's grid and seed sweep into the canonical work
    /// list, executes it in parallel, and aggregates per parameter point.
    ///
    /// Returns an error naming the first entry whose scenario family is not
    /// in `registry` (checked up front, before any run executes).  A run that
    /// panics mid-campaign — e.g. an invalid parameter *value* that only the
    /// family's adapter can detect — also surfaces as an `Err` naming the
    /// offending spec, after in-flight runs wind down.
    pub fn run(&self, registry: &ScenarioRegistry) -> Result<CampaignReport, String> {
        for entry in &self.entries {
            if registry.get(&entry.scenario).is_none() {
                return Err(format!(
                    "campaign {:?} references unknown scenario family {:?} (known: {})",
                    self.name,
                    entry.scenario,
                    registry.names().join(", ")
                ));
            }
        }

        // Canonical expansion: entries in declaration order, grid points in
        // expansion order, replications innermost.  `point` indices are
        // global across entries so every (scenario, params) pair aggregates
        // separately.
        let mut points: Vec<(String, BTreeMap<String, ParamValue>)> = Vec::new();
        let mut items: Vec<WorkItem> = Vec::new();
        for entry in &self.entries {
            for params in entry.grid.expand() {
                let point = points.len();
                points.push((entry.scenario.clone(), params.clone()));
                for rep in 0..entry.replications {
                    let mut spec = ScenarioSpec::new(&entry.scenario)
                        .with_params(params.clone())
                        .with_seed(derive_run_seed(self.seed, point as u64, rep));
                    if let Some(duration) = entry.duration {
                        spec = spec.with_duration(duration);
                    }
                    items.push(WorkItem { point, spec });
                }
            }
        }

        let records = self.execute(registry, &items)?;

        // Aggregation in canonical run order: records are indexed by run id,
        // so the fold below is independent of which worker ran what.
        let mut point_values: Vec<BTreeMap<String, Vec<f64>>> = vec![BTreeMap::new(); points.len()];
        let mut point_runs = vec![0u64; points.len()];
        let mut point_suspect = vec![0u64; points.len()];
        for (item, record) in items.iter().zip(records.iter()) {
            point_runs[item.point] += 1;
            if record.clamped_schedules > 0 {
                point_suspect[item.point] += 1;
            }
            for (name, value) in record.metrics() {
                point_values[item.point].entry(name.clone()).or_default().push(*value);
            }
        }

        let reports = points
            .into_iter()
            .zip(point_values)
            .zip(point_runs.iter().zip(point_suspect.iter()))
            .map(|(((scenario, params), values), (runs, suspect))| PointReport {
                scenario,
                params,
                runs: *runs,
                suspect_runs: *suspect,
                metrics: values
                    .into_iter()
                    .map(|(name, v)| (name, MetricSummary::from_values(&v)))
                    .collect(),
            })
            .collect();

        Ok(CampaignReport {
            name: self.name.clone(),
            seed: self.seed,
            total_runs: items.len() as u64,
            points: reports,
        })
    }

    /// Executes one run, converting a scenario panic (e.g. an invalid
    /// parameter value that only surfaces inside the family's adapter) into
    /// an `Err` naming the offending spec, so a mid-campaign failure reaches
    /// the caller as `Campaign::run`'s error instead of a cross-thread panic.
    fn run_one(registry: &ScenarioRegistry, item: &WorkItem) -> Result<RunRecord, String> {
        let scenario = registry.get(&item.spec.name).expect("validated above");
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| scenario.run(&item.spec))).map_err(
            |payload| {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                format!(
                    "scenario {:?} failed for params [{}] seed {}: {message}",
                    item.spec.name,
                    item.spec.params_label(),
                    item.spec.seed
                )
            },
        )
    }

    /// Executes the work list on worker threads and returns one record per
    /// item, in item order, or the first (in canonical item order) run
    /// failure.
    fn execute(
        &self,
        registry: &ScenarioRegistry,
        items: &[WorkItem],
    ) -> Result<Vec<RunRecord>, String> {
        let workers = match self.threads {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
        .min(items.len().max(1));

        if workers <= 1 {
            return items.iter().map(|item| Self::run_one(registry, item)).collect();
        }

        let cursor = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<(usize, Result<RunRecord, String>)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let (cursor, abort) = (&cursor, &abort);
                scope.spawn(move || loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(idx) else { break };
                    let outcome = Self::run_one(registry, item);
                    if outcome.is_err() {
                        abort.store(true, Ordering::Relaxed);
                    }
                    if tx.send((idx, outcome)).is_err() {
                        break;
                    }
                });
            }
        });
        drop(tx);

        let mut records: Vec<Option<Result<RunRecord, String>>> = vec![None; items.len()];
        for (idx, outcome) in rx {
            records[idx] = Some(outcome);
        }
        // Surface the canonically-first failure among the runs that executed
        // before the abort (no None holes remain on the success path).
        if let Some(err) = records.iter().flatten().find_map(|r| r.as_ref().err()) {
            return Err(err.clone());
        }
        records
            .into_iter()
            .map(|r| r.expect("every work item produces exactly one record"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ScenarioRegistry;
    use crate::scenario::Scenario;
    use std::sync::Arc;

    /// A trivial deterministic scenario: metrics are pure functions of the
    /// spec, so campaign determinism failures can only come from the runner.
    struct Echo;

    impl Scenario for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn run(&self, spec: &ScenarioSpec) -> RunRecord {
            let mut record = RunRecord::new();
            record.set("seed_lo", (spec.seed % 1_000) as f64);
            record.set("x", spec.f64_or("x", 0.0) * 2.0);
            record
        }
    }

    fn echo_registry() -> ScenarioRegistry {
        let mut registry = ScenarioRegistry::new();
        registry.register(Arc::new(Echo));
        registry
    }

    #[test]
    fn derive_run_seed_is_pure_and_spread_out() {
        assert_eq!(derive_run_seed(1, 2, 3), derive_run_seed(1, 2, 3));
        let mut seen = std::collections::BTreeSet::new();
        for point in 0..50u64 {
            for rep in 0..50u64 {
                seen.insert(derive_run_seed(42, point, rep));
            }
        }
        assert_eq!(seen.len(), 2_500, "no collisions across a 50×50 sweep");
        assert_ne!(
            derive_run_seed(1, 0, 1),
            derive_run_seed(1, 1, 0),
            "coordinates are not interchangeable"
        );
    }

    #[test]
    fn work_list_expansion_counts() {
        let campaign = Campaign::new("c", 1)
            .entry(
                CampaignEntry::new("echo")
                    .grid(ParamGrid::new().axis("x", [1, 2, 3]))
                    .replications(4),
            )
            .entry(CampaignEntry::new("echo").replications(2));
        assert_eq!(campaign.run_count(), 14);
        let report = campaign.with_threads(1).run(&echo_registry()).unwrap();
        assert_eq!(report.total_runs, 14);
        assert_eq!(report.points.len(), 4, "3 grid points + 1 empty point");
        assert_eq!(report.points[0].runs, 4);
        assert_eq!(report.points[3].runs, 2);
    }

    #[test]
    fn single_and_multi_thread_reports_are_bit_identical() {
        let build = || {
            Campaign::new("det", 2_026).entry(
                CampaignEntry::new("echo")
                    .grid(ParamGrid::new().axis("x", [0.5, 1.5, 2.5]))
                    .replications(16),
            )
        };
        let one = build().with_threads(1).run(&echo_registry()).unwrap();
        let many = build().with_threads(8).run(&echo_registry()).unwrap();
        assert_eq!(one, many);
        assert_eq!(one.to_json(), many.to_json());
    }

    /// A scenario that panics on demand (an invalid-parameter stand-in).
    struct Fussy;

    impl Scenario for Fussy {
        fn name(&self) -> &str {
            "fussy"
        }
        fn run(&self, spec: &ScenarioSpec) -> RunRecord {
            if spec.bool_or("explode", false) {
                panic!("unknown mode \"los3\"");
            }
            RunRecord::new()
        }
    }

    #[test]
    fn mid_campaign_run_panic_becomes_an_error() {
        let mut registry = ScenarioRegistry::new();
        registry.register(Arc::new(Fussy));
        for threads in [1, 4] {
            let err = Campaign::new("c", 1)
                .with_threads(threads)
                .entry(
                    CampaignEntry::new("fussy")
                        .grid(ParamGrid::new().axis("explode", [false, true]))
                        .replications(3),
                )
                .run(&registry)
                .unwrap_err();
            assert!(err.contains("explode=true"), "error names the offending spec: {err}");
            assert!(err.contains("los3"), "error carries the panic message: {err}");
        }
    }

    #[test]
    fn unknown_scenario_is_rejected_before_running() {
        let campaign = Campaign::new("c", 1).entry(CampaignEntry::new("no-such-family"));
        let err = campaign.run(&echo_registry()).unwrap_err();
        assert!(err.contains("no-such-family"), "{err}");
        assert!(err.contains("echo"), "error lists known families: {err}");
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_rejected() {
        let _ = CampaignEntry::new("echo").replications(0);
    }
}
